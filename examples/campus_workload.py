"""A campus-shaped workload riding out an attack.

A resolver population queries two hundred names with Zipf popularity (a
few hot names, a long tail) through a guarded server while a spoofed flood
ramps from nothing to 150K requests/sec and back.  The guard's operational
counters (`guard.stats()`) tell the story at each phase.

Run:  python examples/campus_workload.py
"""

from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator
from repro.attack import SpoofingAttacker

NAMES = [f"svc{i}.campus.example" for i in range(200)]

bed = GuardTestbed(ans="simulator", ans_mode="answer")
resolver_node = bed.add_client("campus-resolver", via_local_guard=True)
workload = LrsSimulator(
    resolver_node,
    ANS_ADDRESS,
    qnames=NAMES,
    workload="plain",
    concurrency=32,
    name_distribution="zipf",
    zipf_s=1.1,
)
attacker = SpoofingAttacker(
    bed.add_client("botnet"), ANS_ADDRESS, rate=150_000, carry_invalid_cookie=True
)


def phase(label: str, seconds: float) -> None:
    workload.stats.begin_window(bed.sim.now)
    bed.run(seconds)
    rate = workload.stats.throughput(bed.sim.now)
    stats = bed.guard.stats()
    print(
        f"{label:<18} legit {rate / 1000:6.1f}K req/s   "
        f"dropped {stats['invalid_drops']:>8}   "
        f"valid cookies {stats['valid_cookies']:>8}"
    )


workload.start()
phase("calm", 0.5)
attacker.start()
phase("under attack", 0.5)
attacker.stop()
phase("calm again", 0.5)
workload.stop()

print()
final = bed.guard.stats()
print("Guard counters after the episode:")
for key in ("queries_seen", "valid_cookies", "invalid_drops", "cookies_granted",
            "overload_drops"):
    print(f"  {key:<22} {final[key]}")
print()
print(f"Names served: {len(NAMES)} (Zipf-distributed popularity); every one")
print("rode the same per-client cookie — the modified scheme stores one")
print("cookie per server, not per name.")

assert final["invalid_drops"] > 50_000
assert workload.stats.timeouts <= workload.stats.completed * 0.01
