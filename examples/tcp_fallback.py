"""The TCP-based scheme: truncation redirect + transparent kernel proxy (§III.C).

The guard answers suspect UDP queries with a TC=1 flag; RFC-compliant
resolvers retry over TCP, whose three-way handshake proves their address
(the sequence number is the cookie).  The guard's TCP proxy terminates the
connection with SYN cookies — so even a SYN flood leaves zero state — and
relays the query to the ANS over UDP.

Run:  python examples/tcp_fallback.py
"""

from ipaddress import IPv4Address

from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator
from repro.netsim import Packet, TcpFlags, TcpSegment

# policy="tcp": unverified requesters are redirected to TCP
bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")

resolver_node = bed.add_client("resolver")
resolver = LrsSimulator(resolver_node, ANS_ADDRESS, workload="plain", timeout=0.05)
resolver.start()
bed.run(0.5)
resolver.stop()

print("TCP fallback under normal operation (0.5 simulated seconds):")
print(f"  truncation redirects sent:  {bed.guard.truncations_sent:>7}")
print(f"  queries proxied over TCP:   {bed.guard.tcp_proxy.requests_proxied:>7}")
print(f"  queries completed:          {resolver.stats.completed:>7}")

# -- now a spoofed SYN flood against the proxy --------------------------------
attacker_node = bed.add_client("attacker")
for i in range(2000):
    syn = TcpSegment(sport=10000 + (i % 50000), dport=53, seq=i, ack=0, flags=TcpFlags.SYN)
    attacker_node.send(
        Packet(
            src=IPv4Address(f"172.29.{i % 200}.{i % 250 + 1}"),
            dst=ANS_ADDRESS,
            segment=syn,
        )
    )
bed.run(0.5)

print()
print("After 2000 spoofed SYNs:")
print(f"  half-open connections held by the proxy: {bed.guard_node.tcp.open_connections}")
print()
print("SYN cookies make the listener stateless: each spoofed SYN got a")
print("SYN-ACK whose sequence number only the true address owner could")
print("echo, and none ever came back.")

assert resolver.stats.completed > 100
assert bed.guard_node.tcp.open_connections == 0
