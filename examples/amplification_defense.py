"""Stopping DNS amplification (§I's second attack, §III.G's analysis).

An attacker sends small queries for a large TXT record with the victim's
address forged as the source; an unguarded server happily reflects ~9x the
attacker's bandwidth at the victim.  The guard never lets an unverified
query reach the ANS: the spoofed victim receives only tiny fabricated
referrals, and Rate-Limiter1 clamps even those.

Run:  python examples/amplification_defense.py
"""

from repro.experiments.attacks import run_amplification
from repro.guard import UnverifiedResponseLimiter

unguarded = run_amplification(guarded=False, rate=2000.0, duration=0.5)
guarded = run_amplification(
    guarded=True,
    rate=2000.0,
    duration=0.5,
    rl1=UnverifiedResponseLimiter(per_source_rate=100.0, per_source_burst=100.0),
)

print("Reflection attack: 2000 spoofed queries/sec for a 500-byte TXT record")
print()
print(f"  {'':<22} {'attacker sent':>14} {'victim received':>16} {'ratio':>7}")
print(
    f"  {'unguarded ANS':<22} {unguarded.attacker_bytes:>12} B "
    f"{unguarded.victim_bytes:>14} B {unguarded.ratio:>6.2f}x"
)
print(
    f"  {'behind the DNS guard':<22} {guarded.attacker_bytes:>12} B "
    f"{guarded.victim_bytes:>14} B {guarded.ratio:>6.2f}x"
)
print()
print("The unguarded server amplifies the attacker's bandwidth ninefold;")
print("the guard turns the same flood into a trickle smaller than what the")
print("attacker spent.")

assert unguarded.ratio > 5.0
assert guarded.ratio < 1.0
