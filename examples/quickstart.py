"""Quickstart: protect a DNS server from a spoofing flood in ~40 lines.

Builds the paper's testbed — an authoritative server behind a DNS guard —
puts a legitimate resolver and a spoofing attacker on it, and shows the
guard filtering every forged request while legitimate traffic flows.

Run:  python examples/quickstart.py
"""

from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator
from repro.attack import SpoofingAttacker

# A testbed: [clients] -- DNS guard -- authoritative server (110K req/s).
bed = GuardTestbed(ans="simulator", ans_mode="answer")

# A legitimate resolver.  `via_local_guard=True` puts the paper's local
# DNS guard in front of it, making it cookie-capable without modification.
resolver_node = bed.add_client("resolver", via_local_guard=True)
resolver = LrsSimulator(resolver_node, ANS_ADDRESS, workload="plain")

# An attacker flooding 50,000 spoofed requests/sec with forged cookies.
attacker_node = bed.add_client("attacker")
attacker = SpoofingAttacker(
    attacker_node, ANS_ADDRESS, rate=50_000, carry_invalid_cookie=True
)

resolver.start()
attacker.start()
bed.run(1.0)  # one second of virtual time
resolver.stop()
attacker.stop()

print("After 1 simulated second under a 50K req/s spoofed flood:")
print(f"  legitimate queries answered: {resolver.stats.completed:>8}")
print(f"  legitimate timeouts:         {resolver.stats.timeouts:>8}")
print(f"  attack packets sent:         {attacker.packets_sent:>8}")
print(f"  forged cookies dropped:      {bed.guard.invalid_drops:>8}")
print(f"  requests reaching the ANS:   {bed.ans.requests_served:>8}")
print()
print("Every request the ANS served carried a cookie the guard had")
print("verified against the sender's real address; the flood never")
print("touched it.")

assert bed.guard.invalid_drops >= attacker.packets_sent * 0.95
assert resolver.stats.completed > 1000
