"""Watch the NS-name cookie dance on the wire (paper Figure 2a).

Attaches a packet tracer to the guard and walks one resolver through a
cold-cache exchange, printing every packet with a note mapping it to the
paper's message numbers — then a cache-hit exchange to show the 1-RTT
steady state.

Run:  python examples/trace_cookie_exchange.py
"""

from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator
from repro.netsim import PacketTracer

bed = GuardTestbed(ans="simulator", ans_mode="referral")
client = bed.add_client("resolver")
lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", cache_cookies=True)

MESSAGE_NOTES = [
    "msg 1: resolver asks the guarded server a plain question",
    "msg 2: guard fabricates a referral; the NS *name* carries the cookie",
    "msg 3: resolver asks for that name's address — the cookie comes back",
    "msg 4: cookie verified; guard restores the real question to the ANS",
    "msg 5: the ANS's genuine referral (with glue) returns to the guard",
    "msg 6: guard answers message 3 with the real next-server address",
]

tracer = PacketTracer(bed.guard_node)
lrs.start()
while lrs.stats.completed < 1:
    bed.run(0.001)
lrs.stop()
bed.run(0.01)

print("Cold cache: the full six-message exchange (messages 1-6, Fig 2a)\n")
for record, note in zip(tracer.records, MESSAGE_NOTES):
    print(f"  {record}")
    print(f"      {note}")
print()

tracer.clear()
computations_before = bed.guard.cookies.computations
completed = lrs.stats.completed
lrs.start()
while lrs.stats.completed < completed + 1:
    bed.run(0.001)
lrs.stop()
bed.run(0.01)

print("Warm cache: the fabricated NS name is cached, so one round trip\n")
for record in tracer.records[:4]:
    print(f"  {record}")
print()
per_warm = (bed.guard.cookies.computations - computations_before) / (
    lrs.stats.completed - completed
)
print(f"Cookie computations per warm exchange: {per_warm:.0f}")
print("Cold exchange: 6 packets / 2 cookie computations;")
print("warm exchange: 4 packets / 1 — exactly the paper's §IV.D arithmetic.")

assert len(MESSAGE_NOTES) == 6
assert per_warm == 1.0
