"""Protecting a root server — the paper's motivating scenario (§I).

The 2002 incident the paper cites took out seven of the thirteen root
servers.  Here we build a miniature DNS hierarchy (root, com, foo.com),
put the DNS guard in front of the *root* using the NS-name cookie scheme,
and resolve names with a completely unmodified caching recursive resolver
while a spoofing flood hammers the root's address.

The resolver never knows the guard exists: it simply follows a referral
whose nameserver name happens to contain a cookie, and the follow-up query
for that name is the proof-of-address the guard needs.

Run:  python examples/protect_root_server.py
"""

from ipaddress import IPv4Address

from repro import (
    AuthoritativeServer,
    CookieFactory,
    Link,
    LocalRecursiveServer,
    Node,
    RemoteDnsGuard,
    Simulator,
    Zone,
)
from repro.attack import SpoofingAttacker
from repro.dnswire import soa_record

ROOT_IP = IPv4Address("198.41.0.4")
COM_IP = IPv4Address("192.5.6.30")
FOO_IP = IPv4Address("203.0.113.53")

sim = Simulator(seed=2026)
hub = Node(sim, "internet")
hub.add_address("10.255.255.1")


def attach(name: str, ip) -> Node:
    node = Node(sim, name)
    node.add_address(ip)
    link = Link(sim, node, hub, delay=0.0002)
    node.set_default_route(link)
    hub.add_route(f"{ip}/32", link)
    return node


# --- the DNS hierarchy -----------------------------------------------------
root_zone = Zone(".")
root_zone.add(soa_record("."))
root_zone.delegate("com.", "a.gtld-servers.net.", COM_IP)
com_zone = Zone("com.")
com_zone.add(soa_record("com."))
com_zone.delegate("foo.com.", "ns1.foo.com.", FOO_IP)
foo_zone = Zone("foo.com.")
foo_zone.add(soa_record("foo.com."))
foo_zone.add_a("www.foo.com.", "198.51.100.80")
foo_zone.add_a("mail.foo.com.", "198.51.100.25")

com_node = attach("com-ans", COM_IP)
foo_node = attach("foo-ans", FOO_IP)
AuthoritativeServer(com_node, [com_zone])
AuthoritativeServer(foo_node, [foo_zone])

# --- the guarded root -------------------------------------------------------
guard_node = Node(sim, "root-guard")
guard_node.add_address("198.41.0.1")
uplink = Link(sim, guard_node, hub, delay=0.0002)
guard_node.set_default_route(uplink)
hub.add_route(f"{ROOT_IP}/32", uplink)  # the root's IP routes via the guard

root_node = Node(sim, "root-ans")
root_node.add_address(ROOT_IP)
inner = Link(sim, guard_node, root_node, delay=0.00001)
guard_node.add_route(f"{ROOT_IP}/32", inner)
root_node.set_default_route(inner)
root = AuthoritativeServer(root_node, [root_zone])
guard = RemoteDnsGuard(guard_node, ROOT_IP, origin=".", cookie_factory=CookieFactory())

# --- a legitimate resolver and an attacker ----------------------------------
lrs_node = attach("campus-resolver", "10.0.0.53")
lrs = LocalRecursiveServer(lrs_node, [ROOT_IP], timeout=1.0)

attacker_node = attach("botnet", "10.66.0.1")
attacker = SpoofingAttacker(attacker_node, ROOT_IP, rate=20_000, qname="victim.example")
attacker.start()

# --- resolve through the flood -----------------------------------------------
results = {}
for name in ("www.foo.com", "mail.foo.com"):
    lrs.resolve(name, callback=lambda r, n=name: results.__setitem__(n, r))
sim.run(until=2.0)
attacker.stop()

print("Resolutions through a guarded root under a 20K req/s spoofed flood:")
for name, result in results.items():
    print(f"  {name:<14} -> {result.status:<9} {[str(a) for a in result.addresses()]}")
print()
print(f"  attack packets sent:          {attacker.packets_sent:>7}")
print(f"  fabricated referrals (msg 2): {guard.referrals_fabricated:>7}")
print(f"  cookie queries validated:     {guard.valid_cookies:>7}")
print(f"  queries the root ANS served:  {root.requests_served:>7}")
print()
print("The root answered only the resolver's validated queries; twenty")
print("thousand forged requests per second earned nothing but tiny,")
print("stateless referrals that no real host ever asked for.")

assert all(result.ok for result in results.values())
assert root.requests_served <= guard.valid_cookies
