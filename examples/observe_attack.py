"""Watch the guard absorb a spoofing flood — through the observability layer.

One legitimate resolver works through the local guard (the modified-DNS
scheme) while a spoofing attacker floods the protected server.  Instead of
poking at component stats dicts afterwards, everything is recorded by an
installed Observability context:

* ``guard.decisions`` counters show forwards vs drops, per scheme/outcome;
* spans trace each legitimate interaction end-to-end (client leg, guard
  decision, ANS serve) over virtual time;
* a packet tap on the guard shows the first packets of the flood;
* the wall-clock profiler attributes host time to event handlers.

Run:  python examples/observe_attack.py
"""

from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator, Observability, installed
from repro.attack import SpoofingAttacker

obs = Observability(profile=True)
with installed(obs):
    bed = GuardTestbed(ans="simulator", ans_mode="answer")
    tap = obs.tap(bed.guard_node, protocol="udp", max_records=20)

    client = bed.add_client("resolver", via_local_guard=True)
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
    attacker = SpoofingAttacker(
        bed.add_client("attacker"), ANS_ADDRESS, rate=5_000, carry_invalid_cookie=True
    )

    lrs.start()
    attacker.start()
    bed.run(0.5)

print(obs.report(title="spoofing flood, modified-DNS scheme"))

# the numbers behind the report are queryable too
decisions = {
    (dict(m.labels)["scheme"], dict(m.labels)["outcome"]): m.value
    for m in obs.registry.find("guard.decisions")
}
dropped = sum(v for (_, outcome), v in decisions.items() if outcome != "forward")
interactions = obs.spans.named("lrs.interaction")
completed = [s for s in interactions if s.attrs.get("completed")]

print()
print(f"guard decisions: {decisions}")
print(f"legitimate interactions completing despite the flood: "
      f"{len(completed)}/{len(interactions)}")

assert dropped > 0, "the flood never reached the guard"
assert completed, "legitimate traffic did not survive the flood"
assert len(tap.records) == 20
