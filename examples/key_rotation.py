"""Weekly key rotation with the generation bit (§III.E, last paragraph).

The guard overwrites the first bit of every cookie with its key
generation's parity.  On verification it picks the current or previous key
by that bit — so rotating the secret never invalidates cookies cached at
resolvers mid-TTL, and each check still costs exactly one MD5.

Run:  python examples/key_rotation.py
"""

from ipaddress import IPv4Address

from repro import CookieFactory
from repro.guard import random_key

factory = CookieFactory(random_key())
resolvers = [IPv4Address(f"10.{i}.0.53") for i in range(1, 6)]

print("Week 0: five resolvers obtain cookies")
week0 = {ip: factory.cookie(ip) for ip in resolvers}
for ip, cookie in week0.items():
    print(f"  {ip}  {cookie.hex()[:16]}…  generation bit={cookie[0] >> 7}")

factory.rotate()
print("\nWeek 1: the guard rotates its 76-byte secret key")
print(f"  week-0 cookies still valid? "
      f"{all(factory.verify(c, ip) for ip, c in week0.items())}")
week1 = {ip: factory.cookie(ip) for ip in resolvers}
print(f"  fresh cookies carry generation bit={week1[resolvers[0]][0] >> 7}")

checks_before = factory.computations
factory.verify(week0[resolvers[0]], resolvers[0])
factory.verify(week1[resolvers[0]], resolvers[0])
print(f"  MD5 computations per verification: "
      f"{(factory.computations - checks_before) / 2:.0f}")

factory.rotate()
print("\nWeek 2: another rotation — week-0 cookies have aged out")
print(f"  week-0 cookies valid? "
      f"{any(factory.verify(c, ip) for ip, c in week0.items())}")
print(f"  week-1 cookies valid? "
      f"{all(factory.verify(c, ip) for ip, c in week1.items())}")
