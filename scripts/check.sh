#!/usr/bin/env bash
# CI / pre-commit entrypoint: determinism lint, tier-1 tests, and a quick
# runtime-sanitizer pass over a representative experiment.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== determinism lint (python -m repro.analysis src) =="
python -m repro.analysis src

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== determinism sanitizer (table2, two seeds) =="
python -m repro table2 --sanitize
python -m repro table2 --sanitize --seed 7

echo "== fault-injection smoke (faults, sanitized) =="
python -m repro faults --fast --sanitize

echo "all checks passed"
