#!/usr/bin/env bash
# CI / pre-commit entrypoint: determinism lint, tier-1 tests, and a quick
# runtime-sanitizer pass over a representative experiment.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== static analysis (lint + taint dataflow + FSM conformance + races + perf + memory + layering) =="
python -m repro.analysis --flow --races --perf --memory --layers \
    --baseline scripts/flow_baseline.json \
    --baseline scripts/perf_baseline.json \
    --baseline scripts/memory_baseline.json \
    --fail-on warning \
    --bench "$(mktemp -u).json" \
    --sarif "${SARIF_OUT:-/dev/null}" src

echo "== README rule table drift check =="
python -m repro.analysis --rules-md-check README.md

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== determinism sanitizer (table2, two seeds) =="
python -m repro table2 --sanitize
python -m repro table2 --sanitize --seed 7

echo "== fault-injection smoke (faults, sanitized) =="
python -m repro faults --fast --sanitize

echo "== state-bounds high-water smoke (faults flood under the M006 monitor) =="
python -m repro faults --fast --memory

echo "== simultaneity races (interference monitor + schedule exploration) =="
python -m repro table2 --races
python -m repro faults --fast --races
python -m repro table1 --fast --explore 25
python -m repro table2 --explore 5

echo "== adaptive-control smoke (sanitized, with and without the controller) =="
python -m repro control --fast --static-only --sanitize
python -m repro control --fast --sanitize
python -m repro control --fast --races --bench "$(mktemp -u).json"

echo "== farm smoke (serial-vs-sharded digest equivalence + resume) =="
farm_dir=$(mktemp -d)
python -m repro farm --matrix smoke --fast --manifest "$farm_dir/serial.json" > /dev/null
python -m repro farm --matrix smoke --fast --shards 2 --manifest "$farm_dir/sharded.json" > /dev/null
digest_serial=$(python -c "import json,sys; print(json.load(open(sys.argv[1]))['digest'])" "$farm_dir/serial.json")
digest_sharded=$(python -c "import json,sys; print(json.load(open(sys.argv[1]))['digest'])" "$farm_dir/sharded.json")
if [ "$digest_serial" != "$digest_sharded" ]; then
    echo "farm sharding changed the manifest digest:" >&2
    echo "  serial : $digest_serial" >&2
    echo "  sharded: $digest_sharded" >&2
    exit 1
fi
# resume after a simulated kill: run 2 of 4 cells, then finish sharded
python -m repro farm --matrix smoke --fast --stop-after 2 --manifest "$farm_dir/resumed.json" > /dev/null
python -m repro farm --matrix smoke --fast --shards 2 --manifest "$farm_dir/resumed.json" --resume > /dev/null
digest_resumed=$(python -c "import json,sys; print(json.load(open(sys.argv[1]))['digest'])" "$farm_dir/resumed.json")
if [ "$digest_serial" != "$digest_resumed" ]; then
    echo "farm resume diverged from the serial digest:" >&2
    echo "  serial : $digest_serial" >&2
    echo "  resumed: $digest_resumed" >&2
    exit 1
fi
echo "manifest digest $digest_serial (sharded + resumed runs identical)"
rm -rf "$farm_dir"

echo "== observability smoke (obs showcase + obs-on/off trace parity) =="
python -m repro obs --fast > /dev/null
trace_off=$(python -m repro table2 --sanitize | tail -n 1)
trace_on=$(python -m repro table2 --sanitize --obs "$(mktemp -d)" --profile | tail -n 1)
if [ "$trace_off" != "$trace_on" ]; then
    echo "observability changed the event trace:" >&2
    echo "  off: $trace_off" >&2
    echo "  on:  $trace_on" >&2
    exit 1
fi
echo "$trace_on (identical with observability on)"

echo "all checks passed"
