#!/usr/bin/env bash
# CI / pre-commit entrypoint: determinism lint, tier-1 tests, and a quick
# runtime-sanitizer pass over a representative experiment.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== static analysis (lint + taint dataflow + FSM conformance + races + perf) =="
python -m repro.analysis --flow --races --perf \
    --baseline scripts/flow_baseline.json \
    --baseline scripts/perf_baseline.json \
    --sarif "${SARIF_OUT:-/dev/null}" src

echo "== README rule table drift check =="
python -m repro.analysis --rules-md-check README.md

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== determinism sanitizer (table2, two seeds) =="
python -m repro table2 --sanitize
python -m repro table2 --sanitize --seed 7

echo "== fault-injection smoke (faults, sanitized) =="
python -m repro faults --fast --sanitize

echo "== simultaneity races (interference monitor + schedule exploration) =="
python -m repro table2 --races
python -m repro faults --fast --races
python -m repro table1 --fast --explore 25
python -m repro table2 --explore 5

echo "== adaptive-control smoke (sanitized, with and without the controller) =="
python -m repro control --fast --static-only --sanitize
python -m repro control --fast --sanitize
python -m repro control --fast --races --bench "$(mktemp -u).json"

echo "== observability smoke (obs showcase + obs-on/off trace parity) =="
python -m repro obs --fast > /dev/null
trace_off=$(python -m repro table2 --sanitize | tail -n 1)
trace_on=$(python -m repro table2 --sanitize --obs "$(mktemp -d)" --profile | tail -n 1)
if [ "$trace_off" != "$trace_on" ]; then
    echo "observability changed the event trace:" >&2
    echo "  off: $trace_off" >&2
    echo "  on:  $trace_on" >&2
    exit 1
fi
echo "$trace_on (identical with observability on)"

echo "all checks passed"
