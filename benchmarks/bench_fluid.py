"""Fluid-model cross-check: closed-form predictions vs the paper's numbers.

Mirrors §IV.D's consistency arguments: the guard's throughput ratios should
follow packet-count x cost arithmetic.
"""

import pytest
from conftest import record

from repro.experiments.fluid import FluidModel, format_predictions
from repro.experiments.table3 import PAPER_KRPS


@pytest.fixture(scope="module")
def model():
    return FluidModel()


def test_fluid_predictions(benchmark, model):
    benchmark.pedantic(format_predictions, args=(model,), rounds=1, iterations=1)
    record("fluid", format_predictions(model))

    # predictions land within 15% of the paper's Table III
    for scheme in ("ns_name", "fabricated", "tcp", "modified"):
        predicted = model.throughput(scheme, cache_hit=False) / 1000
        assert predicted == pytest.approx(PAPER_KRPS[scheme]["miss"], rel=0.15)
    for scheme in ("ns_name", "fabricated", "modified"):
        predicted = model.throughput(scheme, cache_hit=True) / 1000
        assert predicted == pytest.approx(PAPER_KRPS[scheme]["hit"], rel=0.1)


def test_fluid_ratio_arguments(benchmark, model):
    """The paper's §IV.D ratio bounds, re-derived from the cost model."""
    benchmark.pedantic(lambda: model, rounds=1, iterations=1)
    miss_ns = model.request_cost("ns_name", cache_hit=False)
    miss_fab = model.request_cost("fabricated", cache_hit=False)
    hit = model.request_cost("ns_name", cache_hit=True)
    # "theoretically, their throughput should be between 3/2 (cookie
    # computation) and 8/6 (packet processing) times that of the
    # fabricated NS name/IP scheme"
    assert 8 / 6 <= miss_fab / miss_ns <= 3 / 2 + 0.2
    # cache hit is the cheapest UDP path
    assert hit < miss_ns < miss_fab


def test_fig6_predictions(benchmark, model):
    benchmark.pedantic(lambda: model, rounds=1, iterations=1)
    assert model.guard_saturation_attack_rate() == pytest.approx(200_000, rel=0.1)
    assert model.legit_throughput_under_attack(250_000) == pytest.approx(
        80_000, rel=0.2
    )
    assert model.unprotected_legit_throughput(110_000) == pytest.approx(0, abs=1)


def test_fig7_predictions(benchmark, model):
    benchmark.pedantic(lambda: model, rounds=1, iterations=1)
    assert model.tcp_proxy_throughput(50) == pytest.approx(22_700, rel=0.1)
    # management overhead roughly halves throughput by 6000 connections
    assert model.tcp_proxy_throughput(6000) < model.tcp_proxy_throughput(50) * 0.6
    assert model.tcp_proxy_under_attack(250_000) == pytest.approx(10_000, rel=0.25)
