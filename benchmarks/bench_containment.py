"""Containment bench: §I's "deployed only when a DoS attack arises" claim.

The guard contains a 200K req/s flood that starts mid-run within a couple
of rate-estimator windows, without training or tuning.
"""

import pytest
from conftest import record

from repro.experiments.containment import format_containment, run_containment


@pytest.fixture(scope="module")
def result():
    return run_containment()


def test_containment(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    record("containment", format_containment(result))

    # baseline at the ANS's full capacity before the attack
    assert result.baseline_throughput == pytest.approx(110_000, rel=0.1)
    # contained: legitimate throughput back to >=90% of baseline...
    assert result.contained
    # ...within a few rate-estimator windows (each 100 ms)
    assert result.recovery_time < 0.5
    # and it stays recovered for the rest of the attack
    tail = [
        s.value
        for s in result.throughput
        if s.time > result.attack_start + result.recovery_time + 0.1
    ]
    assert tail
    assert min(tail) > 0.9 * result.baseline_throughput
