"""Figure 5 bench: BIND under attack with the guard on and off."""

import pytest
from conftest import record

from repro.experiments.fig5 import format_fig5, run_fig5

ATTACK_RATES = (0, 8_000, 12_000, 16_000)


@pytest.fixture(scope="module")
def points():
    return run_fig5(ATTACK_RATES, fast=True)


def test_fig5(benchmark, points):
    benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    record("fig5", format_fig5(points))
    on = {p.attack_rate: p for p in points if p.protection}
    off = {p.attack_rate: p for p in points if not p.protection}

    # 5(a) disabled: fine until saturation, collapse past ~12K attack
    assert off[0].legit_throughput == pytest.approx(2000, rel=0.1)
    assert off[8_000].legit_throughput == pytest.approx(2000, rel=0.15)
    assert off[16_000].legit_throughput < 500  # collapsed

    # 5(a) enabled: holds ~1.5K (1K UDP + ~0.5K TCP-capped) under attack
    assert on[16_000].legit_throughput > 1200

    # 5(b) disabled: ANS CPU climbs to saturation with the attack rate
    assert off[16_000].ans_cpu > 0.95
    assert off[8_000].ans_cpu > off[0].ans_cpu

    # 5(b) enabled: once the threshold trips, the guard filters the attack
    # and the ANS's CPU falls right back down
    assert on[16_000].ans_cpu < 0.3


def test_fig5_threshold_knee(benchmark, points):
    """Spoof detection only engages past the 14K activation threshold."""
    benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    on = {p.attack_rate: p for p in points if p.protection}
    # below the threshold everything passes through to the ANS
    assert on[8_000].ans_cpu > 0.5
    # above it the guard takes over
    assert on[16_000].ans_cpu < on[8_000].ans_cpu
