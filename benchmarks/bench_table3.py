"""Table III bench: guard throughput per scheme, cache miss vs hit."""

import pytest
from conftest import record

from repro.experiments.table3 import format_table3, run_table3


@pytest.fixture(scope="module")
def rows():
    return run_table3(fast=True)


def test_table3(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    record("table3", format_table3(rows))
    by_scheme = {row.scheme: row for row in rows}

    # cache hits for the UDP schemes are capped by the ANS simulator (~110K)
    for scheme in ("ns_name", "fabricated", "modified"):
        assert by_scheme[scheme].hit_krps == pytest.approx(110.0, rel=0.1)

    # ordering on cache misses: ns_name ~ modified > fabricated > tcp
    assert by_scheme["ns_name"].miss_krps == pytest.approx(
        by_scheme["modified"].miss_krps, rel=0.15
    )
    assert by_scheme["ns_name"].miss_krps > by_scheme["fabricated"].miss_krps * 1.15
    assert by_scheme["fabricated"].miss_krps > by_scheme["tcp"].miss_krps * 2

    # TCP is flat at ~22.7K regardless of caching
    assert by_scheme["tcp"].miss_krps == pytest.approx(22.7, rel=0.15)
    assert by_scheme["tcp"].hit_krps == pytest.approx(22.7, rel=0.15)


def test_table3_matches_paper_within_tolerance(benchmark, rows):
    """Within 20% of the paper's absolute numbers across the board."""
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    for row in rows:
        assert row.miss_krps == pytest.approx(row.paper_miss_krps, rel=0.2)
        assert row.hit_krps == pytest.approx(row.paper_hit_krps, rel=0.2)
