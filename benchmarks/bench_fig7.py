"""Figure 7 bench: the transparent TCP proxy's throughput."""

import pytest
from conftest import record

from repro.experiments.fig7 import format_fig7, run_fig7

CONCURRENCIES = (20, 50, 1000, 6000)
ATTACK_RATES = (0, 100_000, 250_000)


@pytest.fixture(scope="module")
def series():
    return run_fig7(CONCURRENCIES, ATTACK_RATES, fast=True)


def test_fig7a_concurrency_sweep(benchmark, series):
    series_a, series_b = series
    benchmark.pedantic(lambda: series_a, rounds=1, iterations=1)
    record("fig7", format_fig7(series_a, series_b))
    by_conc = {p.concurrency: p for p in series_a}

    # ~22K req/s in the LAN sweet spot (paper: ~22K around 20-50 concurrent)
    assert by_conc[20].throughput == pytest.approx(22_000, rel=0.15)
    assert by_conc[50].throughput == pytest.approx(22_700, rel=0.15)

    # connection-management overhead halves throughput toward 6000
    assert by_conc[6000].throughput < by_conc[50].throughput * 0.6
    assert by_conc[6000].throughput > 4_000  # degraded, not dead


def test_fig7b_attack_sweep(benchmark, series):
    benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    _, series_b = series
    by_rate = {p.attack_rate: p for p in series_b}

    # ~22.7K with no attack, decaying roughly linearly to ~10K at 250K
    assert by_rate[0].throughput == pytest.approx(22_700, rel=0.15)
    assert by_rate[250_000].throughput == pytest.approx(10_000, rel=0.25)
    assert (
        by_rate[0].throughput
        > by_rate[100_000].throughput
        > by_rate[250_000].throughput
    )
