"""Scenario-farm bench: serial vs sharded execution of a smoke matrix.

The farm's contract is that sharding changes wall-clock only: the merged
results, per-cell trace hashes, and manifest digest of an N-shard run are
byte-identical to the serial run's.  This bench times both executions of
the smoke matrix (2 fault scenarios × 2 schemes, fast windows), asserts
the digests match, and records the speedup alongside the hybrid sweep
(``python -m repro farm --matrix faults --bench scripts/BENCH_farm.json``
maintains the full-matrix trajectory).
"""

import pytest
from conftest import record

from repro.farm import run_farm


@pytest.fixture(scope="module")
def runs():
    serial = run_farm("smoke", seed=0, fast=True)
    sharded = run_farm("smoke", seed=0, fast=True, shards=2)
    return serial, sharded


def test_farm_sharding_equivalence(benchmark, runs):
    serial, sharded = runs
    benchmark.pedantic(lambda: runs, rounds=1, iterations=1)

    assert serial.complete and sharded.complete
    assert not serial.failed and not sharded.failed
    assert sharded.manifest.digest() == serial.manifest.digest()
    for cell in serial.cells:
        a = serial.manifest.records[cell.cell_id]
        b = sharded.manifest.records[cell.cell_id]
        assert a.result == b.result and a.trace_hash == b.trace_hash

    lines = [
        "Scenario farm: serial vs 2-shard smoke matrix "
        f"({len(serial.cells)} cells)",
        f"  serial : {serial.wall_seconds:>6.2f}s",
        f"  2-shard: {sharded.wall_seconds:>6.2f}s "
        f"(speedup {serial.wall_seconds / max(sharded.wall_seconds, 1e-9):.2f}x)",
        f"  manifest digest: {serial.manifest.digest()} (sharded run identical)",
        serial.rendered or "",
    ]
    record("farm", "\n".join(lines))


def test_hybrid_matrix_under_farm(benchmark):
    """The hybrid fluid/packet sweep runs as farm cells: 10⁶ modeled
    clients per cell, each cell thousands (not millions) of events."""
    result = run_farm("hybrid", seed=0, fast=True)
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    assert result.complete and not result.failed
    for row in result.reduced:
        assert row["clients"] == 1_000_000
        assert row["events"] < 20_000
    protected = {row["attack_rate"]: row for row in result.reduced if row["protection"]}
    unprotected = {
        row["attack_rate"]: row for row in result.reduced if not row["protection"]
    }
    # protection holds the bulk served rate through 100K attack; without
    # it the flood eats the ANS
    assert protected[100_000.0]["fluid_served_rate"] == pytest.approx(
        protected[0.0]["fluid_served_rate"], rel=0.05
    )
    assert (
        unprotected[100_000.0]["fluid_served_rate"]
        < unprotected[0.0]["fluid_served_rate"] * 0.25
    )
