"""Figure 6 bench: guard throughput/CPU under spoofed attack (headline result).

Paper: "the DNS guard can deliver up to 80K requests/sec to legitimate
users in the presence of DoS attacks at the rate of 250K requests/sec",
holding ~full ANS throughput until its own CPU saturates near 200K.
"""

import pytest
from conftest import record

from repro.experiments.fig6 import format_fig6, run_fig6

ATTACK_RATES = (0, 100_000, 200_000, 250_000)


@pytest.fixture(scope="module")
def points():
    return run_fig6(ATTACK_RATES, fast=True)


def test_fig6(benchmark, points):
    benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    record("fig6", format_fig6(points))
    on = {p.attack_rate: p for p in points if p.protection}
    off = {p.attack_rate: p for p in points if not p.protection}

    # headline: >= 80K legitimate req/s at 250K attack with protection on
    assert on[250_000].legit_throughput >= 80_000

    # protection on holds ~full ANS throughput through 100K attack
    assert on[0].legit_throughput == pytest.approx(110_000, rel=0.1)
    assert on[100_000].legit_throughput == pytest.approx(110_000, rel=0.1)

    # protection off: linear-ish decay, dead by ~ANS capacity
    assert off[0].legit_throughput == pytest.approx(110_000, rel=0.1)
    assert off[100_000].legit_throughput < off[0].legit_throughput * 0.5
    assert off[200_000].legit_throughput < 5_000

    # guard CPU rises ~linearly and saturates by 250K
    assert on[100_000].guard_cpu > on[0].guard_cpu
    assert on[250_000].guard_cpu > 0.95

    # the spoof-detection overhead: enabled CPU above disabled by ~15-25%+
    assert on[100_000].guard_cpu > off[100_000].guard_cpu


def test_fig6_crossover_against_fluid_model(benchmark, points):
    """The DES knee should fall where the analytical model predicts."""
    benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    from repro.experiments.fluid import FluidModel

    model = FluidModel()
    knee = model.guard_saturation_attack_rate()
    assert 150_000 < knee < 250_000  # the paper's ~200K
    on = {p.attack_rate: p for p in points if p.protection}
    # before the knee the ANS is the bottleneck; past it throughput dips
    assert on[100_000].legit_throughput > on[250_000].legit_throughput
    predicted = model.legit_throughput_under_attack(250_000)
    assert on[250_000].legit_throughput == pytest.approx(predicted, rel=0.15)
