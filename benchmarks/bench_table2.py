"""Table II bench: request latency per scheme over the 10.9 ms WAN path."""

import pytest
from conftest import record

from repro.experiments.calibration import WAN_RTT
from repro.experiments.table2 import format_table2, run_table2


@pytest.fixture(scope="module")
def rows():
    return run_table2()


def test_table2(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    record("table2", format_table2(rows))
    by_scheme = {row.scheme: row for row in rows}
    rtt_ms = WAN_RTT * 1000

    # cache-miss RTT multiples: 2x / 3x / 3x / 2x
    assert by_scheme["ns_name"].miss_ms == pytest.approx(2 * rtt_ms, rel=0.15)
    assert by_scheme["fabricated"].miss_ms == pytest.approx(3 * rtt_ms, rel=0.15)
    assert by_scheme["tcp"].miss_ms == pytest.approx(3 * rtt_ms, rel=0.15)
    assert by_scheme["modified"].miss_ms == pytest.approx(2 * rtt_ms, rel=0.15)

    # cache hits take one RTT for the UDP schemes, three for TCP
    for scheme in ("ns_name", "fabricated", "modified"):
        assert by_scheme[scheme].hit_ms == pytest.approx(rtt_ms, rel=0.15)
    assert by_scheme["tcp"].hit_ms == pytest.approx(3 * rtt_ms, rel=0.15)


def test_table2_matches_paper_within_tolerance(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    for row in rows:
        assert row.miss_ms == pytest.approx(row.paper_miss_ms, rel=0.15)
        assert row.hit_ms == pytest.approx(row.paper_hit_ms, rel=0.15)
