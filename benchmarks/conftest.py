"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures (in a
reduced-but-representative configuration), prints the paper-vs-measured
rows, and asserts the *shape* of the result — who wins, by roughly what
factor, where the crossovers fall.  Absolute equality with the paper's
testbed is not expected (see DESIGN.md).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print a reproduced table/figure and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
