"""Calibration bench: the substrate capacities quoted in §IV.A/§IV.C.

Paper: BIND serves 14K req/s over UDP and 2.2K req/s over TCP; the ANS
simulator reaches ~110K req/s.  These are the anchors every other
experiment leans on, so we measure them first.
"""

from conftest import record

from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator, TcpLoadClient


def _saturate_udp(ans_kind: str) -> float:
    bed = GuardTestbed(ans=ans_kind, zone_origin="foo.com.", answer_ttl=3600,
                       guard_enabled=False)
    client = bed.add_client("lrs")
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=128)
    lrs.start()
    (rate,) = bed.measure([lrs.stats], 0.3, warmup=0.2)
    lrs.stop()
    return rate


def _saturate_tcp() -> float:
    bed = GuardTestbed(ans="bind", zone_origin="foo.com.", answer_ttl=3600,
                       guard_enabled=False, cookie_subnet=None)
    client = bed.add_client("lrs")
    tcp = TcpLoadClient(client, ANS_ADDRESS, concurrency=16)
    tcp.start()
    (rate,) = bed.measure([tcp.stats], 0.5, warmup=0.3)
    tcp.stop()
    return rate


def test_bind_udp_capacity(benchmark):
    rate = benchmark.pedantic(_saturate_udp, args=("bind",), rounds=1, iterations=1)
    record(
        "calibration_bind_udp",
        f"BIND UDP capacity: measured {rate / 1000:.1f}K req/s (paper: 14K)",
    )
    assert 12_000 < rate < 16_000


def test_bind_tcp_capacity(benchmark):
    rate = benchmark.pedantic(_saturate_tcp, rounds=1, iterations=1)
    record(
        "calibration_bind_tcp",
        f"BIND TCP capacity: measured {rate / 1000:.2f}K req/s (paper: 2.2K)",
    )
    assert 1_700 < rate < 2_700


def test_ans_simulator_capacity(benchmark):
    rate = benchmark.pedantic(_saturate_udp, args=("simulator",), rounds=1, iterations=1)
    record(
        "calibration_ans_simulator",
        f"ANS simulator capacity: measured {rate / 1000:.1f}K req/s (paper: ~110K)",
    )
    assert 100_000 < rate < 120_000
