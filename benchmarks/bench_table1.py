"""Table I bench: the scheme-comparison table, measured rather than asserted."""

import pytest
from conftest import record

from repro.experiments.table1 import format_table1, measure_cookie_storage, run_table1


@pytest.fixture(scope="module")
def rows():
    return run_table1(measure_latency=True)


@pytest.fixture(scope="module")
def storage():
    return measure_cookie_storage(10)


def test_table1(benchmark, rows, storage):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    record("table1", format_table1(rows, storage=storage))
    by_scheme = {row.scheme: row for row in rows}

    # worst/best latency in RTTs (paper's first two rows)
    assert by_scheme["ns_name"].worst_latency_rtt == pytest.approx(2.0, rel=0.15)
    assert by_scheme["fabricated"].worst_latency_rtt == pytest.approx(3.0, rel=0.15)
    assert by_scheme["tcp"].worst_latency_rtt == pytest.approx(3.0, rel=0.15)
    assert by_scheme["modified"].worst_latency_rtt == pytest.approx(2.0, rel=0.15)
    for scheme in ("ns_name", "fabricated", "modified"):
        assert by_scheme[scheme].best_latency_rtt == pytest.approx(1.0, rel=0.15)
    assert by_scheme["tcp"].best_latency_rtt == pytest.approx(3.0, rel=0.15)

    # cookie ranges: 2^32 for labels, 2^128 for the modified scheme
    assert by_scheme["ns_name"].cookie_range_bits == 32
    assert by_scheme["modified"].cookie_range_bits == 128

    # traffic amplification: bounded for DNS-based, zero for the others
    assert 0 < by_scheme["ns_name"].amplification_bytes <= 40
    assert by_scheme["tcp"].amplification_bytes == 0
    assert by_scheme["modified"].amplification_bytes == 0

    # deployment transparency
    assert by_scheme["ns_name"].deployment == "ANS side only"
    assert by_scheme["modified"].deployment == "LRS side and ANS side"


def test_table1_cookie_storage_row(benchmark, storage):
    """"1 cookie per NS record" vs "2 cookies per non-referral record"."""
    benchmark.pedantic(lambda: storage, rounds=1, iterations=1)
    ns_entries, fab_entries = storage
    # NS-name: constant per zone, regardless of how many names resolved
    assert ns_entries == 2  # the com delegation's cookie NS + its A
    # fabricated: two entries (cookie NS + COOKIE2 A) for each of 10 names
    assert fab_entries == 20
