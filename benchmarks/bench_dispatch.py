"""Event-dispatch micro-benchmark: events/s on the guarded flood workload.

This is the measurement behind ``scripts/BENCH_profile.json`` (see ``python -m
repro obs --bench-profile``): the P-rule first-wave fixes — ``__slots__``
on per-event classes, interned names, memoized wire encodings, the
AnsSimulator response/size caches and the route/address lookups — land
here as raw simulator throughput.
"""

import pytest
from conftest import record

from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator
from repro.attack import SpoofingAttacker
from repro.obs import Observability, installed

#: Loose floor: the seed measured ~45K ev/s and the first fix wave ~58K on
#: the reference container; anything under this means dispatch regressed
#: catastrophically, not that the host is merely slow.
MIN_EVENTS_PER_SECOND = 10_000


def _run_profiled_flood(duration: float = 0.5):
    obs = Observability(profile=True)
    with installed(obs):
        bed = GuardTestbed(seed=11, ans="simulator", ans_mode="answer")
        resolver_node = bed.add_client("resolver", via_local_guard=True)
        resolver = LrsSimulator(resolver_node, ANS_ADDRESS, workload="plain")
        attacker = SpoofingAttacker(
            bed.add_client("attacker"),
            ANS_ADDRESS,
            rate=5_000,
            carry_invalid_cookie=True,
        )
        obs.tap(bed.guard_node, protocol="udp", max_records=40)
        resolver.start()
        attacker.start()
        bed.run(duration)
    obs.collect()
    return obs.profiler


@pytest.fixture(scope="module")
def profiler():
    return _run_profiled_flood()


def test_dispatch_throughput(benchmark, profiler):
    benchmark.pedantic(lambda: profiler, rounds=1, iterations=1)
    lines = [
        f"events handled     {profiler.events}",
        f"events / second    {profiler.events_per_second():,.0f}",
        f"max heap depth     {profiler.max_heap_depth}",
        "",
        "top handlers by wall time:",
    ]
    for key, stats in profiler.top_handlers(8):
        lines.append(f"  {key:<58} {stats.calls:>7} {stats.seconds:>8.4f}s")
    record("dispatch", "\n".join(lines))

    assert profiler.events > 0
    assert profiler.events_per_second() > MIN_EVENTS_PER_SECOND

    # the satellite-3 profiler fix: tap wrappers must be attributed to the
    # wrapped transmit, never to the tracer's closure qualname
    assert not any(".<locals>." in key for key in profiler.handlers)
    assert any(key.endswith("Link.transmit") for key in profiler.handlers)
