"""§III.G bench: amplification, cookie guessing, zombie throttling."""

import pytest
from conftest import record

from repro.experiments.attacks import (
    format_attack_report,
    run_amplification,
    run_cookie2_guessing,
    run_probing_attack,
    run_zombie_flood,
)
from repro.guard import UnverifiedResponseLimiter


@pytest.fixture(scope="module")
def results():
    unguarded = run_amplification(guarded=False)
    guarded = run_amplification(
        guarded=True,
        rl1=UnverifiedResponseLimiter(per_source_rate=100.0, per_source_burst=100.0),
    )
    guessing = run_cookie2_guessing()
    zombie = run_zombie_flood()
    probing_open = run_probing_attack(rl2_enabled=False)
    probing_limited = run_probing_attack(rl2_enabled=True)
    return unguarded, guarded, guessing, zombie, probing_open, probing_limited


def test_attack_analysis(benchmark, results):
    unguarded, guarded, guessing, zombie, probing_open, probing_limited = results
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    record(
        "attacks",
        format_attack_report(
            unguarded, guarded, guessing, zombie, probing_open, probing_limited
        ),
    )

    # §I: an open server amplifies ~10x; §III.G: the guard bounds it < 1x
    assert unguarded.ratio > 5.0
    assert guarded.ratio < 1.0

    # §III.G: spraying COOKIE2 succeeds with probability exactly 1/R_y
    assert guessing.observed_success_rate == pytest.approx(
        guessing.expected_success_rate, rel=0.01
    )

    # §III.G: a valid-cookie zombie is clamped to Rate-Limiter2's rate
    assert zombie.admitted_rate == pytest.approx(zombie.limiter_rate, rel=0.25)
    assert zombie.admitted_rate < zombie.offered_rate * 0.05


def test_bandwidth_starvation(benchmark):
    """§I: a reflected flood starves a victim's link; the guard prevents it."""
    from repro.experiments.attacks import format_starvation, run_bandwidth_starvation

    unguarded = run_bandwidth_starvation(guarded=False)
    guarded = run_bandwidth_starvation(guarded=True)
    benchmark.pedantic(lambda: (unguarded, guarded), rounds=1, iterations=1)
    record("starvation", format_starvation(unguarded, guarded))
    # the attacker's own bandwidth stays far below the victim's link
    assert unguarded.attacker_bandwidth < unguarded.victim_link_capacity / 4
    # unguarded: the reflected flood costs the victim real packet loss
    assert unguarded.legit_delivery_rate < 0.85
    # guarded: nothing reflected, nothing lost
    assert guarded.legit_delivery_rate == pytest.approx(1.0)


def test_probing_attack_defeated_by_rl2(benchmark, results):
    """§III.G: "Rate-Limiter2 can control the attack request rate and make
    it difficult to check if a guessed y value is correct"."""
    *_, probing_open, probing_limited = results
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    # with the limiters open the probe pinpoints the correct y...
    assert probing_open.attacker_succeeded
    # ...and with Rate-Limiter2 engaged it learns nothing
    assert not probing_limited.attacker_succeeded
    assert probing_limited.identified == []
