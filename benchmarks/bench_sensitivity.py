"""Sensitivity bench: the qualitative claims survive cost-model perturbation."""

import pytest
from conftest import record

from repro.experiments.sensitivity import (
    format_sensitivity,
    run_sensitivity,
    summarize,
)


@pytest.fixture(scope="module")
def results():
    return run_sensitivity()


def test_sensitivity(benchmark, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    record("sensitivity", format_sensitivity(results))
    summary = summarize(results)

    # Table III's scheme ordering is not a calibration artifact
    assert summary["ordering_holds"] >= 0.9
    # nor is the cache-hit advantage
    assert summary["hits_beat_misses"] == 1.0
    # wherever the guard hardware can sustain the ANS at all, it still
    # delivers heavily while the unprotected server would be dead
    assert summary["min_protected_at_15x"] > 30_000
    assert summary["median_knee_over_ans"] > 1.0


def test_default_configuration_matches_paper(benchmark, results):
    """The unperturbed configuration reproduces the paper's regime."""
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    default = next(
        r for r in results if all(v == 1.0 for v in r.factors.values())
    )
    assert default.ordering_holds
    assert default.guard_keeps_up
    assert default.knee_over_ans_capacity == pytest.approx(202 / 110, rel=0.1)