"""Observability overhead bench: an observed run must stay within 5%.

The overhead contract (DESIGN.md, "Observability"): with no context
installed the instrumentation is dormant ``is None`` checks, and an
installed context under a bounded span budget settles into counters and
inert null spans once the cap is reached.  This bench runs the same
guarded closed-loop workload bare and observed and asserts the wall-clock
ratio.  Full span capture (the default 200k-span budget) costs more while
spans are being allocated; that mode is bounded by design, not by this
assertion.

Methodology, built for a noisy shared host: rounds are *paired* (bare and
observed timed back-to-back, order alternating) so the per-pair ratio
cancels slow host drift; the median pair ratio is the estimate; and a
measurement that lands over budget is retried — wall-clock noise only ever
inflates the ratio, so the best of a few attempts is the honest one.
"""

import gc
import statistics
import time

from conftest import record

from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.obs import Observability, installed

#: Virtual seconds of closed-loop load per timed run — long enough that
#: the span cap is reached early and steady state dominates.
DURATION = 2.0

#: Paired rounds per measurement attempt.
ROUNDS = 7

#: The contract: observed wall clock <= 1.05x bare.
BUDGET = 1.05

#: Over-budget measurements are retried this many times before failing.
ATTEMPTS = 3

#: Span budget for the observed run — small enough that the cap is hit
#: early and the measurement reflects steady-state cost.
SPAN_BUDGET = 1_000


def _scenario() -> None:
    bed = GuardTestbed(seed=1, ans="simulator", ans_mode="answer")
    client = bed.add_client("lrs", via_local_guard=True)
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
    lrs.start()
    bed.run(DURATION)


def _observed_scenario() -> None:
    obs = Observability(max_spans=SPAN_BUDGET)
    with installed(obs):
        _scenario()
    assert obs.spans.dropped > 0, "span cap never hit; raise DURATION"


def _timed(fn) -> float:
    gc.collect()
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _measure() -> tuple[float, float, float]:
    """One attempt: median paired ratio plus best absolute times."""
    bare = [0.0] * ROUNDS
    observed = [0.0] * ROUNDS
    for i in range(ROUNDS):
        if i % 2 == 0:
            bare[i] = _timed(_scenario)
            observed[i] = _timed(_observed_scenario)
        else:
            observed[i] = _timed(_observed_scenario)
            bare[i] = _timed(_scenario)
    ratio = statistics.median(o / b for o, b in zip(observed, bare))
    return ratio, min(bare), min(observed)


def test_obs_overhead_within_budget(benchmark):
    # warm both paths so allocator/caches settle before timing
    _scenario()
    _observed_scenario()

    ratio, best_bare, best_observed = _measure()
    attempts = 1
    while ratio >= BUDGET and attempts < ATTEMPTS:
        ratio, best_bare, best_observed = _measure()
        attempts += 1

    benchmark.pedantic(_observed_scenario, rounds=1, iterations=1)

    record(
        "obs_overhead",
        "\n".join(
            [
                "observability overhead (guarded closed-loop workload, "
                f"{DURATION:.0f}s virtual, median of {ROUNDS} paired rounds, "
                f"attempt {attempts}/{ATTEMPTS})",
                f"  bare:     {best_bare * 1000:8.1f} ms (best)",
                f"  observed: {best_observed * 1000:8.1f} ms (best, "
                f"span budget {SPAN_BUDGET})",
                f"  ratio:    {ratio:8.3f}  (budget {BUDGET:.2f})",
            ]
        ),
    )
    assert ratio < BUDGET, (
        f"observability overhead {ratio:.3f}x exceeds {BUDGET:.2f}x budget "
        f"after {attempts} attempts"
    )
