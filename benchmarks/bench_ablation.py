"""Ablation bench: HCF baseline, key-rotation designs, RFC 7873 comparison."""

import pytest
from conftest import record

from repro.experiments.ablation import (
    format_ablation,
    run_hcf_ablation,
    run_ingress_deployment,
    run_rotation_ablation,
    run_scheme_comparison,
)


@pytest.fixture(scope="module")
def results():
    ingress = [run_ingress_deployment(f) for f in (0.0, 0.5, 0.9, 1.0)]
    return run_hcf_ablation(), run_rotation_ablation(), run_scheme_comparison(), ingress


def test_ablation(benchmark, results):
    hcf, rotation, schemes, ingress = results
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    record("ablation", format_ablation(hcf, rotation, schemes, ingress))

    # HCF's structural false negatives dwarf cookie-guessing odds (§II)
    assert hcf.hcf_false_negative_rate > 0.02
    assert hcf.cookie_false_negative_rate < 1e-9

    # the generation bit preserves every outstanding cookie across a
    # rotation; naive rotation kills them all (§III.E)
    assert rotation.survivors_with_generation_bit == rotation.cookies_issued
    assert rotation.survivors_naive == 0

    # RFC 7873 matches the paper's modified scheme on steady-state
    # throughput (both are ANS-capped on this testbed)
    assert schemes.rfc7873_rps == pytest.approx(schemes.modified_dns_rps, rel=0.1)

    # §II: ingress filtering leaks exactly the non-deploying fraction
    for result in ingress:
        assert result.leak_rate == pytest.approx(
            1.0 - result.deployment_fraction, abs=0.02
        )
