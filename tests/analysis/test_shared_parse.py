"""The shared single-parse path: parsed ASTs feed every rule family."""

import json
import textwrap

from repro.analysis import lint_paths
from repro.analysis.bench import write_bench_analysis
from repro.analysis.flow.core import load_modules


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestParsedEquivalence:
    def test_lint_with_shared_parse_matches_cold_parse(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            import time


            def stamp():
                return time.time()
            """,
        )
        cold = lint_paths([tmp_path])
        modules = load_modules([tmp_path])
        parsed = {module.path: module for module in modules}
        warm = lint_paths([tmp_path], parsed=parsed)
        assert warm == cold
        assert warm, "fixture should produce at least one finding"

    def test_syntax_error_file_still_reported_with_shared_parse(self, tmp_path):
        write(tmp_path, "broken.py", "def oops(:\n")
        modules = load_modules([tmp_path])  # skips the E999 file
        parsed = {module.path: module for module in modules}
        findings = lint_paths([tmp_path], parsed=parsed)
        assert [f.rule for f in findings] == ["E999"]


class TestBenchAnalysis:
    def test_writes_document_shape(self, tmp_path):
        path = tmp_path / "BENCH_analysis.json"
        doc = write_bench_analysis(
            str(path),
            [("parse", 0.5), ("lint", 0.25)],
            date="2026-08-08",
        )
        assert doc["benchmark"] == "analysis-cli"
        assert doc["unit"] == "seconds"
        assert doc["value"] == 0.75
        assert doc["detail"]["phases"] == {"parse": 0.5, "lint": 0.25}
        assert doc["trajectory"] == [
            {"date": "2026-08-08", "seconds": 0.75, "phases": {"parse": 0.5, "lint": 0.25}}
        ]
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == doc

    def test_appends_to_existing_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_analysis.json"
        write_bench_analysis(str(path), [("parse", 1.0)], date="2026-08-01")
        doc = write_bench_analysis(str(path), [("parse", 0.8)], date="2026-08-08")
        assert [entry["date"] for entry in doc["trajectory"]] == [
            "2026-08-01",
            "2026-08-08",
        ]
        assert doc["value"] == 0.8

    def test_corrupt_previous_document_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_analysis.json"
        path.write_text("{not json", encoding="utf-8")
        doc = write_bench_analysis(str(path), [("parse", 0.1)], date="2026-08-08")
        assert len(doc["trajectory"]) == 1
