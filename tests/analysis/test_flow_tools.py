"""Tooling around the flow engine: SARIF, baselines, U001, and the CLI."""

import json
import textwrap

import pytest

from repro.analysis.cli import (
    RULES_MD_BEGIN,
    RULES_MD_END,
    main,
    rules_markdown,
)
from repro.analysis.engine import SuppressionTracker, lint_source
from repro.analysis.findings import Finding
from repro.analysis.flow.baseline import apply_baseline, load_baseline
from repro.analysis.flow.sarif import (
    SARIF_VERSION,
    results_from_sarif,
    to_sarif,
)

FINDINGS = [
    Finding(path="src/a.py", line=3, col=4, rule="T001", message="tainted sink"),
    Finding(path="src/b.py", line=9, col=0, rule="S004", message="bad walk"),
]


class TestSarif:
    def test_document_shape(self):
        doc = to_sarif(FINDINGS, tool_version="1.2")
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["version"] == "1.2"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert {"T001", "S004", "D001", "U001", "E999"} <= set(rule_ids)
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_round_trip(self):
        doc = json.loads(json.dumps(to_sarif(FINDINGS)))
        assert results_from_sarif(doc) == sorted(FINDINGS, key=Finding.sort_key)

    def test_empty_run_is_still_self_describing(self):
        doc = to_sarif([])
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"]
        assert results_from_sarif(doc) == []


class TestBaseline:
    def test_accepted_findings_are_subtracted(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                [{"path": "src/a.py", "rule": "T001", "message": "tainted sink"}]
            )
        )
        kept = apply_baseline(
            FINDINGS, load_baseline(baseline), baseline_path=str(baseline)
        )
        assert [f.rule for f in kept] == ["S004"]

    def test_stale_entry_reports_u001(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                [{"path": "src/gone.py", "rule": "T001", "message": "old"}]
            )
        )
        kept = apply_baseline(
            [], load_baseline(baseline), baseline_path=str(baseline)
        )
        assert [f.rule for f in kept] == ["U001"]
        assert "stale baseline entry" in kept[0].message
        assert kept[0].path == str(baseline)

    def test_malformed_baseline_raises(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"findings": "nope"}')
        with pytest.raises(ValueError):
            load_baseline(baseline)


class TestUnusedSuppression:
    #: stand-in for the full registry the CLI passes as known_rules
    KNOWN = {"D001", "T001", "U001"}

    @classmethod
    def run(cls, source: str) -> list[Finding]:
        tracker = SuppressionTracker()
        findings = lint_source(
            textwrap.dedent(source), "mod.py", tracker=tracker
        )
        assert all(f.rule != "E999" for f in findings)
        return tracker.unused_findings(cls.KNOWN)

    def test_unused_marker_fires(self):
        findings = self.run("x = 1  # repro: allow[D001]\n")
        assert [f.rule for f in findings] == ["U001"]
        assert "did not fire" in findings[0].message

    def test_used_marker_is_silent(self):
        source = """
            import time

            def now():
                return time.time()  # repro: allow[D001] test clock
        """
        assert self.run(source) == []

    def test_unknown_rule_id_always_fires(self):
        findings = self.run("x = 1  # repro: allow[Z999]\n")
        assert [f.rule for f in findings] == ["U001"]
        assert "Z999" in findings[0].message

    def test_marker_for_rule_not_run_is_exempt(self):
        # a lint-only invocation must not flag flow-rule markers as unused
        assert self.run("x = object()  # repro: allow[T001]\n") == []

    def test_docstring_mention_is_not_a_marker(self):
        source = '''
            def f():
                """Suppress with ``# repro: allow[D001]`` on the line."""
                return 1
        '''
        assert self.run(source) == []

    def test_allow_u001_opts_out(self):
        source = "x = 1  # repro: allow[D001,U001] speculative\n"
        assert self.run(source) == []


class TestCli:
    def test_flow_clean_run_exits_zero(self, capsys):
        assert main(["--flow", "src"]) == 0
        assert capsys.readouterr().out.strip().endswith("0 findings")

    def test_flow_finds_seeded_violation(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(
                """
                __trust_boundary__ = {
                    "scheme": "toy",
                    "entry_points": ["G.handle"],
                    "taint_params": ["packet"],
                    "sinks": ["send"],
                }

                class G:
                    def handle(self, packet):
                        self.send(packet)
                """
            )
        )
        assert main(["--flow", str(tmp_path)]) == 1
        assert "T001" in capsys.readouterr().out

    def test_sarif_output_is_valid(self, tmp_path, capsys):
        out = tmp_path / "findings.sarif"
        assert main(["--flow", "--sarif", str(out), "src"]) == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["version"] == SARIF_VERSION
        assert document["runs"][0]["results"] == []
        capsys.readouterr()

    def test_flow_rule_selection(self, capsys):
        # asking for a flow rule implies the flow engine
        assert main(["--rules", "S003", "src"]) == 0
        capsys.readouterr()

    def test_unknown_rule_id_is_an_error(self, capsys):
        assert main(["--rules", "Z999", "src"]) == 2
        assert "Z999" in capsys.readouterr().err

    def test_baseline_subtracts_and_reports_stale(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps([{"path": "gone.py", "rule": "T001", "message": "old"}])
        )
        empty = tmp_path / "pkg"
        empty.mkdir()
        (empty / "ok.py").write_text("x = 1\n")
        assert main(["--flow", "--baseline", str(baseline), str(empty)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestRulesMarkdown:
    def test_readme_table_is_current(self):
        assert main(["--rules-md-check", "README.md"]) == 0

    def test_generated_block_lists_every_rule(self):
        block = rules_markdown()
        assert block.startswith(RULES_MD_BEGIN)
        assert block.endswith(RULES_MD_END)
        for rule_id in ("D001", "T001", "T002", "S004", "U001", "E999"):
            assert f"`{rule_id}`" in block

    def test_update_rewrites_only_the_block(self, tmp_path):
        target = tmp_path / "doc.md"
        target.write_text(
            f"# Title\n\n{RULES_MD_BEGIN}\nstale\n{RULES_MD_END}\n\ntail\n"
        )
        assert main(["--rules-md-update", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Title\n\n")
        assert text.endswith("\n\ntail\n")
        assert "| `T001` |" in text

    def test_check_fails_on_stale_block(self, tmp_path, capsys):
        target = tmp_path / "doc.md"
        target.write_text(f"{RULES_MD_BEGIN}\nstale\n{RULES_MD_END}\n")
        assert main(["--rules-md-check", str(target)]) == 1
        assert "out of date" in capsys.readouterr().err
