"""T-rules: taint tracking through calls, branches, and sanitizers."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import SuppressionTracker
from repro.analysis.flow.engine import analyze_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def write(tmp_path: Path, name: str, source: str, prelude: str = "") -> Path:
    path = tmp_path / name
    path.write_text(prelude + textwrap.dedent(source), encoding="utf-8")
    return path


TRUST = """\
__trust_boundary__ = {
    "scheme": "toy",
    "entry_points": ["Guard.handle"],
    "taint_params": ["packet"],
    "sanitizers": ["verify"],
    "sinks": ["send"],
}
"""


class TestT001:
    def test_unsanitized_sink_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    self.send(packet)
            """,
            prelude=TRUST,
        )
        findings = analyze_paths([tmp_path])
        assert [f.rule for f in findings] == ["T001"]
        assert "data-dependent" in findings[0].message

    def test_sanitizer_branch_kills_taint(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    if self.verify(packet):
                        self.send(packet)
            """,
            prelude=TRUST,
        )
        assert analyze_paths([tmp_path]) == []

    def test_early_return_guard_idiom(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    if not self.verify(packet):
                        return
                    self.send(packet)
            """,
            prelude=TRUST,
        )
        assert analyze_paths([tmp_path]) == []

    def test_control_dependence_is_tainted(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            OK = object()

            class Guard:
                def handle(self, packet):
                    if packet.flags:
                        self.send(OK)
            """,
            prelude=TRUST,
        )
        findings = analyze_paths([tmp_path])
        assert [f.rule for f in findings] == ["T001"]
        assert "control-dependent" in findings[0].message

    def test_taint_through_cross_module_call_summary(self, tmp_path):
        write(
            tmp_path,
            "helpers.py",
            """
            __trust_boundary__ = {"scheme": "toy", "sinks": ["send"]}

            def relay(node, value):
                node.send(value)
            """,
        )
        write(
            tmp_path,
            "entry.py",
            """
            from helpers import relay

            class Guard:
                def handle(self, packet):
                    relay(self, packet)
            """,
            prelude=TRUST,
        )
        findings = analyze_paths([tmp_path])
        assert [f.rule for f in findings] == ["T001"]
        assert "via call summary" in findings[0].message
        assert findings[0].path.endswith("entry.py")

    def test_callback_sink_idiom(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    self.submit(1.0, self.send, packet)
            """,
            prelude=TRUST,
        )
        assert [f.rule for f in analyze_paths([tmp_path])] == ["T001"]

    def test_inline_suppression_filters_and_is_marked_used(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    self.send(packet)  # repro: allow[T001] by design
            """,
            prelude=TRUST,
        )
        tracker = SuppressionTracker()
        assert analyze_paths([tmp_path], tracker=tracker) == []
        assert tracker.unused_findings({"T001"}) == []


class TestT002:
    def test_secret_reaching_print_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Factory:
                def debug(self):
                    print(self._current_key)
            """,
        )
        findings = analyze_paths([tmp_path])
        assert [f.rule for f in findings] == ["T002"]

    def test_declassified_digest_is_clean(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            import hashlib

            class Factory:
                def cookie(self, ip):
                    return hashlib.md5(ip + self._current_key).digest()

                def debug(self, ip):
                    print(self.cookie(ip))
            """,
        )
        assert analyze_paths([tmp_path]) == []

    def test_secret_in_repr_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Factory:
                def __repr__(self):
                    return "Factory(%r)" % (self._current_key,)
            """,
        )
        assert [f.rule for f in analyze_paths([tmp_path])] == ["T002"]


class TestAcceptanceMutations:
    """The seeded-mutation proof: deleting the verification is detected."""

    def test_repo_src_is_clean(self):
        assert analyze_paths([REPO_SRC]) == []

    def test_removing_cookie_verify_fires_t001(self, tmp_path):
        original = (REPO_SRC / "repro" / "guard" / "pipeline.py").read_text(
            encoding="utf-8"
        )
        mutated = original.replace(
            "if self.cookies.verify(cookie, src):", "if True:"
        )
        assert mutated != original
        write(tmp_path, "pipeline.py", mutated)
        findings = analyze_paths([tmp_path], rule_ids=["T001"])
        assert findings, "deleting the cookie verify must fire T001"
        assert all(f.rule == "T001" for f in findings)
        assert any("_strip_and_forward" in f.message for f in findings)


class TestRepoTrustDeclarations:
    def test_guard_modules_declare_boundaries(self):
        import ast

        from repro.analysis.flow.trust import find_declaration

        for name in (
            "pipeline.py",
            "tcp_scheme.py",
            "local_guard.py",
            "core/dns_scheme.py",
            "rfc7873.py",
            "core/cookie.py",
            "core/edns_cookie.py",
        ):
            path = REPO_SRC / "repro" / "guard" / name
            decl = find_declaration(ast.parse(path.read_text(encoding="utf-8")))
            assert decl is not None, f"{name} must declare __trust_boundary__"
            assert decl.get("scheme"), name

    def test_declared_lists_extend_defaults_not_mask(self):
        import ast

        from repro.analysis.flow.trust import DEFAULT_TRUST, trust_for_module

        tree = ast.parse('__trust_boundary__ = {"secret_attrs": []}')
        trust = trust_for_module(tree)
        assert trust.secret_attrs >= DEFAULT_TRUST.secret_attrs


@pytest.mark.parametrize("rule", ["T001", "T002"])
def test_rule_selection_is_honoured(tmp_path, rule):
    write(
        tmp_path,
        "mod.py",
        """
        class Guard:
            def handle(self, packet):
                self.send(packet)

            def leak(self):
                print(self._current_key)
        """,
        prelude=TRUST,
    )
    findings = analyze_paths([tmp_path], rule_ids=[rule])
    assert {f.rule for f in findings} == {rule}
