"""S-rules: FSM extraction, conformance, and the seeded-mutation proofs."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.flow.engine import analyze_paths
from repro.analysis.flow.fsm import (
    check_conformance,
    check_isn_paths,
    check_model_walk,
    check_reachability,
    check_retry_escapes,
    check_syn_cookie_order,
    extract_fsm,
)
from repro.analysis.flow.fsm_spec import FsmSpec, Transition

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
TCP_PATH = REPO_SRC / "repro" / "netsim" / "tcp.py"

TOY_SOURCE = """
import enum


class S(enum.Enum):
    IDLE = 0
    WAIT = 1
    DONE = 2


class Machine:
    def __init__(self):
        self.state = S.IDLE
        self.isn = 7

    def start(self, msg):
        if self.state is S.IDLE:
            self.state = S.WAIT

    def finish(self, msg):
        if self.state is not S.WAIT:
            return
        if msg.ack == self.isn + 1:
            self.state = S.DONE
"""

TOY_SPEC = FsmSpec(
    name="toy",
    states=frozenset({"IDLE", "WAIT", "DONE"}),
    initial=frozenset({"IDLE"}),
    accepting="DONE",
    transitions=(
        Transition("IDLE", "WAIT", "start"),
        Transition("WAIT", "DONE", "finish", isn_checked=True),
    ),
)


def extract(source: str):
    extraction = extract_fsm(ast.parse(textwrap.dedent(source)), "toy.py")
    assert extraction is not None
    return extraction


class TestExtraction:
    def test_transitions_and_guards(self):
        extraction = extract(TOY_SOURCE)
        assert extraction.enum_name == "S"
        assert extraction.states == {"IDLE", "WAIT", "DONE"}
        by_method = {s.method: s for s in extraction.state_sets}
        assert set(by_method) == {"start", "finish"}  # __init__ excluded
        assert by_method["start"].guards == {"IDLE"}
        assert by_method["start"].dst == "WAIT"
        # the early-return `is not` guard constrains the remainder to WAIT
        assert by_method["finish"].guards == {"WAIT"}
        assert by_method["finish"].dst == "DONE"

    def test_module_without_fsm_yields_none(self):
        assert extract_fsm(ast.parse("x = 1\n"), "mod.py") is None


class TestConformance:
    def test_conformant_toy_is_clean(self):
        extraction = extract(TOY_SOURCE)
        assert list(check_conformance(extraction, TOY_SPEC)) == []
        assert list(check_reachability(extraction, TOY_SPEC)) == []
        s005, verified = check_isn_paths(extraction, TOY_SPEC)
        assert s005 == []
        assert all(verified.values())
        assert list(check_model_walk(extraction, TOY_SPEC, verified)) == []

    def test_undeclared_transition_fires_s001(self):
        source = TOY_SOURCE + textwrap.dedent(
            """
            class Rogue(Machine):
                def shortcut(self, msg):
                    self.state = S.DONE
            """
        )
        findings = list(check_conformance(extract(source), TOY_SPEC))
        assert [f.rule for f in findings] == ["S001"]
        assert "shortcut" in findings[0].message

    def test_missing_implementation_fires_s002(self):
        spec = FsmSpec(
            name="toy",
            states=TOY_SPEC.states,
            initial=TOY_SPEC.initial,
            accepting="DONE",
            transitions=TOY_SPEC.transitions
            + (Transition("DONE", "IDLE", "reset"),),
        )
        findings = list(check_conformance(extract(TOY_SOURCE), spec))
        assert [f.rule for f in findings] == ["S002"]
        assert "reset" in findings[0].message

    def test_unreachable_state_fires_s003(self):
        spec = FsmSpec(
            name="toy",
            states=TOY_SPEC.states | {"ORPHAN"},
            initial=TOY_SPEC.initial,
            accepting="DONE",
            transitions=TOY_SPEC.transitions,
        )
        findings = list(check_reachability(extract(TOY_SOURCE), spec))
        assert [f.rule for f in findings] == ["S003"]
        assert "ORPHAN" in findings[0].message


class TestIsnVerification:
    def test_deleted_isn_check_fires_s005_and_s004(self):
        mutated = TOY_SOURCE.replace(
            "if msg.ack == self.isn + 1:", "if True:"
        )
        assert mutated != TOY_SOURCE
        extraction = extract(mutated)
        s005, verified = check_isn_paths(extraction, TOY_SPEC)
        assert [f.rule for f in s005] == ["S005"]
        assert verified[TOY_SPEC.transitions[1]] is False
        walk = list(check_model_walk(extraction, TOY_SPEC, verified))
        assert [f.rule for f in walk] == ["S004"]
        assert "IDLE -> WAIT -> DONE" in walk[0].message

    def test_domination_through_helper_call_path(self):
        source = TOY_SOURCE.replace(
            "        if msg.ack == self.isn + 1:\n"
            "            self.state = S.DONE\n",
            "        if msg.ack == self.isn + 1:\n"
            "            self._established()\n\n"
            "    def _established(self):\n"
            "        self.state = S.DONE\n",
        )
        assert "_established" in source
        spec = FsmSpec(
            name="toy",
            states=TOY_SPEC.states,
            initial=TOY_SPEC.initial,
            accepting="DONE",
            transitions=(
                Transition("IDLE", "WAIT", "start"),
                Transition("WAIT", "DONE", "_established", isn_checked=True),
            ),
        )
        s005, verified = check_isn_paths(extract(source), spec)
        assert s005 == []
        assert all(verified.values())


class TestRetryEscapes:
    def test_missing_handler_fires_s006(self):
        spec = FsmSpec(
            name="toy",
            states=TOY_SPEC.states,
            initial=TOY_SPEC.initial,
            accepting="DONE",
            transitions=TOY_SPEC.transitions,
            retry_states=frozenset({"WAIT"}),
        )
        findings = list(check_retry_escapes(extract(TOY_SOURCE), spec))
        assert [f.rule for f in findings] == ["S006"]
        assert "_on_retransmit" in findings[0].message


class TestSynCookieOrder:
    COOKIE_SOURCE = TOY_SOURCE + textwrap.dedent(
        """
        class Stack:
            def _process(self, segment, conn):
                if self.syn_cookies:
                    {guard}conn.handle(segment)
        """
    )

    def test_unvalidated_cookie_path_fires_s007(self):
        source = self.COOKIE_SOURCE.format(guard="")
        findings = list(check_syn_cookie_order(extract(source)))
        assert [f.rule for f in findings] == ["S007"]
        assert "handle()" in findings[0].message

    def test_validated_cookie_path_is_clean(self):
        source = self.COOKIE_SOURCE.format(
            guard="if segment.ack != (self.cookie_isn + 1):\n"
            "                return\n            "
        )
        assert list(check_syn_cookie_order(extract(source))) == []


class TestTcpAcceptanceMutations:
    """The real target: repro.netsim.tcp against TCP_SPEC, via the engine
    (which maps any path ending netsim/tcp.py onto the spec)."""

    @staticmethod
    def mutate(tmp_path: Path, old: str, new: str) -> Path:
        original = TCP_PATH.read_text(encoding="utf-8")
        mutated = original.replace(old, new)
        assert mutated != original, f"mutation target not found: {old!r}"
        target = tmp_path / "netsim" / "tcp.py"
        target.parent.mkdir()
        target.write_text(mutated, encoding="utf-8")
        return target

    def test_pristine_tcp_is_clean(self):
        assert analyze_paths([TCP_PATH]) == []

    def test_deleting_syn_cookie_validation_is_detected(self, tmp_path):
        self.mutate(
            tmp_path,
            "if segment.ack == (isn + 1) & 0xFFFFFFFF:",
            "if True:",
        )
        rules = {f.rule for f in analyze_paths([tmp_path])}
        # the stateless-path ISN edge is unverified (S005), the model walk
        # finds handshake paths with no verified edge (S004), and the
        # cookie region now feeds connections unvalidated (S007)
        assert {"S004", "S005", "S007"} <= rules

    def test_deleting_synrcvd_ack_check_is_detected(self, tmp_path):
        self.mutate(
            tmp_path,
            "if segment.has(TcpFlags.ACK) and "
            "segment.ack == (self.iss + 1) & 0xFFFFFFFF:",
            "if segment.has(TcpFlags.ACK):",
        )
        rules = {f.rule for f in analyze_paths([tmp_path])}
        assert {"S004", "S005"} <= rules
