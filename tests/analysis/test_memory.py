"""M-rules: state-bound declarations and the static exhaustion checks."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.memory.declarations import (
    EVICTION_MECHANISMS,
    StateBound,
    declarations_for_module,
    find_declaration,
    parse_declaration,
)
from repro.analysis.memory.engine import (
    MEMORY_RULES,
    analyze_memory,
    memory_rule_table,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"


def write(tmp_path: Path, name: str, source: str, prelude: str = "") -> Path:
    path = tmp_path / name
    path.write_text(prelude + textwrap.dedent(source), encoding="utf-8")
    return path


TRUST = """\
__trust_boundary__ = {
    "scheme": "toy",
    "entry_points": ["Guard.handle"],
    "taint_params": ["packet"],
    "sanitizers": ["verify"],
    "sinks": ["send"],
}
"""

BOUNDS_CAP = """\
__state_bounds__ = {
    "Guard": {
        "table": {"bound": 4, "evicted_by": "cap", "keyed_by": "attacker"},
    },
}
"""


# -- declaration parsing -------------------------------------------------------


class TestDeclarations:
    def test_find_and_parse(self):
        import ast

        tree = ast.parse(BOUNDS_CAP)
        found = find_declaration(tree)
        assert found is not None
        raw, lineno = found
        assert lineno == 1
        decls = parse_declaration(raw)
        bound = decls["Guard"]["table"]
        assert bound.bound == 4
        assert bound.evicted_by == frozenset({"cap"})
        assert bound.keyed_by == "attacker"
        assert bound.describe() == (
            "Guard.table (bound 4, evicted by cap, attacker-keyed)"
        )

    def test_unknown_mechanisms_are_dropped(self):
        decls = parse_declaration(
            {
                "G": {
                    "t": {
                        "bound": 1,
                        "evicted_by": "cap+teleport",
                        "keyed_by": "attacker",
                    }
                }
            }
        )
        assert decls["G"]["t"].evicted_by == frozenset({"cap"})
        assert decls["G"]["t"].evicted_by <= EVICTION_MECHANISMS

    def test_malformed_entries_are_dropped_not_fatal(self):
        decls = parse_declaration(
            {"G": {"t": {"bound": "many"}, "u": "nope"}, "H": 3}
        )
        assert decls == {"G": {}}
        assert parse_declaration(None) == {}
        assert parse_declaration([1, 2]) == {}

    def test_missing_declaration_vs_honest_empty(self):
        import ast

        assert declarations_for_module(ast.parse("x = 1")) is None
        declared = declarations_for_module(ast.parse("__state_bounds__ = {}"))
        assert declared is not None and declared[0] == {}


# -- the static checks on toy modules ------------------------------------------


class TestM001:
    def test_undeclared_attacker_keyed_insert_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    self.table[packet.src] = packet
            """,
            prelude=TRUST,
        )
        findings = analyze_memory([tmp_path], rule_ids=["M001"])
        assert [f.rule for f in findings] == ["M001"]
        assert "self.table" in findings[0].message

    def test_taint_propagates_through_assignment(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    key = (packet.src, packet.sport)
                    self.table[key] = 1
            """,
            prelude=TRUST,
        )
        assert [f.rule for f in analyze_memory([tmp_path], rule_ids=["M001"])] == [
            "M001"
        ]

    def test_declared_bound_silences(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    self.table[packet.src] = packet
            """,
            prelude=TRUST + BOUNDS_CAP,
        )
        assert analyze_memory([tmp_path], rule_ids=["M001"]) == []

    def test_internal_keys_and_cold_functions_do_not_fire(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    self.table[self.epoch] = packet.src

                def offline(self, packet):
                    self.other[packet.src] = 1
            """,
            prelude=TRUST,
        )
        # handle's key is internal; offline is not attacker-callable
        assert analyze_memory([tmp_path], rule_ids=["M001"]) == []


class TestM002:
    def test_unenforced_cap_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def put(self, key, value):
                    self.table[key] = value
            """,
            prelude=BOUNDS_CAP,
        )
        findings = analyze_memory([tmp_path], rule_ids=["M002"])
        assert [f.rule for f in findings] == ["M002"]
        assert "statically enforced" in findings[0].message

    def test_cap_check_or_eviction_silences(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def put(self, key, value):
                    if len(self.table) >= 4:
                        del self.table[next(iter(self.table))]
                    self.table[key] = value
            """,
            prelude=BOUNDS_CAP,
        )
        assert analyze_memory([tmp_path], rule_ids=["M002"]) == []

    def test_sweep_only_bounds_carry_no_insert_obligation(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def put(self, key, value):
                    self.table[key] = value
            """,
            prelude=BOUNDS_CAP.replace('"cap"', '"sweep"'),
        )
        assert analyze_memory([tmp_path], rule_ids=["M002"]) == []


class TestM003:
    PRELUDE = BOUNDS_CAP.replace('"cap"', '"sweep"')

    def test_unreachable_sweep_fires_at_declaration(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def put(self, key, value):
                    self.table[key] = value
            """,
            prelude=self.PRELUDE,
        )
        findings = analyze_memory([tmp_path], rule_ids=["M003"])
        assert [f.rule for f in findings] == ["M003"]
        assert findings[0].path == str(path)
        assert findings[0].line == 1  # the __state_bounds__ assignment

    def test_scheduled_sweep_silences(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def start(self):
                    self.sim.schedule(1.0, self._sweep)

                def _sweep(self):
                    self.table.clear()
                    self.sim.schedule(1.0, self._sweep)
            """,
            prelude=self.PRELUDE,
        )
        assert analyze_memory([tmp_path], rule_ids=["M003"]) == []


class TestM004:
    def test_early_return_between_insert_and_cap_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def put(self, key, value):
                    self.table[key] = value
                    if value is None:
                        return
                    if len(self.table) > 4:
                        self.table.pop(key)
            """,
            prelude=BOUNDS_CAP,
        )
        findings = analyze_memory([tmp_path], rule_ids=["M004"])
        assert [f.rule for f in findings] == ["M004"]
        assert "can be bypassed" in findings[0].message

    def test_raise_between_insert_and_cap_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def put(self, key, value):
                    self.table[key] = value
                    if value is None:
                        raise ValueError(key)
                    if len(self.table) > 4:
                        self.table.pop(key)
            """,
            prelude=BOUNDS_CAP,
        )
        assert [f.rule for f in analyze_memory([tmp_path], rule_ids=["M004"])] == [
            "M004"
        ]

    def test_evict_before_insert_is_bypass_proof(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def put(self, key, value):
                    if len(self.table) >= 4:
                        del self.table[next(iter(self.table))]
                    self.table[key] = value
                    if value is None:
                        return
            """,
            prelude=BOUNDS_CAP,
        )
        assert analyze_memory([tmp_path], rule_ids=["M004"]) == []


class TestM005:
    PRELUDE = "__state_bounds__ = {}\n"

    def test_growing_unbudgeted_reschedule_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def _tick(self):
                    self.log.append(self.now)
                    self.sim.schedule(1.0, self._tick)
            """,
            prelude=self.PRELUDE,
        )
        findings = analyze_memory([tmp_path], rule_ids=["M005"])
        assert [f.rule for f in findings] == ["M005"]
        assert "self.log" in findings[0].message

    def test_guarded_reschedule_is_a_budget(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def _tick(self):
                    self.log.append(self.now)
                    if self.active:
                        self.sim.schedule(1.0, self._tick)
            """,
            prelude=self.PRELUDE,
        )
        assert analyze_memory([tmp_path], rule_ids=["M005"]) == []

    def test_sweep_idiom_is_net_non_growing(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def _sweep(self):
                    self.table = {k: v for k, v in self.table.items() if v}
                    self.table[0] = 1
                    self.sim.schedule(1.0, self._sweep)
            """,
            prelude=self.PRELUDE,
        )
        assert analyze_memory([tmp_path], rule_ids=["M005"]) == []

    def test_undeclared_module_is_out_of_scope(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def _tick(self):
                    self.log.append(self.now)
                    self.sim.schedule(1.0, self._tick)
            """,
        )
        assert analyze_memory([tmp_path], rule_ids=["M005"]) == []


class TestEngine:
    def test_inline_allow_suppresses(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def handle(self, packet):
                    self.table[packet.src] = packet  # repro: allow[M001] toy
            """,
            prelude=TRUST,
        )
        assert analyze_memory([tmp_path], rule_ids=["M001"]) == []

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(KeyError):
            analyze_memory([tmp_path], rule_ids=["M999"])

    def test_registry_is_consistent(self):
        from repro.analysis.memory.rules import MEMORY_CHECKS

        assert set(MEMORY_RULES) == set(MEMORY_CHECKS) | {"M006"}
        for rule in MEMORY_RULES.values():
            expected = "memory-runtime" if rule.id == "M006" else "memory"
            assert rule.family == expected
            assert rule.severity == "error"
        table = memory_rule_table()
        for rule_id in MEMORY_RULES:
            assert rule_id in table


# -- seeded-mutation acceptance tests against repo sources --------------------


def mutate(tmp_path, relative: str, old: str, new: str) -> Path:
    """Copy one repo source file into tmp_path with ``old`` -> ``new``."""
    original = (REPO_SRC / relative).read_text(encoding="utf-8")
    mutated = original.replace(old, new)
    assert mutated != original, f"mutation anchor not found in {relative}"
    return write(tmp_path, Path(relative).name, mutated)


class TestAcceptanceMutations:
    def test_repo_clean_through_cli_with_baseline(self):
        from repro.analysis.cli import main

        assert (
            main(
                [
                    "--memory",
                    "--baseline",
                    "scripts/memory_baseline.json",
                    "src",
                ]
            )
            == 0
        )

    def test_deleting_pending_declaration_fires_m001(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/pipeline.py",
            '        "_pending": {\n'
            '            "bound": 4096,\n'
            '            "evicted_by": "sweep+cap",\n'
            '            "keyed_by": "attacker",\n'
            "        },\n",
            "",
        )
        findings = analyze_memory([tmp_path], rule_ids=["M001"])
        assert findings, "undeclared attacker-keyed _pending must fire M001"
        assert all(f.rule == "M001" for f in findings)
        assert any("_pending" in f.message for f in findings)

    def test_deleting_verified_sources_cap_fires_m002(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/pipeline.py",
            "        self._verified_sources[source] = self.node.sim.now\n"
            "        if len(self._verified_sources) > 8192:\n"
            "            del self._verified_sources"
            "[next(iter(self._verified_sources))]\n",
            "        self._verified_sources[source] = self.node.sim.now\n",
        )
        findings = analyze_memory([tmp_path], rule_ids=["M002"])
        assert [f.rule for f in findings] == ["M002"]
        assert "_verified_sources" in findings[0].message

    def test_unhooking_the_guard_sweep_fires_m003(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/local_guard.py",
            "self._sweep, priority=BOUNDARY_PRIORITY",
            "self._manual_sweep, priority=BOUNDARY_PRIORITY",
        )
        findings = analyze_memory([tmp_path], rule_ids=["M003"])
        assert findings, "an unscheduled sweep must fire M003"
        assert all(f.rule == "M003" for f in findings)
        assert any("sweep eviction" in f.message for f in findings)

    def test_early_return_inside_action_log_fires_m004(self, tmp_path):
        mutate(
            tmp_path,
            "repro/control/controller.py",
            "        self.actions.append(entry)\n"
            "        if len(self.actions) > ACTION_LOG_CAP:",
            "        self.actions.append(entry)\n"
            "        if not entry:\n"
            "            return\n"
            "        if len(self.actions) > ACTION_LOG_CAP:",
        )
        findings = analyze_memory([tmp_path], rule_ids=["M004"])
        assert [f.rule for f in findings] == ["M004"]
        assert "actions" in findings[0].message

    def test_sweep_that_stops_evicting_fires_m005(self, tmp_path):
        # drop the held-queue eviction: the sweep now only rebuilds queues
        # while rescheduling itself forever — growth with no budget
        mutate(
            tmp_path,
            "repro/guard/local_guard.py",
            "            if live:\n"
            "                self._held[key] = live\n"
            "            else:\n"
            "                del self._held[key]\n"
            "                # the grant was lost: retry on the next query\n",
            "            if live:\n"
            "                self._held[key] = live\n",
        )
        findings = analyze_memory([tmp_path], rule_ids=["M005"])
        assert [f.rule for f in findings] == ["M005"]
        assert "_sweep" in findings[0].message
