"""M006: the high-water-mark monitor, and the CLI severity/U001 contract."""

import textwrap

from repro.analysis.cli import main
from repro.analysis.memory.declarations import StateBound
from repro.analysis.memory.runtime import (
    discover_bounded_classes,
    run_bounds_monitored,
)


class Table:
    """Toy stateful class the monitor watches via ``declared=``."""


def _declared(bound: int):
    spec = StateBound(
        class_name="Table",
        attr="items",
        bound=bound,
        evicted_by=frozenset({"cap"}),
        keyed_by="attacker",
    )
    return [(Table, "toy.py", {"items": spec})]


def _grow(n: int):
    def experiment():
        table = Table()
        table.items = {}
        for i in range(n):
            table.items[i] = i

    return experiment


class TestHighWaterMonitor:
    def test_bound_exceeded_is_m006(self):
        report = run_bounds_monitored(_grow(5), declared=_declared(2))
        assert not report.ok
        assert [f.rule for f in report.findings] == ["M006"]
        assert "high-water mark 5" in report.findings[0].message
        assert report.high_water[("Table", "items")] == (5, 2)
        assert "BOUND EXCEEDED" in report.summary()

    def test_within_bound_is_ok(self):
        report = run_bounds_monitored(_grow(2), declared=_declared(2))
        assert report.ok and report.findings == []
        assert report.classes_watched == 1
        assert report.instances_watched == 1
        assert report.high_water[("Table", "items")] == (2, 2)
        assert "memory: OK" in report.summary()

    def test_setattr_is_restored_after_the_run(self):
        run_bounds_monitored(_grow(1), declared=_declared(8))
        assert Table.__setattr__ is object.__setattr__

    def test_subclass_instances_resolve_the_declared_base(self):
        class Derived(Table):
            pass

        def experiment():
            derived = Derived()
            derived.items = {0: 0, 1: 1, 2: 2}

        report = run_bounds_monitored(experiment, declared=_declared(2))
        assert not report.ok
        # recorded under the declared base, so the bound lookup matches
        assert report.high_water[("Table", "items")] == (3, 2)

    def test_non_sized_values_are_skipped(self):
        def experiment():
            table = Table()
            table.items = None

        report = run_bounds_monitored(experiment, declared=_declared(2))
        assert report.ok
        assert ("Table", "items") not in report.high_water


class TestDiscovery:
    def test_repo_declarations_are_discovered(self):
        names = {cls.__qualname__ for cls, _path, _attrs in discover_bounded_classes()}
        assert {
            "RemoteDnsGuard",
            "LocalDnsGuard",
            "TcpStack",
            "GuardController",
            "Manifest",
        } <= names

    def test_empty_declarations_are_not_watched(self):
        # the honest-empty modules (cookie codec, dns_scheme) declare {}
        for _cls, _path, attrs in discover_bounded_classes():
            assert attrs


class TestMonitoredExperiment:
    def test_short_guarded_run_respects_all_bounds(self):
        def experiment():
            from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator

            bed = GuardTestbed(seed=0, ans="simulator", ans_mode="answer")
            node = bed.add_client("resolver", via_local_guard=True)
            LrsSimulator(node, ANS_ADDRESS, workload="plain").start()
            bed.run(0.05)

        report = run_bounds_monitored(experiment)
        assert report.ok, report.summary()
        assert report.samples > 1
        assert report.instances_watched > 0
        for (_cls, _attr), (seen, bound) in report.high_water.items():
            assert seen <= bound


# -- severity threshold and cross-family suppression hygiene ------------------


class TestFailOnAndU001:
    def _write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def test_unused_memory_allow_is_u001(self, tmp_path, capsys):
        path = self._write(tmp_path, "mod.py", "x = 1  # repro: allow[M003]\n")
        assert main(["--memory", str(path)]) == 1
        out = capsys.readouterr().out
        assert "U001" in out and "M003" in out

    def test_fail_on_error_ignores_the_u001_warning(self, tmp_path):
        path = self._write(tmp_path, "mod.py", "x = 1  # repro: allow[M003]\n")
        assert main(["--memory", "--fail-on", "error", str(path)]) == 0
        assert main(["--memory", "--fail-on", "warning", str(path)]) == 1

    def test_memory_errors_fail_at_every_threshold(self, tmp_path):
        path = self._write(
            tmp_path,
            "mod.py",
            """
            __trust_boundary__ = {
                "scheme": "toy",
                "entry_points": ["Guard.handle"],
                "taint_params": ["packet"],
            }

            class Guard:
                def handle(self, packet):
                    self.table[packet.src] = packet
            """,
        )
        for level in ("note", "warning", "error"):
            assert main(["--memory", "--fail-on", level, str(path)]) == 1

    def test_suppression_used_by_one_engine_is_not_u001_in_a_combined_run(
        self, tmp_path, capsys
    ):
        # the memory engine consumes the allow; the flow/races/perf engines
        # see the same source through the shared tracker and must not flag
        # the marker as unused
        path = self._write(
            tmp_path,
            "mod.py",
            """
            __trust_boundary__ = {
                "scheme": "toy",
                "entry_points": ["Guard.handle"],
                "taint_params": ["packet"],
            }

            class Guard:
                def handle(self, packet):
                    self.table[packet.src] = packet  # repro: allow[M001] toy
            """,
        )
        assert main(["--flow", "--races", "--perf", "--memory", str(path)]) == 0
        assert "U001" not in capsys.readouterr().out
