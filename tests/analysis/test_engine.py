"""Engine behaviour: suppressions, discovery, CLI formats, repo cleanliness."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source, suppressed_rules
from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSuppression:
    def test_allow_marker_suppresses_named_rule(self):
        source = "import random  # repro: allow[D002]\n"
        assert not lint_source(source)

    def test_allow_marker_is_rule_specific(self):
        source = "import random  # repro: allow[D001]\n"
        found = lint_source(source)
        assert [f.rule for f in found] == ["D002"]

    def test_allow_marker_multiple_rules(self):
        source = textwrap.dedent(
            """
            import random  # repro: allow[D001, D002]
            """
        )
        assert not lint_source(source)

    def test_allow_marker_only_applies_to_its_line(self):
        source = textwrap.dedent(
            """
            # repro: allow[D002]
            import random
            """
        )
        assert [f.rule for f in lint_source(source)] == ["D002"]

    def test_suppressed_rules_map(self):
        source = "x = 1  # repro: allow[D003,W001]\ny = 2\n"
        assert suppressed_rules(source) == {1: {"D003", "W001"}}


class TestEngine:
    def test_syntax_error_reported_as_finding(self):
        found = lint_source("def broken(:\n", path="bad.py")
        assert len(found) == 1
        assert found[0].rule == "E999"
        assert found[0].path == "bad.py"

    def test_rule_selection(self):
        source = "import random\nx = {1} == {2}\n"
        only_d002 = lint_source(source, rule_ids=["D002"])
        assert [f.rule for f in only_d002] == ["D002"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1\n", rule_ids=["D999"])

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "bad.py").write_text("import random\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("import random\n")
        found = lint_paths([tmp_path])
        assert [Path(f.path).name for f in found] == ["bad.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["/no/such/path/anywhere"])


class TestRepoIsClean:
    def test_src_passes_all_rules(self):
        """The repo's central invariant: the simulation tree lints clean."""
        assert lint_paths([REPO_ROOT / "src"]) == []


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert cli_main([str(target)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_nonzero_text(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\n")
        assert cli_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "D002" in out and "bad.py:1:" in out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\n")
        assert cli_main(["--format=json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "D002"
        assert payload["findings"][0]["line"] == 1

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D001", "D002", "D003", "D004", "D005", "W001"):
            assert rule_id in out

    def test_module_entrypoint_runs(self, tmp_path):
        """``python -m repro.analysis <clean file>`` exits 0."""
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(target)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
