"""Runtime determinism sanitizer: clean runs match, injected drift is caught."""

from repro.analysis.sanitizer import capture_traces, run_sanitized
from repro.netsim import Simulator


def _clean_experiment():
    sim = Simulator(seed=3)

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(0.01 + sim.rng.random() * 0.01, tick, remaining - 1)

    sim.schedule(0.01, tick, 20)
    sim.run()


class TestCleanRuns:
    def test_deterministic_experiment_matches(self):
        report = run_sanitized(_clean_experiment)
        assert report.matched
        assert report.simulators == 1
        assert report.events == 21
        assert report.divergence is None
        assert "OK" in report.summary()

    def test_multiple_simulators_compared_pairwise(self):
        def experiment():
            for seed in (1, 2):
                sim = Simulator(seed=seed)
                sim.schedule(0.5, lambda: None)
                sim.run()

        report = run_sanitized(experiment)
        assert report.matched
        assert report.simulators == 2

    def test_run_digest_stable_across_sanitizer_invocations(self):
        first = run_sanitized(_clean_experiment)
        second = run_sanitized(_clean_experiment)
        assert first.run_digest == second.run_digest


class TestInjectedNondeterminism:
    def test_shared_state_dict_order_iteration_detected_and_localised(self):
        """The classic bug: event scheduling driven by iteration over a
        mutable mapping that outlives one run.  The second run sees more
        entries, so its event stream grows — the report must name the first
        divergent event."""
        fired: list[int] = []
        leaked: dict[object, int] = {}  # survives across sanitizer runs

        def experiment():
            sim = Simulator(seed=0)
            leaked[object()] = len(leaked)
            for _, index in leaked.items():
                sim.schedule(0.001 * (index + 1), fired.append, index)
            sim.run()

        report = run_sanitized(experiment)
        assert not report.matched
        assert "NONDETERMINISM" in report.summary()
        divergence = report.divergence
        assert divergence is not None
        assert divergence.sim_index == 0
        # localisation pass = runs 3 and 4: run A fires 3 events, run B a
        # 4th — the first bad event is the extra one at index 3.
        assert divergence.event_index == 3
        assert divergence.event_a is None
        assert divergence.event_b is not None
        assert "append" in divergence.event_b
        assert str(divergence) in report.summary()

    def test_global_rng_dependence_detected(self):
        """Event content keyed to state the seed does not control."""
        counter = [0]

        def experiment():
            sim = Simulator(seed=0)
            counter[0] += 1
            sim.schedule(0.001 * counter[0], lambda: None)
            sim.run()

        report = run_sanitized(experiment)
        assert not report.matched
        assert report.divergence is not None
        assert report.divergence.event_index == 0

    def test_differing_simulator_count_detected(self):
        flip = [False]

        def experiment():
            flip[0] = not flip[0]
            count = 2 if flip[0] else 1
            for _ in range(count):
                sim = Simulator(seed=0)
                sim.schedule(0.1, lambda: None)
                sim.run()

        report = run_sanitized(experiment)
        assert not report.matched
        assert any("different number of simulators" in note for note in report.notes)


class TestTraceCapture:
    def test_capture_traces_registers_in_construction_order(self):
        with capture_traces() as collector:
            a = Simulator(seed=1)
            b = Simulator(seed=2)
        assert collector.traces == [a.trace, b.trace]

    def test_collector_released_after_context(self):
        with capture_traces():
            pass
        assert Simulator(seed=0).trace is None

    def test_traced_experiment_output_suppressed(self, capsys):
        def experiment():
            print("noisy result table")

        report = run_sanitized(experiment)
        assert report.matched
        assert "noisy" not in capsys.readouterr().out
