"""R003/R004: the tie-group interference monitor, on toy simulations."""

from collections import OrderedDict

import pytest

from repro.analysis.races import InterferenceMonitor, run_monitored
from repro.analysis.races.declarations import parse_declaration
from repro.netsim import Simulator, set_tie_hook


class Store:
    """A toy handler target with one scalar and one dict of shared state."""

    def __init__(self):
        self.value = 0
        self.table = {}
        self.count = 0
        self.lru = OrderedDict()

    def set_value(self, n):
        self.value = n

    def read_value(self):
        return self.value

    def put(self, key, n):
        self.table[key] = n

    def get(self, key):
        return self.table.get(key)

    def scan(self):
        return list(self.table)

    def bump(self):
        self.count += 1

    def touch_lru(self, key):
        self.lru[key] = True
        self.lru.move_to_end(key)


DECLARED = parse_declaration(
    {
        "Store": {
            "guarded": ["value", "table", "lru"],
            "commutative": ["count"],
        }
    }
)


@pytest.fixture
def monitor():
    mon = InterferenceMonitor([(Store, DECLARED["Store"])])
    previous = set_tie_hook(mon)
    mon.install()
    yield mon
    mon.uninstall()
    set_tie_hook(previous)


def run_tie_group(monitor, *callbacks, spread=False):
    """Schedule the callbacks at one instant (or spread out) and run."""
    sim = Simulator()
    for i, (callback, args) in enumerate(callbacks):
        sim.schedule(2.0 + (i if spread else 0.0), callback, *args)
    sim.run()
    return monitor


class TestR003:
    def test_same_instant_scalar_ww_fires(self, monitor):
        store = Store()
        run_tie_group(
            monitor, (store.set_value, (1,)), (store.set_value, (2,))
        )
        assert [f.rule for f in monitor.findings] == ["R003"]
        assert "Store#0.value" in monitor.findings[0].message
        assert monitor.conflict_groups

    def test_spread_out_writes_do_not_fire(self, monitor):
        store = Store()
        run_tie_group(
            monitor, (store.set_value, (1,)), (store.set_value, (2,)), spread=True
        )
        assert monitor.findings == []
        assert not monitor.conflict_groups

    def test_distinct_instances_do_not_alias(self, monitor):
        a, b = Store(), Store()
        run_tie_group(monitor, (a.set_value, (1,)), (b.set_value, (2,)))
        assert monitor.findings == []

    def test_dict_conflicts_are_key_granular(self, monitor):
        store = Store()
        run_tie_group(monitor, (store.put, ("x", 1)), (store.put, ("y", 2)))
        assert monitor.findings == []
        run_tie_group(monitor, (store.put, ("x", 1)), (store.put, ("x", 2)))
        assert [f.rule for f in monitor.findings] == ["R003"]
        assert "Store#0.table['x']" in monitor.findings[0].message

    def test_commutative_cells_exempt(self, monitor):
        store = Store()
        run_tie_group(monitor, (store.bump, ()), (store.bump, ()))
        assert monitor.findings == []

    def test_lru_reorder_is_a_whole_table_write(self, monitor):
        store = Store()
        run_tie_group(
            monitor, (store.touch_lru, ("x",)), (store.touch_lru, ("y",))
        )
        # different keys, but move_to_end mutates the shared eviction order
        assert [f.rule for f in monitor.findings] == ["R003"]
        assert "Store#0.lru[*]" in monitor.findings[0].message


class TestR004:
    def test_read_vs_write_fires(self, monitor):
        store = Store()
        run_tie_group(monitor, (store.read_value, ()), (store.set_value, (2,)))
        assert [f.rule for f in monitor.findings] == ["R004"]

    def test_iteration_vs_keyed_write_fires(self, monitor):
        store = Store()
        run_tie_group(monitor, (store.scan, ()), (store.put, ("x", 1)))
        assert [f.rule for f in monitor.findings] == ["R004"]
        assert "Store#0.table[*]" in monitor.findings[0].message

    def test_two_readers_do_not_fire(self, monitor):
        store = Store()
        run_tie_group(monitor, (store.read_value, ()), (store.read_value, ()))
        assert monitor.findings == []


class TestSerializationContract:
    def test_allow_marker_on_schedule_site_suppresses(self, monitor):
        store = Store()
        sim = Simulator()
        sim.schedule(1.0, store.set_value, 1)  # repro: allow[R003] send-order contract
        sim.schedule(1.0, store.set_value, 2)  # repro: allow[R003] send-order contract
        sim.run()
        assert monitor.findings == []
        # suppressed conflicts are not exploration targets either
        assert not monitor.conflict_groups

    def test_marker_for_other_rule_does_not_suppress(self, monitor):
        store = Store()
        sim = Simulator()
        sim.schedule(1.0, store.set_value, 1)  # repro: allow[R004] wrong rule
        sim.schedule(1.0, store.set_value, 2)  # repro: allow[R004] wrong rule
        sim.run()
        assert [f.rule for f in monitor.findings] == ["R003"]


class TestTrackedContainers:
    def test_tracking_preserves_dict_semantics(self, monitor):
        store = Store()
        run_tie_group(monitor, (store.put, ("x", 1)), (store.get, ("y",)))
        assert isinstance(store.table, dict)
        assert store.table == {"x": 1}
        assert store.table.trace_digest() == "dict"

    def test_ordered_dict_keeps_type_and_order(self, monitor):
        store = Store()
        run_tie_group(
            monitor, (store.touch_lru, ("x",)), (store.touch_lru, ("y",))
        )
        assert isinstance(store.lru, OrderedDict)
        assert list(store.lru) == ["x", "y"]


class TestRunMonitored:
    def test_toy_experiment_report(self):
        store = Store()

        def experiment():
            sim = Simulator()
            sim.schedule(1.0, store.set_value, 1)
            sim.schedule(1.0, store.set_value, 2)
            sim.schedule(2.0, store.bump)
            sim.run()

        report = run_monitored(
            experiment, declared=[(Store, DECLARED["Store"])]
        )
        assert not report.ok
        assert report.multi_groups == 1
        assert [f.rule for f in report.findings] == ["R003"]
        assert "CONFLICTS DETECTED" in report.summary()

    def test_clean_toy_experiment_is_ok(self):
        def experiment():
            store = Store()
            sim = Simulator()
            sim.schedule(1.0, store.set_value, 1)
            sim.schedule(2.0, store.set_value, 2)
            sim.run()

        report = run_monitored(
            experiment, declared=[(Store, DECLARED["Store"])]
        )
        assert report.ok
        assert "OK" in report.summary()

    def test_monitor_uninstalls_cleanly(self):
        report = run_monitored(
            lambda: None, declared=[(Store, DECLARED["Store"])]
        )
        assert report.ok
        # patched methods restored: plain attribute access, no recording
        store = Store()
        store.value = 7
        assert store.value == 7
        assert type(store.table) is dict
