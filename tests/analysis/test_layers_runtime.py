"""L006: the runtime import-isolation verifier for the pure core."""

from repro.analysis.layers import (
    BLOCKED_PREFIXES,
    verify_import_isolation,
)


class TestImportIsolation:
    def test_pure_core_imports_with_platform_blocked(self):
        report = verify_import_isolation()
        assert report.ok, report.summary
        assert report.findings == []
        assert "repro.guard.core" in report.summary
        assert "repro.dnswire" in report.summary

    def test_adapter_target_is_refused(self):
        # The pipeline adapter imports repro.netsim — the blocker must
        # refuse it, proving the verifier actually enforces something.
        report = verify_import_isolation(targets=["repro.guard.pipeline"])
        assert not report.ok
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "L006"
        assert "repro.guard.pipeline" in finding.message
        assert "blocked by the layering verifier" in finding.message

    def test_empty_manifest_is_trivially_ok(self):
        report = verify_import_isolation(manifest={"repro.guard": "adapter"})
        assert report.ok
        assert report.findings == []
        assert "no pure-core packages" in report.summary

    def test_blocklist_covers_the_platform(self):
        for prefix in ("repro.netsim", "repro.obs", "asyncio", "socket",
                       "threading", "time", "random", "secrets"):
            assert prefix in BLOCKED_PREFIXES
        assert "os" not in BLOCKED_PREFIXES  # interpreter machinery needs it
