"""P-rules: hot-path inference, profile weighting, and the cost checks."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.perf.engine import PERF_RULES, analyze_perf
from repro.analysis.perf.hotpath import (
    PerfProfile,
    compute_hot_paths,
    load_profile,
    module_dotted,
)
from repro.analysis.flow.core import load_modules

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def qualnames(hot_paths) -> set:
    return {qualname for (_path, qualname) in hot_paths.functions}


# -- hot-path inference -------------------------------------------------------


class TestHotPathInference:
    def test_schedule_callback_and_callees_become_hot(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def start(self):
                    self.sim.schedule(0.5, self._tick)

                def _tick(self):
                    self._drain()

                def _drain(self):
                    pass

            def offline():
                pass
            """,
        )
        hot = compute_hot_paths(load_modules([tmp_path]))
        assert "Pump._tick" in qualnames(hot)
        assert "Pump._drain" in qualnames(hot)
        # start() only schedules; nothing schedules *it*
        assert "Pump.start" not in qualnames(hot)
        assert "offline" not in qualnames(hot)
        tick = next(
            f for f in hot.functions.values() if f.decl.qualname == "Pump._tick"
        )
        drain = next(
            f for f in hot.functions.values() if f.decl.qualname == "Pump._drain"
        )
        assert tick.depth == 0 and tick.root == "Pump._tick"
        assert drain.depth == 1 and drain.root == "Pump._tick"
        assert not tick.profiled
        assert tick.describe() == "hot path root Pump._tick"
        assert drain.describe() == "hot path via Pump._tick"

    def test_lambda_callback_marks_its_body_calls_hot(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def start(self):
                    self.sim.schedule(0.5, lambda: self._tick())

                def _tick(self):
                    pass
            """,
        )
        hot = compute_hot_paths(load_modules([tmp_path]))
        assert "Pump._tick" in qualnames(hot)

    def test_node_receive_is_always_hot(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Node:
                def receive(self, packet, link):
                    self.deliver(packet)

                def deliver(self, packet):
                    pass
            """,
        )
        hot = compute_hot_paths(load_modules([tmp_path]))
        assert "Node.receive" in qualnames(hot)
        assert "Node.deliver" in qualnames(hot)

    def test_cpu_submit_callback_is_a_root(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Server:
                def on_query(self, query):
                    self.cpu.submit(0.0001, self._serve, query)

                def _serve(self, query):
                    pass
            """,
        )
        hot = compute_hot_paths(load_modules([tmp_path]))
        assert "Server._serve" in qualnames(hot)

    def test_hub_names_do_not_drag_the_tree_in(self, tmp_path):
        # four foreign candidates for "send" — above the fan-out cap, so
        # the ambiguous call resolves to nothing
        write(
            tmp_path,
            "hub1.py",
            """
            class A:
                def send(self): pass
            class B:
                def send(self): pass
            """,
        )
        write(
            tmp_path,
            "hub2.py",
            """
            class C:
                def send(self): pass
            class D:
                def send(self): pass
            """,
        )
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def start(self):
                    self.sim.schedule(0.5, self._tick)

                def _tick(self):
                    send(self)
            """,
        )
        hot = compute_hot_paths(load_modules([tmp_path]))
        assert "Pump._tick" in qualnames(hot)
        assert not any(q.endswith(".send") for q in qualnames(hot))


# -- profile loading and weighting --------------------------------------------


class TestProfileWeighting:
    def test_missing_profile_is_none(self, tmp_path):
        assert load_profile(tmp_path / "absent.json") is None

    def test_malformed_profile_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError):
            load_profile(bad)
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError):
            load_profile(bad)

    def test_loads_bench_document(self, tmp_path):
        doc = {
            "benchmark": "simulator-event-loop",
            "value": 123.0,
            "detail": {
                "events_per_second": 123.0,
                "handlers": {"mod.Pump._tick": {"calls": 7, "seconds": 0.25}},
            },
        }
        path = tmp_path / "BENCH_profile.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        profile = load_profile(path)
        assert profile is not None
        assert profile.events_per_second == 123.0
        assert profile.handlers == {"mod.Pump._tick": (7, 0.25)}

    def test_profile_adds_roots_the_static_pass_cannot_see(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Pump:
                def _indirect(self):
                    pass
            """,
        )
        modules = load_modules([tmp_path])
        assert compute_hot_paths(modules).functions == {}
        profile = PerfProfile(
            events_per_second=1000.0,
            handlers={"mod.Pump._indirect": (100, 2.5)},
        )
        hot = compute_hot_paths(modules, profile)
        assert "Pump._indirect" in qualnames(hot)
        entry = next(iter(hot.functions.values()))
        assert entry.profiled
        assert (entry.calls, entry.seconds) == (100, 2.5)
        assert entry.describe() == "profiled hot path root Pump._indirect"
        path = entry.module.path
        assert hot.weight_for(path, "Pump._indirect") == (100, 2.5)
        assert hot.weight_for(path, "Pump.unknown") == (0, 0.0)

    def test_module_dotted(self):
        assert module_dotted("src/repro/netsim/node.py") == "repro.netsim.node"
        assert module_dotted("src/repro/analysis/perf/__init__.py") == (
            "repro.analysis.perf"
        )
        assert module_dotted("/tmp/x/mod.py") == "mod"


# -- the cost checks on toy modules -------------------------------------------

HOT_PRELUDE = """\
class Handler:
    def start(self):
        self.sim.schedule(0.5, self._on_event)
"""


def toy_findings(tmp_path, body: str, rule: str):
    """Analyze ``Handler`` with the dedented ``body`` as extra class members.

    ``body`` is re-indented one level so its ``def``s become methods of the
    hot ``Handler`` class; anything that must stay at module level goes in
    through :func:`write` directly.
    """
    methods = textwrap.indent(textwrap.dedent(body), "    ")
    write(tmp_path, "mod.py", HOT_PRELUDE + methods)
    return analyze_perf([tmp_path], rule_ids=[rule])


class TestChecks:
    def test_p001_unslotted_instantiation(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            HOT_PRELUDE
            + """
    def _on_event(self):
        return Ticket()

class Ticket:
    def __init__(self):
        self.n = 0
""",
        )
        findings = analyze_perf([tmp_path], rule_ids=["P001"])
        assert [f.rule for f in findings] == ["P001"]
        assert "Ticket" in findings[0].message

    def test_p001_ignores_slotted_and_exception_classes(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            HOT_PRELUDE
            + """
    def _on_event(self):
        Slotted()
        Frozen()
        raise Boom()

class Slotted:
    __slots__ = ("n",)

import dataclasses

@dataclasses.dataclass(slots=True)
class Frozen:
    n: int = 0

class Boom(Exception):
    pass
""",
        )
        assert analyze_perf([tmp_path], rule_ids=["P001"]) == []

    def test_p002_reencoding(self, tmp_path):
        findings = toy_findings(
            tmp_path,
            """
                def _on_event(self, msg):
                    return len(msg.encode()) + msg.wire_size()
            """,
            "P002",
        )
        assert [f.rule for f in findings] == ["P002", "P002"]

    def test_p002_inline_allow_suppresses(self, tmp_path):
        findings = toy_findings(
            tmp_path,
            """
                def _on_event(self, msg):
                    return msg.encode()  # repro: allow[P002] template built once
            """,
            "P002",
        )
        assert findings == []

    def test_p003_lambda_and_partial_callbacks(self, tmp_path):
        findings = toy_findings(
            tmp_path,
            """
                def _on_event(self):
                    self.sim.schedule(0.1, lambda: self.poke())
                    self.sim.schedule(0.1, partial(self.poke, 1))

                def poke(self, n=0):
                    pass
            """,
            "P003",
        )
        assert [f.rule for f in findings] == ["P003", "P003"]
        assert "lambda" in findings[0].message
        assert "partial" in findings[1].message

    def test_p004_formatting_fires_outside_error_paths_only(self, tmp_path):
        findings = toy_findings(
            tmp_path,
            """
                def _on_event(self, packet):
                    label = f"pkt {packet}"
                    print(label)
                    self.log.debug("got %s", packet)
                    if packet is None:
                        raise ValueError(f"bad packet {packet}")
            """,
            "P004",
        )
        # three findings: the f-string, print, and log.debug — the f-string
        # inside the raise is an error path and must NOT be a fourth
        assert [f.rule for f in findings] == ["P004", "P004", "P004"]

    def test_p005_scans(self, tmp_path):
        findings = toy_findings(
            tmp_path,
            """
                def __init__(self):
                    self.peers = []
                    self.table = {}

                def _on_event(self, src):
                    if src in self.peers:      # list: O(n)
                        return True
                    if src in self.table:      # dict: fine
                        return True
                    return sorted(self.peers)
            """,
            "P005",
        )
        assert [f.rule for f in findings] == ["P005", "P005"]
        assert "membership test over .peers" in findings[0].message
        assert "sorted()" in findings[1].message

    def test_p006_constant_delay_fires_computed_delay_does_not(self, tmp_path):
        findings = toy_findings(
            tmp_path,
            """
                def _on_event(self):
                    self.sim.schedule(0.001, self.poke)
                    self.sim.schedule(self.jitter(), self.poke)

                def poke(self):
                    pass

                def jitter(self):
                    return 0.0
            """,
            "P006",
        )
        # the prelude's start() is not hot, so only _on_event's constant
        # push fires; the jitter() delay is call-shaped and exempt
        assert len(findings) == 1
        assert findings[0].rule == "P006"

    def test_cold_functions_are_never_checked(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            def cold(msg):
                print(f"cold {msg.encode()}")
            """,
        )
        assert analyze_perf([tmp_path]) == []

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(KeyError):
            analyze_perf([tmp_path], rule_ids=["P999"])

    def test_registry_is_consistent(self):
        from repro.analysis.perf.rules import PERF_CHECKS

        assert set(PERF_RULES) == set(PERF_CHECKS)
        assert all(rule.family == "perf" for rule in PERF_RULES.values())


# -- seeded-mutation acceptance tests against repo sources --------------------


def mutate(tmp_path, relative: str, old: str, new: str) -> Path:
    """Copy one repo source file into tmp_path with ``old`` -> ``new``."""
    original = (REPO_SRC / relative).read_text(encoding="utf-8")
    mutated = original.replace(old, new)
    assert mutated != original, f"mutation anchor not found in {relative}"
    return write(tmp_path, Path(relative).name, mutated)


class TestAcceptanceMutations:
    def test_repo_clean_through_cli_with_baseline(self, capsys):
        from repro.analysis.cli import main

        assert (
            main(
                [
                    "--perf",
                    "--baseline",
                    "scripts/perf_baseline.json",
                    "src",
                ]
            )
            == 0
        )

    def test_removing_interaction_slots_fires_p001(self, tmp_path):
        mutate(
            tmp_path,
            "repro/dns/loadgen.py",
            '__slots__ = (\n        "lrs",',
            '_not_slots = (\n        "lrs",',
        )
        findings = analyze_perf([tmp_path], rule_ids=["P001"])
        assert findings, "unslotted per-event _Interaction must fire P001"
        assert any("_Interaction" in f.message for f in findings)

    def test_inlining_fresh_encode_in_serve_fires_p002(self, tmp_path):
        mutate(
            tmp_path,
            "repro/dns/loadgen.py",
            "self._socket.send(response, src, sport, src=dst, size=size, span=span)",
            "self._socket.send(response, src, sport, src=dst,"
            " size=response.wire_size(), span=span)",
        )
        findings = analyze_perf([tmp_path], rule_ids=["P002"])
        assert [f.rule for f in findings] == ["P002"]
        assert "AnsSimulator._serve" in findings[0].message

    def test_reintroducing_tcp_deadline_lambda_fires_p003(self, tmp_path):
        mutate(
            tmp_path,
            "repro/dns/recursive.py",
            "self.resolver.timeout * 3, self._tcp_fallback_fail, conn",
            "self.resolver.timeout * 3,"
            " lambda: self._tcp_fallback_fail(conn)",
        )
        findings = analyze_perf([tmp_path], rule_ids=["P003"])
        assert [f.rule for f in findings] == ["P003"]
        assert "_retry_over_tcp" in findings[0].message

    def test_injecting_print_into_serve_fires_p004(self, tmp_path):
        mutate(
            tmp_path,
            "repro/dns/loadgen.py",
            "self.requests_served += 1",
            'self.requests_served += 1\n        print(f"served {query}")',
        )
        findings = analyze_perf([tmp_path], rule_ids=["P004"])
        assert findings
        assert all(f.rule == "P004" for f in findings)
        assert any("AnsSimulator._serve" in f.message for f in findings)

    def test_reverting_owns_to_list_scan_fires_p005(self, tmp_path):
        assert analyze_perf(
            [REPO_SRC / "repro" / "netsim" / "node.py"], rule_ids=["P005"]
        ) == []
        mutate(
            tmp_path,
            "repro/netsim/node.py",
            "if address in self._address_set:",
            "if address in self.addresses:",
        )
        findings = analyze_perf([tmp_path], rule_ids=["P005"])
        assert [f.rule for f in findings] == ["P005"]
        assert "Node.owns" in findings[0].message

    def test_p006_flags_batch_loops_and_spares_computed_delays(self, tmp_path):
        # the attack batch loop is real accepted debt (scripts/
        # perf_baseline.json): the raw analyzer must keep flagging it
        findings = analyze_perf(
            [REPO_SRC / "repro" / "attack" / "spoof.py"], rule_ids=["P006"]
        )
        assert any(
            "_emit_batch" in f.message and f.rule == "P006" for f in findings
        )
        # routing the delay through a call makes it non-constant-shaped,
        # which is exactly what the calendar-queue rewrite will not absorb
        mutate(
            tmp_path,
            "repro/attack/spoof.py",
            "sim.schedule(i * spacing, self._send_one, packet)",
            "sim.schedule(self._jitter(i * spacing),"
            " self._send_one, packet)",
        )
        mutated = analyze_perf([tmp_path], rule_ids=["P006"])
        assert len(mutated) < len(findings)
