"""Schedule exploration: seeded tie-group permutations vs canonical traces."""

from repro.analysis.races import explore
from repro.analysis.races.declarations import parse_declaration
from repro.netsim import Simulator

DECLARED = parse_declaration({"Cell": {"guarded": ["value"]}})


class Cell:
    def __init__(self):
        self.value = 0

    def set(self, n):
        self.value = n

    def same(self, n):
        self.value = 0 * n  # writes, but every order converges to 0


def declared():
    return [(Cell, DECLARED["Cell"])]


def order_dependent():
    """Last writer wins, and the winner steers a later event's timestamp."""
    cell = Cell()
    sim = Simulator()
    sim.schedule(1.0, cell.set, 1)
    sim.schedule(1.0, cell.set, 2)
    sim.schedule(2.0, lambda: sim.schedule(0.5 * cell.value, lambda: None))
    sim.run()


def order_convergent():
    """A real W/W conflict whose every interleaving ends in the same state."""
    cell = Cell()
    sim = Simulator()
    sim.schedule(1.0, cell.same, 1)
    sim.schedule(1.0, cell.same, 2)
    sim.schedule(2.0, lambda: sim.schedule(0.5 + cell.value, lambda: None))
    sim.run()


def conflict_free():
    a, b = Cell(), Cell()
    sim = Simulator()
    sim.schedule(1.0, a.set, 1)
    sim.schedule(1.0, b.set, 2)
    sim.run()


class TestExplore:
    def test_conflicting_group_divergence_is_detected(self):
        report = explore(order_dependent, permutations=8, declared=declared())
        assert report.target_groups == 1
        assert report.permuted_total > 0
        assert not report.invariant
        assert report.divergences, "some permutation must swap the writers"
        assert "ORDER-DEPENDENT" in report.summary()
        # localised: the divergence names a simulator and tie group
        _, divergence = report.divergences[0]
        assert divergence.sim_index == 0

    def test_convergent_conflict_is_invariant(self):
        report = explore(order_convergent, permutations=8, declared=declared())
        assert report.target_groups == 1
        assert report.permuted_total > 0
        assert report.invariant
        assert "INVARIANT" in report.summary()

    def test_no_conflicts_means_nothing_to_permute(self):
        report = explore(conflict_free, permutations=8, declared=declared())
        assert report.target_groups == 0
        assert report.permuted_total == 0
        assert report.invariant
        assert "no conflicting tie group(s)" in report.summary()

    def test_same_seed_reproduces_the_divergences(self):
        first = explore(order_dependent, permutations=6, seed=3, declared=declared())
        second = explore(order_dependent, permutations=6, seed=3, declared=declared())
        assert [i for i, _ in first.divergences] == [
            i for i, _ in second.divergences
        ]
        assert first.base_digest == second.base_digest
