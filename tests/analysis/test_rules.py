"""Every lint rule: positive fixtures (must flag) and negative (must not)."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.rules import RULES


def findings_for(source: str, rule: str | None = None):
    found = lint_source(textwrap.dedent(source))
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert {"D001", "D002", "D003", "D004", "D005", "W001"} <= set(RULES)

    def test_rules_carry_docs(self):
        for rule_cls in RULES.values():
            assert rule_cls.summary
            assert rule_cls.rationale


class TestD001WallClock:
    def test_flags_time_time(self):
        found = findings_for(
            """
            import time

            def deadline():
                return time.time() + 5
            """,
            "D001",
        )
        assert len(found) == 1
        assert found[0].line == 5
        assert "time.time" in found[0].message

    def test_flags_monotonic_and_datetime_now(self):
        source = """
        import time, datetime

        def stamp():
            a = time.monotonic()
            b = datetime.datetime.now()
            return a, b
        """
        rules = [f.rule for f in findings_for(source)]
        assert rules.count("D001") == 2

    def test_clean_virtual_time_ok(self):
        assert not findings_for(
            """
            def deadline(sim):
                return sim.now + 5
            """,
            "D001",
        )


class TestD002Randomness:
    def test_flags_import_random(self):
        found = findings_for("import random\n", "D002")
        assert len(found) == 1
        assert "Simulator.rng" in found[0].message

    def test_flags_from_random_import(self):
        assert findings_for("from random import gauss\n", "D002")

    def test_flags_unseeded_random_instance(self):
        found = findings_for(
            """
            import random  # repro: allow[D002]

            def make():
                return random.Random()
            """,
            "D002",
        )
        assert len(found) == 1
        assert "unseeded" in found[0].message

    def test_flags_global_rng_function(self):
        found = findings_for(
            """
            import random  # repro: allow[D002]

            def jitter():
                return random.random() * 2
            """,
            "D002",
        )
        assert len(found) == 1
        assert "process-global" in found[0].message

    def test_flags_os_entropy(self):
        found = findings_for(
            """
            import secrets

            def key():
                return secrets.token_bytes(76)
            """,
            "D002",
        )
        assert len(found) == 1
        assert "OS entropy" in found[0].message

    def test_seeded_random_instance_ok(self):
        assert not findings_for(
            """
            import random  # repro: allow[D002]

            def make(seed):
                return random.Random(seed)
            """,
            "D002",
        )

    def test_simulator_rng_ok(self):
        assert not findings_for(
            """
            def jitter(sim):
                return sim.rng.random() * 2
            """,
            "D002",
        )


class TestD003UnorderedScheduling:
    def test_flags_set_literal_feeding_scheduler(self):
        found = findings_for(
            """
            def arm(sim, cb):
                for delay in {0.1, 0.2, 0.3}:
                    sim.schedule(delay, cb)
            """,
            "D003",
        )
        assert len(found) == 1
        assert "sorted" in found[0].message

    def test_flags_set_call_and_dict_view(self):
        source = """
        def arm(sim, cb, delays, table):
            for delay in set(delays):
                sim.schedule(delay, cb)
            for key in table.keys():
                sim.schedule_at(1.0, cb, key)
        """
        assert len(findings_for(source, "D003")) == 2

    def test_sorted_iteration_ok(self):
        assert not findings_for(
            """
            def arm(sim, cb, delays):
                for delay in sorted(set(delays)):
                    sim.schedule(delay, cb)
            """,
            "D003",
        )

    def test_set_iteration_without_scheduling_ok(self):
        assert not findings_for(
            """
            def total(values):
                acc = 0
                for v in set(values):
                    acc += v
                return acc
            """,
            "D003",
        )


class TestD004MutableDefaults:
    def test_flags_list_default(self):
        found = findings_for(
            """
            def collect(items=[]):
                return items
            """,
            "D004",
        )
        assert len(found) == 1
        assert "collect" in found[0].message

    def test_flags_dict_and_set_calls(self):
        source = """
        def a(x={}):
            return x

        def b(*, y=set()):
            return y
        """
        assert len(findings_for(source, "D004")) == 2

    def test_none_default_ok(self):
        assert not findings_for(
            """
            def collect(items=None):
                return items if items is not None else []
            """,
            "D004",
        )


class TestD005FloatTimeEquality:
    def test_flags_now_equality(self):
        found = findings_for(
            """
            def ready(sim, when):
                return sim.now == when
            """,
            "D005",
        )
        assert len(found) == 1
        assert "tolerance" in found[0].message

    def test_flags_not_equal_on_bare_now(self):
        assert findings_for(
            """
            def stale(now, stamp):
                return now != stamp
            """,
            "D005",
        )

    def test_inequality_comparison_ok(self):
        assert not findings_for(
            """
            def due(sim, when):
                return sim.now >= when
            """,
            "D005",
        )

    def test_unrelated_equality_ok(self):
        assert not findings_for(
            """
            def match(a, b):
                return a == b
            """,
            "D005",
        )


class TestW001SwallowedExceptions:
    def test_flags_bare_except(self):
        found = findings_for(
            """
            def cb():
                try:
                    fire()
                except:
                    pass
            """,
            "W001",
        )
        assert len(found) == 1
        assert "bare except" in found[0].message

    def test_flags_except_exception_pass(self):
        found = findings_for(
            """
            def cb():
                try:
                    fire()
                except Exception:
                    pass
            """,
            "W001",
        )
        assert len(found) == 1
        assert "swallows" in found[0].message

    def test_narrow_handler_ok(self):
        assert not findings_for(
            """
            def cb():
                try:
                    fire()
                except ValueError:
                    pass
            """,
            "W001",
        )

    def test_exception_with_handling_ok(self):
        assert not findings_for(
            """
            def cb(log):
                try:
                    fire()
                except Exception:
                    log.append("boom")
                    raise
            """,
            "W001",
        )


class TestW002ObserveOnly:
    OBS_PATH = "src/repro/obs/runtime.py"

    def _findings(self, source: str, path: str = OBS_PATH):
        found = lint_source(textwrap.dedent(source), path=path)
        return [f for f in found if f.rule == "W002"]

    def test_flags_schedule_calls_in_obs_code(self):
        found = self._findings(
            """
            def sample(self):
                self._sim.schedule(0.1, self.sample)
            """
        )
        assert len(found) == 1
        assert "schedule" in found[0].message

    def test_flags_schedule_at_and_child_rng(self):
        source = """
        def arm(sim):
            sim.schedule_at(1.0, print)
            stream = sim.child_rng("obs")
        """
        assert len(self._findings(source)) == 2

    def test_flags_rng_attribute_access(self):
        found = self._findings(
            """
            def jitter(sim):
                return sim.rng.random()
            """
        )
        assert found
        assert any(".rng" in f.message for f in found)

    def test_other_packages_unaffected(self):
        source = """
        def arm(sim):
            sim.schedule(0.1, print)
            sim.rng.random()
        """
        assert not self._findings(source, path="src/repro/netsim/simulator.py")
        assert not self._findings(source, path="src/repro/faults/plan.py")

    def test_allow_marker_suppresses(self):
        found = self._findings(
            """
            def arm(sim):
                sim.schedule(0.1, print)  # repro: allow[W002]
            """
        )
        assert not found

    def test_registered(self):
        assert "W002" in RULES

    def test_whole_obs_package_is_clean(self):
        import pathlib

        import repro.obs

        package_dir = pathlib.Path(repro.obs.__file__).parent
        for path in sorted(package_dir.glob("*.py")):
            found = [
                f
                for f in lint_source(path.read_text(), path=str(path))
                if f.rule == "W002"
            ]
            assert not found, f"{path}: {found}"


class TestW002ActuatorSeam:
    """Mutating guard/limiter entry points are reserved for repro.control."""

    OBS_PATH = "src/repro/obs/exporters.py"

    def _findings(self, source: str, path: str = OBS_PATH):
        found = lint_source(textwrap.dedent(source), path=path)
        return [f for f in found if f.rule == "W002"]

    def test_flags_actuator_calls_from_obs(self):
        found = self._findings(
            """
            def meddle(guard):
                guard.set_policy("drop")
                guard.rl1.reconfigure(10.0, 20.0)
                guard.rotate_cookie_key(b"k")
                guard.set_admission(None)
            """
        )
        assert len(found) == 4
        assert all("actuator seam" in f.message for f in found)

    def test_flags_lifecycle_and_reset_calls(self):
        found = self._findings(
            """
            def meddle(guard):
                guard.crash()
                guard.rl1.reset()
            """
        )
        assert len(found) == 2

    def test_control_plane_may_actuate(self):
        source = """
        def escalate(guard):
            guard.set_policy("drop")
            guard.rl1.reconfigure(10.0, 20.0)
        """
        assert not self._findings(source, path="src/repro/control/actuators.py")
        assert not self._findings(source, path="src/repro/faults/plan.py")

    def test_observing_reads_stay_clean(self):
        found = self._findings(
            """
            def peek(guard):
                return guard.stats(), guard.policy_for, guard.admission
            """
        )
        assert not found

    def test_allow_marker_suppresses_seam_finding(self):
        found = self._findings(
            """
            def meddle(guard):
                guard.set_policy("drop")  # repro: allow[W002]
            """
        )
        assert not found


class TestW002FarmSeedPurity:
    """Farm workers: no actuator calls, every RNG from the per-cell seed."""

    FARM_PATH = "src/repro/farm/worker.py"

    def _findings(self, source: str, path: str = FARM_PATH):
        found = lint_source(textwrap.dedent(source), path=path)
        return [f for f in found if f.rule == "W002"]

    def test_flags_private_rng_in_worker(self):
        """The seeded-mutation witness: slip a random.Random() into a farm
        worker and W002 must fire — even with an explicit seed, because
        cell randomness must derive from the per-cell seed alone."""
        found = self._findings(
            """
            import random

            def run_cell(params, seed, fast):
                rng = random.Random()
                jitter = random.Random(42)
            """
        )
        assert len(found) == 2
        assert all("per-cell seed" in f.message for f in found)

    def test_flags_bare_random_constructor(self):
        found = self._findings(
            """
            from random import Random

            def run_cell(params, seed, fast):
                return Random(seed).random()
            """
        )
        assert len(found) == 1

    def test_flags_actuator_calls_from_farm(self):
        found = self._findings(
            """
            def run_cell(guard):
                guard.set_policy("drop")
                guard.rotate_cookie_key(b"k")
            """
        )
        assert len(found) == 2
        assert all("sanctioned" in f.message for f in found)

    def test_schedule_allowed_in_farm(self):
        """Unlike obs, farm code may schedule events — the hybrid fluids
        tick on the simulator; only actuators and private RNGs are out."""
        source = """
        def start(self):
            self._handle = self.sim.schedule(self.tick, self._on_tick)
            stream = self.sim.child_rng("farm")
        """
        assert not self._findings(source)

    def test_other_packages_unaffected(self):
        source = """
        def run_cell(params, seed, fast):
            import random
            return random.Random(seed)
        """
        assert not self._findings(source, path="src/repro/experiments/faults.py")

    def test_whole_farm_package_is_clean(self):
        import pathlib

        import repro.farm

        package_dir = pathlib.Path(repro.farm.__file__).parent
        for path in sorted(package_dir.glob("*.py")):
            found = [
                f
                for f in lint_source(path.read_text(), path=str(path))
                if f.rule == "W002"
            ]
            assert not found, f"{path}: {found}"
