"""R001/R002: static effect inference over scheduled callbacks."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.races import analyze_races, declarations_for_module

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def write(tmp_path: Path, name: str, source: str, prelude: str = "") -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prelude + textwrap.dedent(source), encoding="utf-8")
    return path


DECL = """\
__shared_state__ = {
    "Guard": {"guarded": ["table"], "commutative": ["hits"]},
}
"""


class TestDeclarations:
    def test_parse_and_classify(self):
        decls = declarations_for_module(ast.parse(DECL))
        assert set(decls) == {"Guard"}
        assert decls["Guard"].guarded == frozenset({"table"})
        assert decls["Guard"].commutative == frozenset({"hits"})
        assert decls["Guard"].all_attrs == frozenset({"table", "hits"})

    def test_non_literal_declaration_ignored(self):
        decls = declarations_for_module(
            ast.parse("__shared_state__ = make_decl()")
        )
        assert decls == {}


class TestR001:
    def test_overlapping_writes_same_lane_fire(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def arm(self, sim):
                    sim.schedule(1.0, self.expire)
                    sim.schedule(1.0, self.refresh)
                def expire(self):
                    self.table.pop("k", None)
                def refresh(self):
                    self.table["k"] = 1
            """,
            prelude=DECL,
        )
        findings = analyze_races([tmp_path])
        assert [f.rule for f in findings] == ["R001"]
        assert "Guard.table" in findings[0].message

    def test_boundary_lane_separates_the_pair(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            BOUNDARY_PRIORITY = -1

            class Guard:
                def arm(self, sim):
                    sim.schedule(1.0, self.expire, priority=BOUNDARY_PRIORITY)
                    sim.schedule(1.0, self.refresh)
                def expire(self):
                    self.table.pop("k", None)
                def refresh(self):
                    self.table["k"] = 1
            """,
            prelude=DECL,
        )
        assert analyze_races([tmp_path]) == []

    def test_commutative_cells_exempt(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def arm(self, sim):
                    sim.schedule(1.0, self.count_a)
                    sim.schedule(1.0, self.count_b)
                def count_a(self):
                    self.hits += 1
                def count_b(self):
                    self.hits += 2
            """,
            prelude=DECL,
        )
        assert analyze_races([tmp_path]) == []

    def test_periodic_self_reschedule_is_not_a_pair(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def arm(self, sim):
                    sim.schedule(1.0, self.sweep)
                def sweep(self):
                    self.table.clear()
                    self.sim.schedule(1.0, self.sweep)
            """,
            prelude=DECL,
        )
        assert analyze_races([tmp_path]) == []

    def test_effects_propagate_through_helpers(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def arm(self, sim):
                    sim.schedule(1.0, self.expire)
                    sim.schedule(1.0, self.refresh)
                def expire(self):
                    self._drop()
                def _drop(self):
                    self.table.pop("k", None)
                def refresh(self):
                    self.table["k"] = 1
            """,
            prelude=DECL,
        )
        assert [f.rule for f in analyze_races([tmp_path])] == ["R001"]

    def test_inline_allow_suppresses(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def arm(self, sim):
                    sim.schedule(1.0, self.expire)  # repro: allow[R001] composes
                    sim.schedule(1.0, self.refresh)
                def expire(self):
                    self.table.pop("k", None)
                def refresh(self):
                    self.table["k"] = 1
            """,
            prelude=DECL,
        )
        assert analyze_races([tmp_path]) == []

    def test_same_attr_different_classes_do_not_alias(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            __shared_state__ = {
                "A": {"guarded": ["table"]},
                "B": {"guarded": ["table"]},
            }

            class A:
                def arm(self, sim):
                    sim.schedule(1.0, self.touch)
                def touch(self):
                    self.table["k"] = 1

            class B:
                def arm(self, sim):
                    sim.schedule(1.0, self.touch2)
                def touch2(self):
                    self.table["k"] = 2
            """,
        )
        assert analyze_races([tmp_path]) == []


class TestR002:
    def test_undeclared_write_outside_init_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            class Guard:
                def __init__(self):
                    self.table = {}
                    self.cache = {}
                def handle(self):
                    self.cache["k"] = 1
            """,
            prelude=DECL,
        )
        findings = analyze_races([tmp_path])
        assert [f.rule for f in findings] == ["R002"]
        assert "self.cache" in findings[0].message

    def test_required_module_without_declaration_fires(self, tmp_path):
        write(
            tmp_path,
            "guard/core/ratelimit.py",
            """
            class TokenBucket:
                def consume(self):
                    self._tokens -= 1
            """,
        )
        findings = analyze_races([tmp_path])
        assert [f.rule for f in findings] == ["R002"]
        assert "__shared_state__" in findings[0].message


class TestRepoIsClean:
    def test_repo_src_has_no_race_findings(self):
        assert analyze_races([REPO_SRC]) == []

    def test_required_modules_declare_shared_state(self):
        for name in (
            Path("guard") / "pipeline.py",
            Path("guard") / "local_guard.py",
            Path("guard") / "tcp_scheme.py",
            Path("guard") / "core" / "ratelimit.py",
            Path("guard") / "core" / "admission.py",
            Path("faults") / "plan.py",
        ):
            tree = ast.parse((REPO_SRC / "repro" / name).read_text("utf-8"))
            assert declarations_for_module(tree), f"{name} must declare state"


class TestSeededMutations:
    """PR-4-style mutation proofs: the rule notices the broken repo."""

    def test_removing_shared_state_declaration_fires_r002(self, tmp_path):
        original = (
            REPO_SRC / "repro" / "guard" / "core" / "ratelimit.py"
        ).read_text(encoding="utf-8")
        begin = original.index("__shared_state__")
        end = original.index("}\n", original.index('"RateEstimator"')) + 2
        mutated = original[:begin] + original[end:]
        assert "__shared_state__" not in mutated
        write(tmp_path, "guard/core/ratelimit.py", mutated)
        findings = analyze_races([tmp_path], rule_ids=["R002"])
        assert findings, "deleting __shared_state__ must fire R002"
        assert all(f.rule == "R002" for f in findings)

    def test_unlaning_the_fault_schedule_fires_r001(self, tmp_path):
        """Fault actions demoted to the default lane collide with guard
        timers again: drop the lane (and the allow markers) from
        FaultAction.schedule and R001 must return."""
        plan = (REPO_SRC / "repro" / "faults" / "plan.py").read_text("utf-8")
        pipeline = (REPO_SRC / "repro" / "guard" / "pipeline.py").read_text(
            encoding="utf-8"
        )
        mutated = plan.replace(", priority=BOUNDARY_PRIORITY", "")
        mutated = "\n".join(
            line.split("# repro: allow[")[0].rstrip()
            for line in mutated.splitlines()
        )
        assert mutated != plan
        write(tmp_path, "faults/plan.py", mutated)
        write(tmp_path, "guard/pipeline.py", pipeline)
        findings = analyze_races([tmp_path], rule_ids=["R001"])
        assert findings, "removing the boundary lane must fire R001"
        assert all(f.rule == "R001" for f in findings)
