"""L-rules: the transport-purity layering analysis (L001–L005)."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.layers import (
    DEFAULT_MANIFEST,
    LAYER_RULES,
    LAYERS,
    analyze_layers,
    declared_layer,
    layer_of,
    layer_rule_table,
    pure_prefixes,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"

#: Toy manifest: bare-stem module names, since tmp-dir files resolve to
#: their stem.
TOY = {
    "pure_mod": "pure-core",
    "adapt_mod": "adapter",
    "plat_mod": "platform",
}


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestManifest:
    def test_longest_prefix_wins(self):
        assert layer_of("repro.guard.core.cookie", DEFAULT_MANIFEST) == "pure-core"
        assert layer_of("repro.guard.pipeline", DEFAULT_MANIFEST) == "adapter"
        assert layer_of("repro.guard.core", DEFAULT_MANIFEST) == "pure-core"
        assert layer_of("repro.netsim.link", DEFAULT_MANIFEST) == "platform"
        assert layer_of("repro.experiments.fig5", DEFAULT_MANIFEST) is None

    def test_pure_prefixes(self):
        assert pure_prefixes(DEFAULT_MANIFEST) == [
            "repro.dnswire",
            "repro.guard.core",
        ]

    def test_declared_layer_reads_literal(self):
        value = declared_layer(ast.parse('__layer__ = "pure-core"'))
        assert value == ("pure-core", 1)
        assert declared_layer(ast.parse("x = 1")) is None

    def test_non_literal_declaration_reads_absent(self):
        assert declared_layer(ast.parse("__layer__ = compute()")) is None


class TestL001:
    def test_pure_importing_platform_fires(self, tmp_path):
        write(tmp_path, "pure_mod.py", "from plat_mod import Link\n")
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L001"])
        assert findings and all(f.rule == "L001" for f in findings)
        assert any("plat_mod" in f.message for f in findings)

    def test_pure_importing_adapter_fires(self, tmp_path):
        write(tmp_path, "pure_mod.py", "import adapt_mod\n")
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L001"])
        assert [f.rule for f in findings] == ["L001"]
        assert "adapter" in findings[0].message

    def test_pure_importing_platform_stdlib_fires(self, tmp_path):
        write(tmp_path, "pure_mod.py", "import time\nimport socket\n")
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L001"])
        assert len(findings) == 2
        assert all("platform stdlib" in f.message for f in findings)

    def test_pure_importing_pure_stdlib_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            "import dataclasses\nimport hashlib\nimport struct\n",
        )
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L001"]) == []

    def test_adapter_importing_platform_is_clean(self, tmp_path):
        write(tmp_path, "adapt_mod.py", "from plat_mod import Link\n")
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L001"]) == []

    def test_type_checking_import_exempt(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from plat_mod import Link
            """,
        )
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L001"]) == []

    def test_inline_allow_suppresses(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            "import time  # repro: allow[L001] legacy shim\n",
        )
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L001"]) == []


class TestL002:
    def test_direct_transport_call_fires(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            def decide(node, packet):
                node.send(packet)
                return "drop"
            """,
        )
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L002"])
        assert [f.rule for f in findings] == ["L002"]
        assert "send()" in findings[0].message

    def test_reach_through_helper_fires(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            def _emit(node, packet):
                node.schedule(0.0, packet)

            def decide(node, packet):
                _emit(node, packet)
                return "drop"
            """,
        )
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L002"])
        assert len(findings) == 2  # the helper and the reacher
        assert any("through _emit" in f.message for f in findings)

    def test_pure_decision_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            def decide(backlog, limit):
                return "shed" if backlog >= limit else "admit"
            """,
        )
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L002"]) == []

    def test_adapter_may_touch_transport(self, tmp_path):
        write(
            tmp_path,
            "adapt_mod.py",
            """
            def relay(node, packet):
                node.send(packet)
            """,
        )
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L002"]) == []


class TestL003:
    def test_wall_clock_call_fires(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            def now_stamp():
                return time.time()
            """,
        )
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L003"])
        assert [f.rule for f in findings] == ["L003"]
        assert "time.time()" in findings[0].message

    def test_os_entropy_call_fires(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            def key():
                return secrets.token_bytes(16)
            """,
        )
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L003"])
        assert [f.rule for f in findings] == ["L003"]

    def test_blocking_io_builtin_fires(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            def dump(state):
                print(state)
            """,
        )
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L003"])
        assert [f.rule for f in findings] == ["L003"]
        assert "print()" in findings[0].message

    def test_module_level_mutable_state_fires(self, tmp_path):
        write(tmp_path, "pure_mod.py", "_CACHE = {}\n")
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L003"])
        assert [f.rule for f in findings] == ["L003"]
        assert "_CACHE" in findings[0].message

    def test_dunder_declarations_exempt(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            '__layer__ = "pure-core"\n__state_bounds__ = {}\n',
        )
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L003"]) == []

    def test_frozen_constants_clean(self, tmp_path):
        write(tmp_path, "pure_mod.py", "LIMIT = 4096\nNAMES = (1, 2)\n")
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L003"]) == []


class TestL004:
    def test_adapter_importing_hashlib_fires(self, tmp_path):
        write(
            tmp_path,
            "adapt_mod.py",
            """
            import hashlib

            def check(cookie, material):
                return cookie == hashlib.md5(material).digest()[:8]
            """,
        )
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L004"])
        assert findings and all(f.rule == "L004" for f in findings)
        assert any("imports hashlib" in f.message for f in findings)
        assert any("digests inline" in f.message for f in findings)

    def test_pure_core_hash_use_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pure_mod.py",
            """
            import hashlib

            def digest(material):
                return hashlib.md5(material).digest()
            """,
        )
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L004"]) == []


class TestL005:
    def test_stale_declaration_fires(self, tmp_path):
        write(tmp_path, "pure_mod.py", '__layer__ = "adapter"\n')
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L005"])
        assert [f.rule for f in findings] == ["L005"]
        assert "stale declaration" in findings[0].message

    def test_declaration_outside_manifest_fires(self, tmp_path):
        write(tmp_path, "stray_mod.py", '__layer__ = "pure-core"\n')
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L005"])
        assert [f.rule for f in findings] == ["L005"]
        assert "no manifest prefix" in findings[0].message

    def test_invalid_layer_value_fires(self, tmp_path):
        write(tmp_path, "pure_mod.py", '__layer__ = "kernel"\n')
        findings = analyze_layers([tmp_path], manifest=TOY, rule_ids=["L005"])
        assert [f.rule for f in findings] == ["L005"]
        assert "not one of" in findings[0].message

    def test_manifest_root_without_declaration_fires(self, tmp_path):
        write(tmp_path, "pure_mod/__init__.py", "x = 1\n")
        manifest = {"pure_mod": "pure-core"}
        findings = analyze_layers([tmp_path], manifest=manifest, rule_ids=["L005"])
        assert [f.rule for f in findings] == ["L005"]
        assert "manifest root" in findings[0].message

    def test_matching_declaration_clean(self, tmp_path):
        write(tmp_path, "pure_mod.py", '__layer__ = "pure-core"\n')
        assert analyze_layers([tmp_path], manifest=TOY, rule_ids=["L005"]) == []


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(LAYER_RULES) == {"L001", "L002", "L003", "L004", "L005", "L006"}
        for rule in LAYER_RULES.values():
            assert rule.family in ("layering", "layering-runtime")
            assert rule.severity == "error"
        table = layer_rule_table()
        for rule_id in LAYER_RULES:
            assert rule_id in table

    def test_layers_is_a_valid_value_set(self):
        assert set(TOY.values()) <= set(LAYERS)

    def test_unknown_rule_id_raises(self, tmp_path):
        import pytest

        with pytest.raises(KeyError):
            analyze_layers([tmp_path], rule_ids=["L999"])


class TestRepoIsClean:
    def test_repo_src_has_no_layer_findings(self):
        assert analyze_layers([REPO_SRC]) == []

    def test_repo_clean_through_cli(self):
        from repro.analysis.cli import main

        assert main(["--layers", "src"]) == 0


# -- seeded-mutation acceptance tests against repo sources --------------------


def mutate(tmp_path, relative: str, old: str, new: str) -> Path:
    """Copy one repo source file into tmp_path, preserving its
    ``src/repro/...`` layout so the default manifest applies, with
    ``old`` -> ``new``."""
    original = (REPO_SRC / relative).read_text(encoding="utf-8")
    mutated = original.replace(old, new)
    assert mutated != original, f"mutation anchor not found in {relative}"
    return write(tmp_path, str(Path("src") / relative), mutated)


class TestSeededMutations:
    def test_reimporting_netsim_into_core_fires_l001(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/core/ratelimit.py",
            "from collections import OrderedDict",
            "from collections import OrderedDict\nfrom repro.netsim import Link",
        )
        findings = analyze_layers([tmp_path], rule_ids=["L001"])
        assert findings, "a netsim import in the pure core must fire L001"
        assert all(f.rule == "L001" for f in findings)
        assert any("repro.netsim" in f.message for f in findings)

    def test_core_touching_transport_fires_l002(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/core/admission.py",
            "def fallback_policy(",
            "def notify_shed(node, packet):\n"
            "    node.send(packet)\n"
            "\n\n"
            "def fallback_policy(",
        )
        findings = analyze_layers([tmp_path], rule_ids=["L002"])
        assert [f.rule for f in findings] == ["L002"]
        assert "notify_shed" in findings[0].message

    def test_core_module_state_fires_l003(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/core/local_policy.py",
            "PROBE_RETRY_INTERVAL = 0.1",
            "PROBE_RETRY_INTERVAL = 0.1\n_PROBE_LOG = []",
        )
        findings = analyze_layers([tmp_path], rule_ids=["L003"])
        assert [f.rule for f in findings] == ["L003"]
        assert "_PROBE_LOG" in findings[0].message

    def test_cookie_verify_in_adapter_fires_l004(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/pipeline.py",
            "from .cookie import CookieFactory, random_key",
            "import hashlib\n"
            "from .cookie import CookieFactory, random_key",
        )
        findings = analyze_layers([tmp_path], rule_ids=["L004"])
        assert findings, "hashlib in the adapter must fire L004"
        assert all(f.rule == "L004" for f in findings)
        assert any("imports hashlib" in f.message for f in findings)

    def test_flipping_core_declaration_fires_l005(self, tmp_path):
        mutate(
            tmp_path,
            "repro/guard/core/__init__.py",
            '__layer__ = "pure-core"',
            '__layer__ = "adapter"',
        )
        findings = analyze_layers([tmp_path], rule_ids=["L005"])
        assert [f.rule for f in findings] == ["L005"]
        assert "stale declaration" in findings[0].message
