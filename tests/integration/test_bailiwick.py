"""Bailiwick enforcement: a server cannot poison names above its zone.

Also checks the compatibility property the guard depends on: every record
the guard fabricates lives *inside* the protected zone's bailiwick, so the
hardening never rejects the cookie namespace.
"""

from ipaddress import IPv4Address

import pytest

from repro.dns import AuthoritativeServer, Zone
from repro.dnswire import (
    Name,
    RRType,
    a_record,
    make_response,
    ns_record,
    soa_record,
)
from tests.dns.conftest import FOO_IP, Hierarchy


class TestBailiwick:
    def _poison_foo_server(self, h, extra_records):
        """Make foo.com's server append poison records to every response."""
        original = h.foo.respond

        def poisoned(query):
            response = original(query)
            for section, rr in extra_records:
                getattr(response, section).append(rr)
            return response

        h.foo.respond = poisoned

    def test_out_of_bailiwick_answer_not_cached(self):
        h = Hierarchy()
        poison = a_record("www.bank.example.", "6.6.6.6", ttl=3600)
        self._poison_foo_server(h, [("answers", poison)])
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=10.0)
        assert results[0].ok
        cached = h.lrs.cache.get(Name.from_text("www.bank.example."), RRType.A, h.sim.now)
        assert cached is None

    def test_out_of_bailiwick_delegation_not_cached(self):
        h = Hierarchy()
        # foo.com's server claims to delegate "com" (its own parent!)
        poison_ns = ns_record("com.", "evil.foo.com.", ttl=3600)
        poison_a = a_record("evil.foo.com.", "6.6.6.6", ttl=3600)
        self._poison_foo_server(h, [("authorities", poison_ns), ("additionals", poison_a)])
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=10.0)
        assert results[0].ok
        # the legitimate com delegation (from the root) must survive
        cached_ns = h.lrs.cache.get(Name.from_text("com."), RRType.NS, h.sim.now)
        assert cached_ns is not None
        targets = {rr.rdata.target for rr in cached_ns}
        assert Name.from_text("evil.foo.com.") not in targets

    def test_in_bailiwick_glue_still_flows(self):
        """The com server's glue for ns1.foo.com is in bailiwick: accepted."""
        h = Hierarchy()
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=10.0)
        assert results[0].ok
        glue = h.lrs.cache.get(Name.from_text("ns1.foo.com."), RRType.A, h.sim.now)
        assert glue is not None
        assert glue[0].rdata.address == FOO_IP

    def test_root_bailiwick_covers_everything(self):
        """Root glue for out-of-zone-looking names (gtld-servers.net) works."""
        h = Hierarchy()
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=10.0)
        assert results[0].ok
        glue = h.lrs.cache.get(Name.from_text("a.gtld-servers.net."), RRType.A, h.sim.now)
        assert glue is not None

    def test_guard_namespace_is_always_in_bailiwick(self):
        """The fabricated cookie records sit inside the protected origin,
        so bailiwick-checking resolvers accept them (transparency holds)."""
        from repro.experiments.hierarchy import GuardedHierarchy, WWW_IP

        h = GuardedHierarchy(guard_root=True, guard_foo=True)
        result = h.resolve("www.foo.com")
        assert result.ok
        assert result.addresses() == [WWW_IP]
        assert h.fabricated_cache_entries() > 0  # accepted into the cache
