"""Failure-injection tests: the guard under loss, overload and edge cases."""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.dnswire import Name, make_query
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


class TestPacketLoss:
    def test_modified_scheme_survives_lossy_uplink(self):
        bed = GuardTestbed(seed=3, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", via_local_guard=True)
        # make the client<->local-guard uplink lossy both ways
        client.links[0].loss = 0.2
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.02)
        lrs.start()
        bed.run(1.0)
        lrs.stop()
        # each loss stalls the loop a full 20 ms timeout, so throughput is
        # dominated by the loss rate; what matters is sustained progress
        assert lrs.stats.completed > 60
        assert lrs.stats.timeouts > 0

    def test_lost_cookie_grant_retried(self):
        bed = GuardTestbed(seed=9, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", via_local_guard=True)
        lg_node = [n for n in (client.links[0].other(client),)][0]
        # drop everything between the local guard and the remote guard for
        # the first 50 ms: the first grant is lost
        outer = lg_node.links[1]
        outer.loss = 1.0
        bed.sim.schedule(0.05, lambda: setattr(outer, "loss", 0.0))
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.02)
        lrs.start()
        bed.run(2.5)
        lrs.stop()
        # after the blackout lifts, probe retransmission recovers the flow
        assert lrs.stats.completed > 1000

    def test_ns_name_scheme_survives_loss(self):
        bed = GuardTestbed(seed=4, ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        client.links[0].loss = 0.15
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.02)
        lrs.start()
        bed.run(1.0)
        lrs.stop()
        assert lrs.stats.completed > 80


class TestGuardOverload:
    def test_saturated_guard_drops_rather_than_queues(self):
        from repro.attack import SpoofingAttacker

        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        attacker_node = bed.add_client("attacker")
        attacker = SpoofingAttacker(
            attacker_node, ANS_ADDRESS, rate=600_000, carry_invalid_cookie=True
        )
        attacker.start()
        bed.run(0.3)
        attacker.stop()
        # way past guard capacity: the CPU queue must shed load
        assert bed.guard.overload_drops > 0
        assert bed.guard_node.cpu.backlog < 0.1

    def test_pending_table_expires_entries(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        # kill the ANS so restored queries never come back
        bed.ans_node.udp._sockets.clear()
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.01)
        lrs.start()
        bed.run(0.1)
        lrs.stop()
        assert bed.guard.pending_exchanges > 0
        bed.run(5.0)  # sweeps run every second; entries expire after 2 s
        assert bed.guard.pending_exchanges == 0


class TestEdgeCases:
    def test_oversized_qname_falls_back_to_tcp(self):
        """A name too long for the cookie label gets a TC redirect instead."""
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        responses = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: responses.append(p))
        long_name = Name([b"x" * 60, b"y" * 60])
        sock.send(make_query(long_name, msg_id=5), ANS_ADDRESS, 53)
        bed.run(0.1)
        assert responses and responses[0].header.tc
        assert bed.guard.truncations_sent == 1

    def test_non_dns_udp_traffic_forwarded_untouched(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        got = []
        bed.ans_node.udp.bind(9999, lambda p, s, sp, d: got.append(p))
        client.udp.bind_ephemeral(lambda *a: None).send(b"not dns", ANS_ADDRESS, 9999)
        bed.run(0.1)
        assert got == [b"not dns"]

    def test_garbage_udp_to_port_53_dropped_cheaply(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        drops_before = bed.guard.invalid_drops
        client.udp.bind_ephemeral(lambda *a: None).send(b"\x00garbage", ANS_ADDRESS, 53)
        bed.run(0.1)
        assert bed.guard.invalid_drops == drops_before + 1
        assert bed.ans.requests_served == 0

    def test_response_shaped_packet_from_client_side_dropped(self):
        """A response (QR=1) aimed at the ANS is not a query: dropped."""
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        fake = make_query("www.foo.com", msg_id=1)
        fake.header.qr = True
        client.udp.bind_ephemeral(lambda *a: None).send(fake, ANS_ADDRESS, 53)
        bed.run(0.1)
        assert bed.ans.requests_served == 0

    def test_guard_disable_reenable_midrun(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.02)
        lrs.start()
        bed.run(0.1)
        completed_guarded = lrs.stats.completed
        bed.guard.enabled = False
        bed.run(0.1)
        bed.guard.enabled = True
        bed.run(0.2)
        lrs.stop()
        # traffic kept flowing across both transitions
        assert lrs.stats.completed > completed_guarded + 100

    def test_two_clients_get_distinct_cookies(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        c1 = bed.add_client("lrs1")
        c2 = bed.add_client("lrs2")
        lrs1 = LrsSimulator(c1, ANS_ADDRESS, workload="referral")
        lrs2 = LrsSimulator(c2, ANS_ADDRESS, workload="referral")
        lrs1.start()
        lrs2.start()
        bed.run(0.05)
        lrs1.stop()
        lrs2.stop()
        assert lrs1._cookie_ns_target is not None
        assert lrs2._cookie_ns_target is not None
        assert lrs1._cookie_ns_target != lrs2._cookie_ns_target


class TestFaultPlanScenarios:
    """The same failure modes, scripted through repro.faults.FaultPlan."""

    def test_blackout_scripted_with_fault_plan(self):
        from repro.faults import FaultPlan, LinkDown

        bed = GuardTestbed(seed=6, ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        plan = FaultPlan()
        plan.add(0.1, LinkDown(client.links[0], duration=0.1))
        plan.schedule(bed.sim)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.02)
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        # progress on both sides of the outage, and losses only during it
        assert lrs.stats.timeouts > 0
        assert lrs.stats.completed > 200

    def test_tcp_scheme_under_sustained_bursty_loss(self):
        from repro.dns import TcpLoadClient
        from repro.faults import BurstyLoss, FaultPlan

        bed = GuardTestbed(
            seed=12, ans="simulator", ans_mode="answer", guard_policy="tcp"
        )
        client = bed.add_client("tcpload")
        plan = FaultPlan()
        plan.add(
            0.1,
            BurstyLoss(
                client.links[0], duration=0.6, p_good_to_bad=0.05, p_bad_to_good=0.3
            ),
        )
        plan.schedule(bed.sim)
        load = TcpLoadClient(client, ANS_ADDRESS, concurrency=4)
        load.start()
        bed.run(1.0)
        load.stop()
        bed.run(0.5)
        # retransmission keeps the stream alive through the bursts...
        assert load.stats.completed > 100
        # ...and no legitimate handshake was ever rejected as forged
        assert bed.guard_node.tcp.cookie_failures == 0

    def test_guard_crash_mid_exchange_recovers(self):
        from repro.faults import FaultPlan, GuardCrash

        bed = GuardTestbed(seed=13, ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        plan = FaultPlan()
        plan.add(0.15, GuardCrash(bed.guard, downtime=0.05, rotate_key=True))
        plan.schedule(bed.sim)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.02)
        lrs.start()
        bed.run(0.6)
        lrs.stop()
        assert bed.guard.crashes == 1
        assert not bed.guard.down
        # pre-crash cookies verified under the rotated key: no false rejects
        assert bed.guard.invalid_drops == 0
        # service resumed after the restart
        assert lrs.stats.completed > 200
