"""Off-path attacker resistance of the recursive resolver.

Not a paper experiment per se, but a property the substrate must have for
the testbed to be meaningful: spoofed *responses* (cache poisoning) are
rejected unless the attacker guesses the message ID, ephemeral port and
queried server simultaneously.
"""

from ipaddress import IPv4Address

import pytest

from repro.dnswire import Header, Message, Question, RRClass, RRType, a_record, Name
from repro.netsim import DnsPayload, Link, Node, Packet, UdpDatagram
from tests.dns.conftest import FOO_IP, Hierarchy, ROOT_IP


def forged_response(msg_id: int, qname: str, address: str) -> Message:
    msg = Message(header=Header(msg_id=msg_id, qr=True, aa=True))
    name = Name.from_text(qname)
    msg.questions.append(Question(name, RRType.A, RRClass.IN))
    msg.answers.append(a_record(name, address, ttl=3600))
    return msg


class TestPoisoningResistance:
    def _attacker(self, h):
        node = Node(h.sim, "offpath")
        node.add_address("10.66.0.66")
        link = Link(h.sim, node, h.router, delay=0.00001)
        node.set_default_route(link)
        h.router.add_route("10.66.0.66/32", node.links[0])
        return node

    def test_blind_spoofed_responses_rejected(self):
        """An off-path attacker sprays forged answers at the resolver while
        it resolves; wrong msg-id/port/source combinations never land."""
        h = Hierarchy(seed=2)
        attacker = self._attacker(h)
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)

        # spray forged responses claiming to come from the foo server, at
        # guessed ephemeral ports and message IDs
        for port in range(49152, 49162):
            for msg_id in range(0, 2000, 97):
                packet = Packet(
                    src=FOO_IP,
                    dst=IPv4Address("10.0.0.53"),
                    segment=UdpDatagram(
                        53, port,
                        DnsPayload(forged_response(msg_id, "www.foo.com", "6.6.6.6")),
                    ),
                )
                attacker.send(packet)
        h.sim.run(until=10.0)
        assert results and results[0].ok
        assert results[0].addresses() == [IPv4Address("198.51.100.80")]
        # and nothing poisoned the cache
        cached = h.lrs.cache.get(Name.from_text("www.foo.com"), RRType.A, h.sim.now)
        assert cached is not None
        assert all(rr.rdata.address != IPv4Address("6.6.6.6") for rr in cached)

    def test_wrong_source_rejected_even_with_right_id(self):
        """Responses must come from the queried server's address."""
        h = Hierarchy(seed=3)
        attacker = self._attacker(h)
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)

        # forge from a *wrong* server address with every plausible msg id
        for port in range(49152, 49156):
            for msg_id in range(0, 65536, 256):
                packet = Packet(
                    src=IPv4Address("10.66.0.66"),
                    dst=IPv4Address("10.0.0.53"),
                    segment=UdpDatagram(
                        53, port,
                        DnsPayload(forged_response(msg_id, "www.foo.com", "6.6.6.6")),
                    ),
                )
                attacker.send(packet)
        h.sim.run(until=10.0)
        assert results and results[0].ok
        assert results[0].addresses() == [IPv4Address("198.51.100.80")]

    def test_unsolicited_responses_ignored(self):
        """Responses with no outstanding query do nothing at all."""
        h = Hierarchy()
        attacker = self._attacker(h)
        for msg_id in range(100):
            packet = Packet(
                src=ROOT_IP,
                dst=IPv4Address("10.0.0.53"),
                segment=UdpDatagram(
                    53, 49152,
                    DnsPayload(forged_response(msg_id, "victim.example", "6.6.6.6")),
                ),
            )
            attacker.send(packet)
        h.sim.run(until=1.0)
        assert h.lrs.cache.get(Name.from_text("victim.example"), RRType.A, h.sim.now) is None

    def test_message_ids_not_sequential_from_zero(self):
        """The resolver's IDs start from a random point (harder to guess)."""
        ids = set()
        for seed in range(5):
            h = Hierarchy(seed=seed)
            ids.add(h.lrs._next_msg_id)
        assert len(ids) > 1
