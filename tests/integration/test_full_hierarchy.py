"""Full-fidelity tests: an *unmodified* recursive resolver against guarded ANSs.

These exercise the paper's transparency claim — the DNS-based schemes need
no changes on the LRS side.  Our LRS here is the real iterative resolver,
not a load generator: it follows the fabricated referrals, re-resolves the
cookie NS names, queries the COOKIE2 addresses, and never knows a guard was
involved.
"""

from ipaddress import IPv4Address

import pytest

from repro.dnswire import Name, RRType
from repro.experiments.hierarchy import (
    FOO_IP,
    GuardedHierarchy as LibraryHierarchy,
    ROOT_IP,
    WWW_IP,
)
from repro.netsim import Link, Node


class GuardedHierarchy(LibraryHierarchy):
    """Test adapter: keep the old resolve() signature used below."""

    def resolve(self, name, qtype=RRType.A, run_for=30.0):
        return super().resolve(str(name), qtype, run_for)


class TestGuardedRoot:
    def test_resolution_through_guarded_root(self):
        h = GuardedHierarchy(guard_root=True)
        result = h.resolve("www.foo.com")
        assert result.ok
        assert result.addresses() == [WWW_IP]
        # the guard fabricated a referral and validated a cookie query
        assert h.root_guard.referrals_fabricated == 1
        assert h.root_guard.valid_cookies == 1
        # the root itself saw exactly one (validated, restored) query
        assert h.root.requests_served == 1

    def test_root_never_sees_unvalidated_queries(self):
        h = GuardedHierarchy(guard_root=True)
        h.resolve("www.foo.com")
        assert h.root.requests_served == h.root_guard.valid_cookies

    def test_second_resolution_uses_cached_cookie_delegation(self):
        h = GuardedHierarchy(guard_root=True)
        h.resolve("www.foo.com")
        root_served = h.root.requests_served
        result = h.resolve("mail.foo.com")
        assert result.ok
        # com's delegation (via the fabricated NS) is cached; the root and
        # its guard are not consulted again
        assert h.root.requests_served == root_served

    def test_latency_overhead_is_one_extra_rtt(self):
        """First access pays 2 RTTs at the guarded root instead of 1."""
        plain = GuardedHierarchy(guard_root=False)
        guarded = GuardedHierarchy(guard_root=True)
        lat_plain = plain.resolve("www.foo.com").latency
        lat_guarded = guarded.resolve("www.foo.com").latency
        rtt = 2 * 2 * 0.0002  # lrs->hub->server, both ways
        assert lat_guarded - lat_plain == pytest.approx(rtt, rel=0.35)

    def test_spoofed_flood_blocked_while_lrs_resolves(self):
        from repro.dnswire import make_query

        h = GuardedHierarchy(guard_root=True)
        attacker = Node(h.sim, "attacker")
        attacker.add_address("10.66.0.1")
        link = Link(h.sim, attacker, h.hub, delay=0.0001)
        attacker.set_default_route(link)
        h.hub.add_route("10.66.0.1/32", link)
        sock = attacker.udp.bind_ephemeral(lambda *a: None)
        for i in range(300):
            sock.send(
                make_query(f"victim{i}.example", msg_id=i),
                ROOT_IP,
                53,
                src=IPv4Address(f"172.31.{i % 200}.{i % 250 + 1}"),
            )
        result = h.resolve("www.foo.com")
        assert result.ok
        assert h.root.requests_served == 1  # only the LRS's validated query


class TestGuardedLeaf:
    def test_resolution_through_guarded_foo(self):
        h = GuardedHierarchy(guard_root=False, guard_foo=True)
        result = h.resolve("www.foo.com")
        assert result.ok
        assert result.addresses() == [WWW_IP]
        assert h.foo_guard.referrals_fabricated == 1
        assert h.foo_guard.valid_cookies >= 1

    def test_cookie2_query_answered_from_guard_cache(self):
        h = GuardedHierarchy(guard_root=False, guard_foo=True)
        h.resolve("www.foo.com")
        # messages 1-6 hit the ANS once (the restored query); message 7 was
        # served from the guard's answer cache
        assert h.foo.requests_served == 1

    def test_both_guards_at_once(self):
        h = GuardedHierarchy(guard_root=True, guard_foo=True)
        result = h.resolve("www.foo.com")
        assert result.ok
        assert result.addresses() == [WWW_IP]
        assert h.root_guard.valid_cookies == 1
        assert h.foo_guard.valid_cookies >= 1

    def test_sibling_name_reuses_foo_delegation_not_cookie(self):
        h = GuardedHierarchy(guard_root=False, guard_foo=True)
        h.resolve("www.foo.com")
        result = h.resolve("mail.foo.com")
        assert result.ok
        # a new name means a new fabricated NS (per-name cookie storage --
        # the inefficiency §III.B.3 points out for non-referral answers)
        assert h.foo_guard.referrals_fabricated == 2


class TestKeyRotationLive:
    def test_rotation_does_not_break_cached_cookies(self):
        h = GuardedHierarchy(guard_root=True)
        h.resolve("www.foo.com")
        h.root_guard.cookies.rotate()
        # expire the cached com A so the LRS must re-consult the root via
        # its cached (old-generation) cookie name
        h.lrs.cache.evict(Name.from_text("com"), RRType.NS)
        result = h.resolve("mail.foo.com")
        assert result.ok

    def test_double_rotation_forces_fresh_exchange(self):
        h = GuardedHierarchy(guard_root=True)
        h.resolve("www.foo.com")
        h.root_guard.cookies.rotate()
        h.root_guard.cookies.rotate()
        h.lrs.cache.flush()
        result = h.resolve("mail.foo.com")
        assert result.ok
        assert h.root_guard.referrals_fabricated == 2
