"""Verify the paper's §IV.D packet-count arithmetic on real wire traffic.

"The modified DNS scheme and the NS name scheme need to compute the cookie
only twice and transfer 6 packets to service one DNS request [cache miss]
... In this cache hit case [the guard] computes the cookie once and
transfers just 4 packets ... the fabricated NS name/ip scheme needs to
compute the cookie three times and transfer 8 packets ... the TCP-based
scheme needs to ... transfer 10 to 12 packets."
"""

import pytest

from repro.dns import LrsSimulator, TcpLoadClient
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.netsim import PacketTracer


def udp_packets_per_request(bed, lrs, *, warm: bool, duration: float = 0.2) -> float:
    """Average UDP packets crossing the guard per completed request."""
    if warm:
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        bed.run(0.05)  # drain in-flight work before tracing
    tracer = PacketTracer(bed.guard_node)
    completed_before = lrs.stats.completed
    lrs.start()
    bed.run(duration)
    lrs.stop()
    bed.run(0.05)
    tracer.detach()
    completed = lrs.stats.completed - completed_before
    assert completed > 50, "not enough interactions to average over"
    return len(tracer.packets(protocol="udp")) / completed


class TestPacketCounts:
    def test_ns_name_cache_miss_is_six_packets(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", cache_cookies=False)
        # messages 1-6: four on the client side, two on the ANS side
        assert udp_packets_per_request(bed, lrs, warm=False) == pytest.approx(6, abs=0.2)

    def test_ns_name_cache_hit_is_four_packets(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", cache_cookies=True)
        # messages 3/4/5/6 only: one guard round trip per request
        assert udp_packets_per_request(bed, lrs, warm=True) == pytest.approx(4, abs=0.2)

    def test_fabricated_cache_miss_is_eight_packets(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="nonreferral", cache_cookies=False)
        # messages 1-7 and 10 (8/9 served from the guard's answer cache)
        assert udp_packets_per_request(bed, lrs, warm=False) == pytest.approx(8, abs=0.2)

    def test_fabricated_cache_hit_is_four_packets(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="nonreferral", cache_cookies=True)
        assert udp_packets_per_request(bed, lrs, warm=True) == pytest.approx(4, abs=0.2)

    def test_modified_cache_miss_is_six_packets(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", via_local_guard=True)
        client.local_guard.cache_cookies = False
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
        # cookie request + grant + stamped query + strip-forward + response x2
        assert udp_packets_per_request(bed, lrs, warm=False) == pytest.approx(6, abs=0.2)

    def test_modified_cache_hit_is_four_packets(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", via_local_guard=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
        assert udp_packets_per_request(bed, lrs, warm=True) == pytest.approx(4, abs=0.2)

    def test_tcp_scheme_is_ten_to_thirteen_packets(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs")
        tcp = TcpLoadClient(client, ANS_ADDRESS, concurrency=1)
        tracer = PacketTracer(bed.guard_node)
        tcp.start()
        bed.run(0.2)
        tcp.stop()
        bed.run(0.1)
        tracer.detach()
        assert tcp.stats.completed > 20
        per_request_tcp = len(tracer.packets(protocol="tcp")) / tcp.stats.completed
        # the paper counts 10-12 TCP segments per proxied request
        assert 9.5 <= per_request_tcp <= 13
        # plus the two UDP packets of the guard<->ANS leg
        per_request_udp = len(tracer.packets(protocol="udp")) / tcp.stats.completed
        assert per_request_udp == pytest.approx(2, abs=0.3)


class TestTracerMechanics:
    def test_trace_dump_readable(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", cache_cookies=False)
        tracer = PacketTracer(bed.guard_node)
        lrs.start()
        bed.run(0.01)
        lrs.stop()
        dump = tracer.dump()
        assert "DNS query" in dump
        assert "DNS response" in dump

    def test_tracer_detach_stops_capture(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral")
        tracer = PacketTracer(bed.guard_node)
        lrs.start()
        bed.run(0.01)
        tracer.detach()
        count = len(tracer)
        bed.run(0.05)
        lrs.stop()
        assert len(tracer) == count

    def test_filter_fn(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        tracer = PacketTracer(
            bed.guard_node, filter_fn=lambda packet: packet.dst == ANS_ADDRESS
        )
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", cache_cookies=False)
        lrs.start()
        bed.run(0.01)
        lrs.stop()
        bed.run(0.05)
        assert tracer.records
        assert all(r.dst == ANS_ADDRESS for r in tracer.records)

    def test_between_helper(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        tracer = PacketTracer(bed.guard_node)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", cache_cookies=False)
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        conversation = tracer.between(client.address, ANS_ADDRESS)
        assert conversation
        assert tracer.total_bytes() >= sum(r.size for r in conversation)
