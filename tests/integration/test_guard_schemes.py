"""End-to-end tests: each guard scheme carries real traffic and blocks spoofs."""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.dnswire import Message, extract_cookie, make_query
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


class TestModifiedDnsScheme:
    def build(self, **kwargs):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", **kwargs)
        client = bed.add_client("lrs1", via_local_guard=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
        return bed, client, lrs

    def test_queries_complete_through_cookie_exchange(self):
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        assert lrs.stats.completed > 100
        assert lrs.stats.timeouts <= 1  # only possibly the very first exchange
        assert client.local_guard.cookies_cached == 1
        assert bed.guard.cookies_granted == 1
        assert bed.guard.valid_cookies >= lrs.stats.completed - 1

    def test_ans_never_sees_cookie_extension(self):
        bed, client, lrs = self.build()
        seen = []
        original = bed.ans.respond

        def spy(query):
            seen.append(extract_cookie(query))
            return original(query)

        bed.ans.respond = spy
        lrs.start()
        bed.run(0.1)
        lrs.stop()
        assert seen and all(cookie is None for cookie in seen)

    def test_first_query_needs_2rtt_then_1rtt(self):
        bed, client, lrs = self.build()
        lrs.record_latencies = True
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        first, rest = lrs.latencies[0], lrs.latencies[1:]
        assert first == pytest.approx(2 * 0.0004, rel=0.3)  # cookie fetch + query
        assert rest
        assert all(lat == pytest.approx(0.0004, rel=0.3) for lat in rest)

    def test_spoofed_flood_never_reaches_ans(self):
        bed, client, lrs = self.build()
        attacker = bed.add_client("attacker")
        sock = attacker.udp.bind_ephemeral(lambda *a: None)
        lrs.start()
        bed.run(0.05)
        served_before = bed.ans.requests_served
        for i in range(500):
            sock.send(
                make_query("www.foo.com", msg_id=i),
                ANS_ADDRESS,
                53,
                src=IPv4Address(f"172.16.{i % 200}.{i % 250 + 1}"),
            )
        bed.run(0.2)
        lrs.stop()
        # the attacker's plain queries only earned fabricated referrals;
        # every request the ANS served in the window came from the real LRS
        legit_in_window = lrs.stats.completed
        assert bed.ans.requests_served - served_before <= legit_in_window + 2
        assert bed.guard.referrals_fabricated >= 400

    def test_forged_cookie_dropped(self):
        bed, client, lrs = self.build()
        attacker = bed.add_client("attacker2")
        sock = attacker.udp.bind_ephemeral(lambda *a: None)
        from repro.dnswire import attach_cookie

        for i in range(50):
            forged = attach_cookie(make_query("www.foo.com", msg_id=i), bytes(range(16)))
            sock.send(forged, ANS_ADDRESS, 53, src=IPv4Address("10.0.0.10"))  # lrs1's IP
        served_before = bed.ans.requests_served
        bed.run(0.1)
        assert bed.guard.invalid_drops >= 50
        assert bed.ans.requests_served == served_before


class TestNsNameScheme:
    def build(self, cache_cookies=True):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs1")
        lrs = LrsSimulator(
            client, ANS_ADDRESS, workload="referral", cache_cookies=cache_cookies
        )
        return bed, client, lrs

    def test_referral_workload_completes(self):
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        assert lrs.stats.completed > 100
        assert lrs.stats.timeouts == 0
        assert bed.guard.responses_transformed >= lrs.stats.completed

    def test_cache_miss_is_six_packet_exchange(self):
        """First access: messages 1-6 — two guard round trips."""
        bed, client, lrs = self.build()
        lrs.record_latencies = True
        lrs.start()
        bed.run(0.02)
        lrs.stop()
        assert lrs.latencies[0] == pytest.approx(2 * 0.0004, rel=0.3)

    def test_cache_hit_is_one_round_trip(self):
        bed, client, lrs = self.build()
        lrs.record_latencies = True
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        later = lrs.latencies[5:]
        assert later and all(lat == pytest.approx(0.0004, rel=0.3) for lat in later)

    def test_cookie_cache_disabled_repeats_full_exchange(self):
        bed, client, lrs = self.build(cache_cookies=False)
        lrs.record_latencies = True
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        assert all(lat == pytest.approx(2 * 0.0004, rel=0.3) for lat in lrs.latencies)
        # one fabricated referral per iteration
        assert bed.guard.referrals_fabricated >= lrs.stats.completed

    def test_spoofed_cookie_labels_dropped(self):
        bed, client, lrs = self.build()
        attacker = bed.add_client("attacker")
        sock = attacker.udp.bind_ephemeral(lambda *a: None)
        from repro.dnswire import Name

        for i in range(100):
            bogus = Name([b"PRdeadbeef" + b"www.foo.com"])
            sock.send(
                make_query(bogus, msg_id=i),
                ANS_ADDRESS,
                53,
                src=IPv4Address(f"172.16.0.{i % 250 + 1}"),
            )
        served_before = bed.ans.requests_served
        bed.run(0.1)
        assert bed.guard.invalid_drops >= 100
        assert bed.ans.requests_served == served_before


class TestFabricatedNsIpScheme:
    def build(self, cache_cookies=True):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs1")
        lrs = LrsSimulator(
            client, ANS_ADDRESS, workload="nonreferral", cache_cookies=cache_cookies
        )
        return bed, client, lrs

    def test_nonreferral_workload_completes(self):
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        assert lrs.stats.completed > 100
        assert lrs.stats.timeouts == 0

    def test_cookie2_address_is_in_guard_subnet(self):
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        assert lrs._cookie2_address is not None
        from ipaddress import IPv4Network

        assert lrs._cookie2_address in IPv4Network("198.18.0.0/24")

    def test_cache_miss_three_round_trips_hit_one(self):
        bed, client, lrs = self.build()
        lrs.record_latencies = True
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        assert lrs.latencies[0] == pytest.approx(3 * 0.0004, rel=0.3)
        later = lrs.latencies[5:]
        assert later and all(lat == pytest.approx(0.0004, rel=0.3) for lat in later)

    def test_wrong_cookie2_address_dropped(self):
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        correct = lrs._cookie2_address
        # find a wrong address in the subnet and query it from the same source
        wrong = IPv4Address(int(correct) + 1 if int(correct) % 2 == 0 else int(correct) - 1)
        sock = client.udp.bind_ephemeral(lambda *a: None)
        drops_before = bed.guard.invalid_drops
        sock.send(make_query("www.foo.com", msg_id=999), wrong, 53)
        bed.run(0.05)
        assert bed.guard.invalid_drops == drops_before + 1

    def test_guessing_succeeds_at_one_over_range(self):
        """§III.G: spraying the COOKIE2 range succeeds for ~1/R_y of packets."""
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.02)
        lrs.stop()
        bed.run(0.02)  # let the last in-flight interaction settle
        attacker = bed.add_client("attacker")
        sock = attacker.udp.bind_ephemeral(lambda *a: None)
        spoofed_src = IPv4Address("10.0.0.10")  # lrs1's address
        valid_before = bed.guard.valid_cookies
        for y in range(254):
            target = IPv4Address(int(IPv4Address("198.18.0.0")) + 1 + y)
            sock.send(make_query("www.foo.com", msg_id=y), target, 53, src=spoofed_src)
        bed.run(0.1)
        # exactly one of the 254 sprayed addresses carries the right cookie
        assert bed.guard.valid_cookies - valid_before == 1


class TestTcpScheme:
    def build(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs1")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.05)
        return bed, client, lrs

    def test_truncation_redirects_to_tcp_and_completes(self):
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        assert lrs.stats.completed > 50
        assert bed.guard.truncations_sent >= lrs.stats.completed
        assert bed.guard.tcp_proxy.requests_proxied >= lrs.stats.completed

    def test_proxy_converts_to_udp_for_ans(self):
        bed, client, lrs = self.build()
        lrs.start()
        bed.run(0.1)
        lrs.stop()
        assert bed.ans.requests_served >= lrs.stats.completed

    def test_spoofed_syn_flood_leaves_no_state(self):
        from repro.netsim import Packet, TcpFlags, TcpSegment

        bed, client, lrs = self.build()
        attacker = bed.add_client("attacker")
        for i in range(300):
            syn = TcpSegment(sport=10000 + i, dport=53, seq=i, ack=0, flags=TcpFlags.SYN)
            attacker.send(
                Packet(
                    src=IPv4Address(f"172.20.{i % 200}.{i % 250 + 1}"),
                    dst=ANS_ADDRESS,
                    segment=syn,
                )
            )
        bed.run(0.2)
        assert bed.guard_node.tcp.open_connections == 0

    def test_connection_reaper_removes_stragglers(self):
        bed, client, lrs = self.build()

        # open a connection and never send anything
        client.tcp.connect(ANS_ADDRESS, 53)
        bed.run(3.0)  # past the reap floor
        assert bed.guard.tcp_proxy.connections_reaped >= 1
        assert bed.guard_node.tcp.open_connections == 0

    def test_connection_rate_limited_per_client(self):
        bed, client, lrs = self.build()
        bed.guard.tcp_proxy.new_connection_rate = 5.0
        bed.guard.tcp_proxy.new_connection_burst = 5.0
        for _ in range(50):
            client.tcp.connect(ANS_ADDRESS, 53)
        bed.run(0.5)
        assert bed.guard.tcp_proxy.connections_rate_limited > 0
