"""Hybrid fluid/packet mode: cross-validation against both references.

The fidelity contract (DESIGN.md "Sharding & determinism model"): on the
calibration scenario — 20K req/s bulk legitimate fluid + 60K req/s
spoofed flood, protection on — the hybrid run's guard/ANS CPU and served
rate stay within stated tolerance of (a) the FluidModel closed forms and
(b) a pure packet-level run of the same scenario.  Tolerances: ±0.05
absolute CPU utilisation against the closed forms (the fluids discretise
at DEFAULT_TICK), ±0.08 against the packet run (the packet path adds
per-packet queueing the fluid integrates away), ±5% relative on served
rate, ±0.05 absolute on foreground availability.
"""

import pytest

from repro.attack import SpoofingAttacker
from repro.dns import LrsSimulator
from repro.experiments.fluid import FluidModel
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.farm.hybrid import PER_CLIENT_RATE, HybridPoint, run_hybrid_point

LEGIT_RATE = 20_000.0
ATTACK_RATE = 60_000.0


@pytest.fixture(scope="module")
def model():
    return FluidModel()


@pytest.fixture(scope="module")
def hybrid(model):
    return run_hybrid_point(
        ATTACK_RATE,
        True,
        seed=0,
        legit_rate=LEGIT_RATE,
        warmup=0.1,
        duration=0.25,
        model=model,
    )


def _packet_reference(seed=0, warmup=0.1, duration=0.25):
    """The same calibration scenario, every client packet-level."""
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
    bulk_node = bed.add_client("bulk", via_local_guard=True)
    bulk = LrsSimulator(
        bulk_node,
        ANS_ADDRESS,
        workload="plain",
        concurrency=64,
        target_rate=LEGIT_RATE,
    )
    fg_node = bed.add_client("fg", via_local_guard=True)
    foreground = LrsSimulator(
        fg_node, ANS_ADDRESS, workload="plain", concurrency=8, target_rate=500.0
    )
    attacker = SpoofingAttacker(
        bed.add_client("attacker"), ANS_ADDRESS, rate=ATTACK_RATE,
        carry_invalid_cookie=True,
    )
    bulk.start()
    foreground.start()
    attacker.start()
    bed.run(warmup)
    bulk.stats.begin_window(bed.sim.now)
    foreground.stats.begin_window(bed.sim.now)
    guard_busy0 = bed.guard_node.cpu.completed_busy_seconds()
    t0 = bed.sim.now
    bed.run(duration)
    stats = foreground.stats
    return {
        "bulk_rate": bulk.stats.throughput(bed.sim.now),
        "guard_cpu": bed.guard_node.cpu.utilization(guard_busy0, t0),
        "fg_availability": (
            stats.completed / (stats.completed + stats.timeouts)
            if stats.completed + stats.timeouts
            else 0.0
        ),
        "events": bed.sim.events_processed,
    }


class TestAgainstClosedForms:
    def test_guard_cpu(self, hybrid, model):
        expected = model.hybrid_guard_cpu(LEGIT_RATE, ATTACK_RATE, protection=True)
        assert hybrid.guard_cpu == pytest.approx(expected, abs=0.05)

    def test_ans_cpu(self, hybrid, model):
        expected = model.hybrid_ans_cpu(
            hybrid.fluid_served_rate, ATTACK_RATE, protection=True
        )
        assert hybrid.ans_cpu == pytest.approx(expected, abs=0.05)

    def test_served_rate(self, hybrid, model):
        expected = model.hybrid_served_rate(LEGIT_RATE, ATTACK_RATE, protection=True)
        assert hybrid.fluid_served_rate == pytest.approx(expected, rel=0.05)
        assert hybrid.fluid_availability == pytest.approx(1.0, abs=0.02)

    def test_unprotected_flood_starves_bulk(self, model):
        """Protection off at 100K attack: the flood eats the ANS and the
        closed form predicts the leftover capacity the fluid measures."""
        point = run_hybrid_point(
            100_000.0,
            False,
            seed=0,
            legit_rate=LEGIT_RATE,
            warmup=0.1,
            duration=0.25,
            model=model,
        )
        expected = model.hybrid_served_rate(LEGIT_RATE, 100_000.0, protection=False)
        assert point.fluid_served_rate == pytest.approx(expected, rel=0.08)
        assert point.fluid_served_rate < LEGIT_RATE * 0.75


class TestAgainstPacketRun:
    def test_guard_cpu_and_availability(self, hybrid):
        packet = _packet_reference()
        assert hybrid.guard_cpu == pytest.approx(packet["guard_cpu"], abs=0.08)
        assert hybrid.foreground_availability == pytest.approx(
            packet["fg_availability"], abs=0.05
        )
        # the whole point: the fluid models the bulk load at a tiny
        # fraction of the packet run's event count
        assert hybrid.events < packet["events"] / 3


class TestScale:
    def test_million_client_cell_is_cheap(self):
        """≥10⁶ modeled stub clients in a few thousand events — the cell
        finishes orders of magnitude under the 300 s per-cell timeout."""
        point = run_hybrid_point(
            250_000.0, True, seed=0, clients=1_000_000, warmup=0.1, duration=0.2
        )
        assert isinstance(point, HybridPoint)
        assert point.clients == 1_000_000
        assert point.fluid_offered_rate == pytest.approx(
            1_000_000 * PER_CLIENT_RATE
        )
        assert point.events < 20_000
        assert 0.0 < point.fluid_served_rate <= point.fluid_offered_rate

    def test_deterministic(self):
        a = run_hybrid_point(60_000.0, True, seed=0, warmup=0.1, duration=0.2)
        b = run_hybrid_point(60_000.0, True, seed=0, warmup=0.1, duration=0.2)
        assert a == b
