"""Planner contract: canonical order, stable per-cell seeds, plan digests."""

import hashlib

from repro.farm.planner import Cell, derive_cell_seed, expand, plan_digest


class TestDeriveCellSeed:
    def test_matches_child_rng_construction(self):
        """Same BLAKE2b recipe as Simulator.child_rng: blake2b(seed\\x00name)."""
        material = "7\x00faults/scenario=baseline/scheme=tcp".encode()
        expected = int.from_bytes(
            hashlib.blake2b(material, digest_size=8).digest(), "big"
        )
        assert derive_cell_seed(7, "faults/scenario=baseline/scheme=tcp") == expected

    def test_stable_across_calls(self):
        assert derive_cell_seed(0, "m/a=1") == derive_cell_seed(0, "m/a=1")

    def test_distinct_cells_distinct_seeds(self):
        seeds = {derive_cell_seed(0, f"m/a={i}") for i in range(64)}
        assert len(seeds) == 64

    def test_base_seed_changes_every_cell_seed(self):
        assert derive_cell_seed(0, "m/a=1") != derive_cell_seed(1, "m/a=1")


class TestExpand:
    def test_canonical_declaration_major_order(self):
        cells = expand(
            "m", [("x", ("1", "2")), ("y", ("a", "b"))], base_seed=0, fast=False
        )
        assert [c.cell_id for c in cells] == [
            "m/x=1/y=a",
            "m/x=1/y=b",
            "m/x=2/y=a",
            "m/x=2/y=b",
        ]

    def test_values_stringified(self):
        cells = expand("m", [("rate", (0, 100_000))], base_seed=0, fast=False)
        assert cells[1].param_dict() == {"rate": "100000"}

    def test_cell_seed_independent_of_position(self):
        """A cell's seed depends only on (base_seed, cell_id) — reordering
        or subsetting the matrix never changes an individual cell's run."""
        full = expand("m", [("x", ("1", "2", "3"))], base_seed=5, fast=False)
        solo = expand("m", [("x", ("2",))], base_seed=5, fast=False)
        full_by_id = {c.cell_id: c.seed for c in full}
        assert full_by_id["m/x=2"] == solo[0].seed

    def test_fast_flag_carried_not_in_identity(self):
        slow = expand("m", [("x", ("1",))], base_seed=0, fast=False)
        fast = expand("m", [("x", ("1",))], base_seed=0, fast=True)
        assert slow[0].cell_id == fast[0].cell_id
        assert slow[0].seed == fast[0].seed


class TestPlanDigest:
    def _cells(self, base_seed=0, fast=False):
        return expand(
            "m", [("x", ("1", "2")), ("y", ("a",))], base_seed=base_seed, fast=fast
        )

    def test_identical_plans_identical_digest(self):
        assert plan_digest(self._cells()) == plan_digest(self._cells())

    def test_digest_sensitive_to_seed_fast_and_axes(self):
        base = plan_digest(self._cells())
        assert plan_digest(self._cells(base_seed=1)) != base
        assert plan_digest(self._cells(fast=True)) != base
        reordered = list(reversed(self._cells()))
        assert plan_digest(reordered) != base

    def test_cell_is_hashable_and_frozen(self):
        cell = Cell(matrix="m", params=(("x", "1"),), base_seed=0, fast=False)
        assert cell in {cell}
