"""Manifest contract: round-trip, digest invariance, atomic save, resume."""

import json

import pytest

from repro.farm.manifest import (
    DONE,
    FAILED,
    TIMEOUT,
    CellRecord,
    Manifest,
    result_digest,
)


def _manifest(path=None):
    return Manifest(
        matrix="m", base_seed=0, fast=False, plan_digest="abc123", path=path
    )


def _done(cell_id, seed=1, value=42):
    result = {"value": value}
    return CellRecord(
        cell_id=cell_id,
        seed=seed,
        status=DONE,
        result=result,
        result_digest=result_digest(result),
        trace_hash="t" * 32,
    )


class TestResultDigest:
    def test_canonical_key_order(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert result_digest({"a": 1}) != result_digest({"a": 2})


class TestRecords:
    def test_done_and_failed_views(self):
        m = _manifest()
        m.record(_done("m/x=1"))
        m.record(CellRecord(cell_id="m/x=2", seed=2, status=FAILED, error="boom"))
        m.record(CellRecord(cell_id="m/x=3", seed=3, status=TIMEOUT, error="slow"))
        assert m.done_cells() == {"m/x=1"}
        assert m.failed_cells() == ["m/x=2", "m/x=3"]
        assert m.status_of("m/x=1") == DONE
        assert m.status_of("m/x=9") is None

    def test_rerecording_replaces(self):
        m = _manifest()
        m.record(CellRecord(cell_id="m/x=1", seed=1, status=FAILED, error="boom"))
        m.record(_done("m/x=1"))
        assert m.failed_cells() == []


class TestDigest:
    def test_timings_and_runs_excluded(self):
        """Serial and sharded runs differ only in wall-clock metadata —
        the digest must not see it."""
        a, b = _manifest(), _manifest()
        a.record(_done("m/x=1"), wall_seconds=0.5)
        b.record(_done("m/x=1"), wall_seconds=99.0)
        a.runs.append({"shards": 1, "wall_seconds": 10.0})
        b.runs.append({"shards": 16, "wall_seconds": 0.1})
        assert a.digest() == b.digest()

    def test_error_text_excluded(self):
        """Tracebacks vary across processes; failure status still digests."""
        a, b = _manifest(), _manifest()
        a.record(CellRecord(cell_id="m/x=1", seed=1, status=FAILED, error="tb one"))
        b.record(CellRecord(cell_id="m/x=1", seed=1, status=FAILED, error="tb two"))
        assert a.digest() == b.digest()

    def test_result_and_status_included(self):
        a, b, c = _manifest(), _manifest(), _manifest()
        a.record(_done("m/x=1", value=1))
        b.record(_done("m/x=1", value=2))
        c.record(CellRecord(cell_id="m/x=1", seed=1, status=FAILED))
        assert a.digest() != b.digest()
        assert a.digest() != c.digest()

    def test_insertion_order_irrelevant(self):
        a, b = _manifest(), _manifest()
        a.record(_done("m/x=1"))
        a.record(_done("m/x=2"))
        b.record(_done("m/x=2"))
        b.record(_done("m/x=1"))
        assert a.digest() == b.digest()


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        m = _manifest(path)
        m.record(_done("m/x=1"), wall_seconds=0.25)
        m.record(CellRecord(cell_id="m/x=2", seed=2, status=FAILED, error="boom"))
        m.runs.append({"shards": 2, "cells_ran": 2})
        m.save()

        loaded = Manifest.load(path)
        assert loaded.digest() == m.digest()
        assert loaded.done_cells() == {"m/x=1"}
        assert loaded.records["m/x=1"].result == {"value": 42}
        assert loaded.records["m/x=2"].error == "boom"
        assert loaded.timings == {"m/x=1": 0.25}
        assert loaded.runs == [{"shards": 2, "cells_ran": 2}]

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "manifest.json"
        m = _manifest(str(path))
        m.record(_done("m/x=1"))
        m.save()
        assert not path.with_suffix(".json.tmp").exists()
        assert json.loads(path.read_text())["digest"] == m.digest()

    def test_save_without_path_is_noop(self):
        _manifest().save()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ValueError, match="version"):
            Manifest.load(str(path))


class TestCompatibleWith:
    def test_matching_plan_accepted(self):
        m = _manifest()
        assert m.compatible_with(
            matrix="m", base_seed=0, fast=False, plan_digest="abc123"
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"matrix": "other"},
            {"base_seed": 1},
            {"fast": True},
            {"plan_digest": "zzz"},
        ],
    )
    def test_any_plan_drift_rejected(self, kwargs):
        m = _manifest()
        base = {"matrix": "m", "base_seed": 0, "fast": False, "plan_digest": "abc123"}
        assert not m.compatible_with(**{**base, **kwargs})


class TestRunHistory:
    def test_note_run_keeps_only_the_newest_entries(self):
        from repro.farm.manifest import MAX_RUN_HISTORY

        m = _manifest()
        for i in range(MAX_RUN_HISTORY + 10):
            m.note_run({"i": i})
        assert len(m.runs) == MAX_RUN_HISTORY
        assert m.runs[0]["i"] == 10
        assert m.runs[-1]["i"] == MAX_RUN_HISTORY + 9

    def test_load_truncates_oversized_history(self, tmp_path):
        from repro.farm.manifest import MAX_RUN_HISTORY

        path = tmp_path / "manifest.json"
        m = _manifest(path=str(path))
        m.save()
        doc = json.loads(path.read_text())
        doc["runs"] = [{"i": i} for i in range(MAX_RUN_HISTORY * 3)]
        path.write_text(json.dumps(doc))
        loaded = Manifest.load(str(path))
        assert len(loaded.runs) == MAX_RUN_HISTORY
        assert loaded.runs[-1]["i"] == MAX_RUN_HISTORY * 3 - 1

    def test_history_is_not_digested(self):
        a, b = _manifest(), _manifest()
        b.note_run({"shards": 4})
        assert a.digest() == b.digest()
