"""Runner contract: serial/sharded equivalence, resume, crash isolation.

Multi-process assertions use the built-in ``selftest`` matrix — instant
synthetic cells registered in :mod:`repro.farm.matrices` so they exist in
spawned workers too (matrices registered inside a test process don't).
"""

import pytest

from repro.farm import (
    Cell,
    MatrixDef,
    get_matrix,
    matrix_names,
    register_matrix,
    run_farm,
)
from repro.farm.matrices import MATRICES, SELFTEST_BEHAVIOURS
from repro.farm.planner import expand


class TestRegistry:
    def test_builtin_matrices_registered(self):
        assert {"faults", "smoke", "hybrid", "selftest"} <= set(matrix_names())

    def test_unknown_matrix_names_known_ones(self):
        with pytest.raises(ValueError, match="faults"):
            get_matrix("no-such-matrix")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_matrix(MATRICES["selftest"])


class TestSerial:
    def test_crash_isolated_to_its_cell(self):
        """The `boom` cell fails; every other cell still completes."""
        result = run_farm("selftest", seed=0)
        assert result.failed == ["selftest/behaviour=boom"]
        done = result.manifest.done_cells()
        assert done == {
            f"selftest/behaviour={b}" for b in SELFTEST_BEHAVIOURS if b != "boom"
        }
        assert not result.complete
        assert result.reduced is None  # reduce waits for a complete plan
        record = result.manifest.records["selftest/behaviour=boom"]
        assert "crashed on purpose" in record.error

    def test_digest_stable_across_runs(self):
        a = run_farm("selftest", seed=0)
        b = run_farm("selftest", seed=0)
        assert a.manifest.digest() == b.manifest.digest()
        assert run_farm("selftest", seed=1).manifest.digest() != a.manifest.digest()

    def test_cell_results_use_derived_seeds(self):
        result = run_farm("selftest", seed=0)
        for cell in result.cells:
            record = result.manifest.records[cell.cell_id]
            if record.status == "done":
                assert record.result["value"] == cell.seed % 9973

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            run_farm("selftest", shards=0)


class TestSharded:
    def test_sharded_digest_equals_serial(self):
        serial = run_farm("selftest", seed=3)
        sharded = run_farm("selftest", seed=3, shards=2)
        assert sharded.manifest.digest() == serial.manifest.digest()
        assert sharded.failed == ["selftest/behaviour=boom"]

    def test_timeout_kills_cell_not_run(self, monkeypatch, tmp_path):
        """A hung cell is killed at --cell-timeout; its worker is replaced
        and every other cell still completes."""
        monkeypatch.setenv("REPRO_FARM_SELFTEST_HANG", "1")
        result = run_farm(
            "selftest",
            seed=0,
            shards=2,
            cell_timeout=3.0,
            manifest_path=str(tmp_path / "m.json"),
        )
        assert result.manifest.status_of("selftest/behaviour=hang") == "timeout"
        assert result.manifest.done_cells() == {
            f"selftest/behaviour={b}" for b in SELFTEST_BEHAVIOURS if b != "boom"
        }


class TestResume:
    def test_stop_after_then_resume_completes(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        partial = run_farm("selftest", seed=0, manifest_path=path, stop_after=2)
        assert partial.ran == 2 and not partial.complete

        resumed = run_farm("selftest", seed=0, manifest_path=path, resume=True)
        assert resumed.skipped == 2
        assert resumed.ran == len(resumed.cells) - 2
        assert resumed.manifest.digest() == run_farm("selftest", seed=0).manifest.digest()

    def test_resume_reattempts_failed_cells(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        run_farm("selftest", seed=0, manifest_path=path)
        resumed = run_farm("selftest", seed=0, manifest_path=path, resume=True)
        # done cells skipped; only the failing cell is re-attempted
        assert resumed.ran == 1
        assert resumed.failed == ["selftest/behaviour=boom"]

    def test_resume_requires_matching_plan(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        run_farm("selftest", seed=0, manifest_path=path, stop_after=1)
        with pytest.raises(ValueError, match="does not match"):
            run_farm("selftest", seed=1, manifest_path=path, resume=True)

    def test_resume_requires_manifest_path(self):
        with pytest.raises(ValueError, match="manifest"):
            run_farm("selftest", seed=0, resume=True)


class TestReduceOrdering:
    def test_reduce_sees_canonical_order(self):
        """Results are merged in plan order regardless of completion order."""
        seen = {}

        def plan(seed, fast):
            return expand("order-probe", [("x", ("b", "a", "c"))], base_seed=seed, fast=fast)

        def run_cell(params, seed, fast):
            return {"x": params["x"]}

        def reduce(cells, results):
            seen["order"] = [r["x"] for r in results]
            return results

        register_matrix(
            MatrixDef(
                name="order-probe",
                description="test-only",
                plan=plan,
                run_cell=run_cell,
                reduce=reduce,
                render=lambda reduced: "",
            )
        )
        try:
            result = run_farm("order-probe", seed=0)
            assert result.complete
            assert seen["order"] == ["b", "a", "c"]  # declaration order, not sorted
        finally:
            MATRICES.pop("order-probe", None)


class TestFaultsMatrixEquivalence:
    """The ISSUE's headline gate at test scale: the faults planner cells
    run identically solo and sharded (full-matrix equivalence is the
    check.sh smoke)."""

    def test_smoke_matrix_sharded_equals_serial(self):
        serial = run_farm("smoke", seed=0, fast=True)
        sharded = run_farm("smoke", seed=0, fast=True, shards=2)
        assert serial.complete and sharded.complete
        assert sharded.manifest.digest() == serial.manifest.digest()
        for cell in serial.cells:
            a = serial.manifest.records[cell.cell_id]
            b = sharded.manifest.records[cell.cell_id]
            assert a.result == b.result
            assert a.trace_hash == b.trace_hash
