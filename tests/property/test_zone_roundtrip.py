"""Property test: zone -> master file -> zone preserves lookup behaviour."""

import string
from ipaddress import IPv4Address

from hypothesis import given, settings, strategies as st

from repro.dns import AnswerKind, Zone, parse_zone_text
from repro.dnswire import Name, RRType, soa_record

labels = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=10)
host_labels = st.lists(labels, min_size=1, max_size=2)
ipv4s = st.integers(min_value=0x01000000, max_value=0xDFFFFFFF).map(IPv4Address)


@st.composite
def zones(draw):
    zone = Zone("example.com.")
    zone.add(soa_record("example.com."))
    names = draw(st.lists(host_labels, min_size=1, max_size=8, unique_by=tuple))
    table = {}
    for parts in names:
        name = Name((*[p.encode() for p in parts], b"example", b"com"))
        address = draw(ipv4s)
        zone.add_a(name, address, ttl=draw(st.integers(min_value=1, max_value=86400)))
        table[name] = address
    return zone, table


@settings(max_examples=50)
@given(data=zones())
def test_zone_text_round_trip_preserves_answers(data):
    zone, table = data
    reparsed = parse_zone_text(zone.to_text())
    for name, address in table.items():
        result = reparsed.lookup(name, RRType.A)
        assert result.kind is AnswerKind.ANSWER
        assert address in {rr.rdata.address for rr in result.records}


@settings(max_examples=30)
@given(data=zones())
def test_round_trip_preserves_ttls_and_counts(data):
    zone, _ = data
    reparsed = parse_zone_text(zone.to_text())
    assert reparsed.record_count() == zone.record_count()
    assert reparsed.origin == zone.origin


def test_delegations_round_trip():
    zone = Zone("example.com.")
    zone.add(soa_record("example.com."))
    zone.delegate("sub.example.com.", "ns1.sub.example.com.", "203.0.113.9")
    reparsed = parse_zone_text(zone.to_text())
    result = reparsed.lookup(Name.from_text("x.sub.example.com."), RRType.A)
    assert result.kind is AnswerKind.DELEGATION
    assert result.additional[0].rdata.address == IPv4Address("203.0.113.9")


def test_mixed_types_round_trip():
    zone = parse_zone_text(
        "$ORIGIN m.example.\n"
        "@ IN SOA ns1 h 1 2 3 4 5\n"
        "@ IN MX 10 mx1\n"
        "mx1 IN A 10.0.0.25\n"
        "alias IN CNAME mx1\n"
        "_sip._tcp IN SRV 5 10 5060 mx1\n"
        'note IN TXT "hello"\n'
    )
    again = parse_zone_text(zone.to_text())
    assert again.record_count() == zone.record_count()
    assert again.lookup(Name.from_text("alias.m.example."), RRType.A).kind is AnswerKind.CNAME
