"""Property-based tests: any message we can build must round-trip the wire."""

import string
from ipaddress import IPv4Address

from hypothesis import given, settings, strategies as st

from repro.dnswire import (
    A,
    CNAME,
    Header,
    Message,
    MX,
    NS,
    Name,
    Question,
    ResourceRecord,
    RRClass,
    RRType,
    SOA,
    TXT,
)

_LABEL_ALPHABET = string.ascii_letters + string.digits + "-_"

labels = st.text(alphabet=_LABEL_ALPHABET, min_size=1, max_size=20).map(
    lambda s: s.encode("ascii")
)
names = st.lists(labels, min_size=0, max_size=6).map(Name)
ipv4s = st.integers(min_value=0, max_value=2**32 - 1).map(IPv4Address)
ttls = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def rdatas(draw):
    kind = draw(st.sampled_from(["A", "NS", "CNAME", "MX", "SOA", "TXT"]))
    if kind == "A":
        return RRType.A, A(draw(ipv4s))
    if kind == "NS":
        return RRType.NS, NS(draw(names))
    if kind == "CNAME":
        return RRType.CNAME, CNAME(draw(names))
    if kind == "MX":
        return RRType.MX, MX(draw(st.integers(0, 65535)), draw(names))
    if kind == "SOA":
        return RRType.SOA, SOA(
            draw(names),
            draw(names),
            draw(st.integers(0, 2**32 - 1)),
            draw(st.integers(0, 2**32 - 1)),
            draw(st.integers(0, 2**32 - 1)),
            draw(st.integers(0, 2**32 - 1)),
            draw(st.integers(0, 2**32 - 1)),
        )
    return RRType.TXT, TXT(
        tuple(draw(st.lists(st.binary(min_size=0, max_size=255), min_size=1, max_size=3)))
    )


@st.composite
def resource_records(draw):
    rtype, rdata = draw(rdatas())
    return ResourceRecord(draw(names), rtype, RRClass.IN, draw(ttls), rdata)


@st.composite
def messages(draw):
    header = Header(
        msg_id=draw(st.integers(0, 0xFFFF)),
        qr=draw(st.booleans()),
        aa=draw(st.booleans()),
        tc=draw(st.booleans()),
        rd=draw(st.booleans()),
        ra=draw(st.booleans()),
        rcode=draw(st.integers(0, 5)),
    )
    msg = Message(header=header)
    msg.questions = draw(
        st.lists(
            names.map(lambda n: Question(n, RRType.A, RRClass.IN)), min_size=0, max_size=2
        )
    )
    msg.answers = draw(st.lists(resource_records(), max_size=4))
    msg.authorities = draw(st.lists(resource_records(), max_size=3))
    msg.additionals = draw(st.lists(resource_records(), max_size=3))
    return msg


@given(name=names)
def test_name_roundtrip_uncompressed(name):
    decoded, end = Name.decode(name.to_wire(), 0)
    assert decoded == name
    assert end == name.wire_length()


@given(first=names, second=names)
def test_name_pair_roundtrip_with_compression(first, second):
    buf = bytearray()
    offsets: dict[Name, int] = {}
    first.encode(buf, offsets)
    start = len(buf)
    second.encode(buf, offsets)
    got1, _ = Name.decode(bytes(buf), 0)
    got2, end2 = Name.decode(bytes(buf), start)
    assert got1 == first
    assert got2 == second
    assert end2 == len(buf)


@given(name=names)
def test_compression_never_beats_wire_limit(name):
    """Compressed encoding is never longer than uncompressed."""
    buf = bytearray()
    name.encode(buf, offsets={})
    assert len(buf) <= name.wire_length()


@settings(max_examples=200)
@given(msg=messages())
def test_message_roundtrip_compressed(msg):
    decoded = Message.decode(msg.encode(compress=True))
    assert decoded.questions == msg.questions
    assert decoded.answers == msg.answers
    assert decoded.authorities == msg.authorities
    assert decoded.additionals == msg.additionals
    assert decoded.header.msg_id == msg.header.msg_id
    assert decoded.header.flags_word() == msg.header.flags_word()


@settings(max_examples=100)
@given(msg=messages())
def test_message_roundtrip_uncompressed(msg):
    decoded = Message.decode(msg.encode(compress=False))
    assert decoded.answers == msg.answers
    assert decoded.questions == msg.questions


@settings(max_examples=100)
@given(msg=messages(), max_size=st.integers(min_value=12, max_value=512))
def test_truncated_encoding_respects_max_size(msg, max_size):
    # messages whose question section alone exceeds max_size cannot shrink,
    # so only check the TC invariant when the question fits
    stripped = Message(header=msg.header, questions=msg.questions)
    if len(stripped.encode()) > max_size:
        return
    wire = msg.encode(max_size=max_size)
    assert len(wire) <= max_size
    decoded = Message.decode(wire)
    if len(msg.encode()) > max_size:
        # truncation actually happened: records dropped, TC raised
        assert decoded.header.tc
        assert decoded.answers == []
        assert decoded.authorities == []
        assert decoded.additionals == []
