"""Property-based tests for guard invariants."""

from ipaddress import IPv4Address

from hypothesis import assume, given, settings, strategies as st

from repro.guard import (
    CookieFactory,
    TokenBucket,
    TopRequesterTracker,
    decode_cookie_name,
    encode_cookie_name,
)
from repro.guard.cookie import KEY_LENGTH
from repro.dnswire import Name

ips = st.integers(min_value=1, max_value=2**32 - 2).map(IPv4Address)
keys = st.binary(min_size=KEY_LENGTH, max_size=KEY_LENGTH)

labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
).map(lambda s: s.encode())
names = st.lists(labels, min_size=0, max_size=4).map(Name)


class TestCookieProperties:
    @given(key=keys, ip=ips)
    def test_own_cookie_always_verifies(self, key, ip):
        factory = CookieFactory(key)
        assert factory.verify(factory.cookie(ip), ip)
        assert factory.verify_label(factory.label_cookie(ip), ip)

    @given(key=keys, ip=ips, other=ips)
    def test_cookie_never_verifies_for_other_source(self, key, ip, other):
        assume(ip != other)
        factory = CookieFactory(key)
        assert not factory.verify(factory.cookie(ip), other)

    @given(key=keys, ip=ips)
    def test_rotation_preserves_then_expires(self, key, ip):
        factory = CookieFactory(key)
        cookie = factory.cookie(ip)
        factory.rotate()
        assert factory.verify(cookie, ip)
        factory.rotate()
        assert not factory.verify(cookie, ip)

    @given(key=keys, ip=ips, r_y=st.integers(min_value=1, max_value=65534))
    def test_ip_cookie_in_range_and_verifies(self, key, ip, r_y):
        factory = CookieFactory(key)
        y = factory.ip_cookie(ip, r_y)
        assert 0 <= y < r_y
        assert factory.verify_ip_cookie(y, ip, r_y)


class TestCookieNameProperties:
    @given(qname=names, origin_depth=st.integers(min_value=0, max_value=2))
    def test_encode_decode_round_trip(self, qname, origin_depth):
        assume(len(qname) >= origin_depth)
        origin = Name(qname.labels[len(qname) - origin_depth:])
        encoded = encode_cookie_name(b"PRa1b2c3d4", qname, origin)
        assume(encoded is not None)  # may exceed the 63-byte label limit
        decoded = decode_cookie_name(encoded, origin)
        assert decoded is not None
        assert decoded.original_qname == qname
        assert decoded.cookie_label == b"PRa1b2c3d4"

    @given(qname=names)
    def test_normal_names_never_decode(self, qname):
        assume(not qname.is_root())
        # the marker check is case-insensitive (DNS-0x20), so the exclusion
        # must be too: a lowercase pr+8hex label IS a valid cookie label
        assume(
            not qname.labels[0].upper().startswith(b"PR")
            or len(qname.labels[0]) < 10
        )
        assert decode_cookie_name(qname, Name(qname.labels[1:])) is None


class TestTokenBucketProperties:
    @given(
        rate=st.floats(min_value=0.5, max_value=1000.0),
        burst=st.floats(min_value=1.0, max_value=100.0),
        arrivals=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=200),
    )
    def test_never_exceeds_rate_times_time_plus_burst(self, rate, burst, arrivals):
        bucket = TokenBucket(rate, burst)
        allowed = 0
        horizon = 0.0
        for t in sorted(arrivals):
            horizon = t
            if bucket.consume(t):
                allowed += 1
        assert allowed <= rate * horizon + burst + 1e-6

    @given(rate=st.floats(min_value=1.0, max_value=100.0),
           burst=st.floats(min_value=1.0, max_value=10.0))
    def test_tokens_never_exceed_burst(self, rate, burst):
        bucket = TokenBucket(rate, burst)
        assert bucket.available(1e9) <= burst


class TestTrackerProperties:
    @given(
        heavy_count=st.integers(min_value=50, max_value=500),
        noise=st.integers(min_value=0, max_value=500),
        capacity=st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=50)
    def test_majority_source_always_tracked(self, heavy_count, noise, capacity):
        """Space-saving guarantee: a source with > N/capacity of the traffic
        is always present in the table."""
        assume(heavy_count > (heavy_count + noise) / capacity)
        tracker = TopRequesterTracker(capacity)
        heavy = IPv4Address("9.9.9.9")
        for i in range(max(heavy_count, noise)):
            if i < heavy_count:
                tracker.observe(heavy)
            if i < noise:
                tracker.observe(IPv4Address(0x0A000000 + i))
        assert tracker.count(heavy) >= heavy_count
