"""Property-based tests: the TCP byte stream is reliable and ordered."""

from ipaddress import IPv4Address

from hypothesis import given, settings, strategies as st

from repro.netsim import Link, Node, Simulator

SERVER_IP = IPv4Address("10.0.0.2")


def transfer(blobs: list[bytes], loss: float, seed: int, *, syn_cookies: bool) -> bytes:
    """Send ``blobs`` over one connection and return what the server read."""
    sim = Simulator(seed=seed)
    client = Node(sim, "client")
    client.add_address("10.0.0.1")
    server = Node(sim, "server")
    server.add_address(SERVER_IP)
    Link(sim, client, server, delay=0.001, loss=loss)
    received = bytearray()

    def on_connection(conn):
        conn.on_data = lambda c, data: received.extend(data)

    server.tcp.listen(53, on_connection, syn_cookies=syn_cookies)

    def on_established(conn):
        for blob in blobs:
            conn.send(blob)
        conn.close()

    client.tcp.connect(SERVER_IP, 53, on_established=on_established)
    sim.run(until=60.0)
    return bytes(received)


@settings(max_examples=15, deadline=None)
@given(
    blobs=st.lists(st.binary(min_size=1, max_size=4000), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_lossless_stream_integrity(blobs, seed):
    assert transfer(blobs, 0.0, seed, syn_cookies=False) == b"".join(blobs)


@settings(max_examples=15, deadline=None)
@given(
    blobs=st.lists(st.binary(min_size=1, max_size=3000), min_size=1, max_size=4),
    loss=st.floats(min_value=0.0, max_value=0.25),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_lossy_stream_integrity(blobs, loss, seed):
    """Whatever the loss pattern, delivered bytes are a prefix-exact match."""
    got = transfer(blobs, loss, seed, syn_cookies=False)
    expected = b"".join(blobs)
    # retransmission may still be in progress at the horizon under extreme
    # loss, but delivered data is never corrupted or reordered
    assert expected.startswith(got)
    if loss < 0.15:
        assert got == expected


@settings(max_examples=10, deadline=None)
@given(
    blobs=st.lists(st.binary(min_size=1, max_size=2000), min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=100),
)
def test_syn_cookie_listener_equivalent(blobs, seed):
    """A SYN-cookie listener delivers the same stream as a stateful one."""
    assert transfer(blobs, 0.0, seed, syn_cookies=True) == b"".join(blobs)
