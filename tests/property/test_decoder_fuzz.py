"""Fuzzing the wire decoder: junk input may be rejected, never crash.

The guard parses attacker-controlled bytes at 250K packets/sec; any input
must either decode or raise :class:`DecodeError` — no other exception, no
hang, no state corruption.
"""

from hypothesis import given, settings, strategies as st

from repro.dnswire import DecodeError, Message, Name, make_query


@settings(max_examples=500)
@given(data=st.binary(min_size=0, max_size=128))
def test_random_bytes_never_crash_decoder(data):
    try:
        Message.decode(data)
    except DecodeError:
        pass


@settings(max_examples=300)
@given(data=st.binary(min_size=0, max_size=64))
def test_random_bytes_never_crash_name_decoder(data):
    try:
        Name.decode(data, 0)
    except DecodeError:
        pass


@settings(max_examples=300)
@given(
    flips=st.lists(st.integers(min_value=0, max_value=28), min_size=1, max_size=6),
    values=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=6),
)
def test_bitflipped_real_messages_never_crash(flips, values):
    """Corrupt a real query at random offsets; decode or DecodeError."""
    wire = bytearray(make_query("www.foo.com", msg_id=7).encode())
    for offset, value in zip(flips, values):
        wire[offset % len(wire)] = value
    try:
        Message.decode(bytes(wire))
    except DecodeError:
        pass


@settings(max_examples=200)
@given(cut=st.integers(min_value=0, max_value=28))
def test_truncated_real_messages_never_crash(cut):
    wire = make_query("www.foo.com", msg_id=9).encode()
    try:
        Message.decode(wire[:cut])
    except DecodeError:
        pass
