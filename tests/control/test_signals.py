"""Unit tests for the control plane's windowed-delta signal reader."""

import pytest

from repro.control import SignalReader
from repro.experiments.testbed import GuardTestbed


class TestSignalReader:
    def test_rates_are_deltas_over_the_interval(self):
        bed = GuardTestbed()
        reader = SignalReader(bed.guard)
        bed.guard.queries_seen += 100
        bed.guard.invalid_drops += 5
        bed.guard.rl1_drops += 10
        bed.guard_node.cpu.charge(0.2)
        bed.run(0.5)
        snap = reader.sample()
        assert snap.interval == pytest.approx(0.5)
        assert snap.offered_rate == pytest.approx(200.0)
        assert snap.cookie_failure_rate == pytest.approx(10.0)
        assert snap.rl1_denial_rate == pytest.approx(20.0)
        assert snap.cpu_utilization == pytest.approx(0.4)
        assert snap.queue_drop_rate == 0.0

    def test_second_sample_sees_only_new_activity(self):
        bed = GuardTestbed()
        reader = SignalReader(bed.guard)
        bed.guard.queries_seen += 100
        bed.run(0.5)
        reader.sample()
        bed.run(0.5)
        snap = reader.sample()
        assert snap.offered_rate == 0.0
        assert snap.cpu_utilization == 0.0

    def test_rebase_forgets_history(self):
        bed = GuardTestbed()
        reader = SignalReader(bed.guard)
        bed.guard.queries_seen += 1000
        bed.guard_node.cpu.charge(0.4)
        bed.run(0.5)
        reader.rebase()
        bed.run(0.5)
        snap = reader.sample()
        assert snap.offered_rate == 0.0
        # the charged work finished before the rebased window opened
        assert snap.cpu_utilization == 0.0

    def test_queue_and_burn_signals_surface_cpu_overload(self):
        bed = GuardTestbed()
        cpu = bed.guard_node.cpu
        reader = SignalReader(bed.guard)
        cpu.submit(2 * cpu.queue_limit, lambda: None)  # saturate the queue
        cpu.charge(0.001)  # burned at the limit
        cpu.submit(0.001, lambda: None)  # dropped outright
        bed.run(0.1)
        snap = reader.sample()
        assert snap.queue_drop_rate > 0.0
        assert snap.work_dropped_rate > 0.0

    def test_zero_interval_sample_reports_zero_rates(self):
        bed = GuardTestbed()
        reader = SignalReader(bed.guard)
        bed.guard.queries_seen += 50
        snap = reader.sample()
        assert snap.interval == 0.0
        assert snap.offered_rate == 0.0
