"""Unit tests for the controller's actuator seam (one axis per class)."""

import random

import pytest

from repro.control import (
    AdmissionActuator,
    KeyRotationActuator,
    RateLimitActuator,
    SchemeActuator,
    default_actuators,
)
from repro.experiments.testbed import GuardTestbed
from repro.guard import UnverifiedResponseLimiter, VerifiedRequestLimiter


class TestSchemeActuator:
    def test_ladder_maps_levels_to_policies(self):
        bed = GuardTestbed(guard_policy="dns")
        act = SchemeActuator(bed.guard)
        assert act.apply(1)
        assert bed.guard._policy == "dns"  # level 1 keeps the cheap base
        act.apply(2)
        assert bed.guard._policy == "tcp"
        act.apply(3)
        assert bed.guard._policy == "drop"

    def test_revert_restores_base_policy(self):
        bed = GuardTestbed(guard_policy="dns")
        act = SchemeActuator(bed.guard)
        act.apply(3)
        act.revert()
        assert bed.guard._policy == "dns"
        assert act.level == 0

    def test_apply_same_level_is_a_noop(self):
        bed = GuardTestbed()
        act = SchemeActuator(bed.guard)
        assert not act.apply(0)


class TestRateLimitActuator:
    def _bed(self):
        return GuardTestbed(
            rl1=UnverifiedResponseLimiter(
                per_source_rate=100.0, per_source_burst=200.0
            ),
            rl2=VerifiedRequestLimiter(per_host_rate=1000.0, per_host_burst=2000.0),
        )

    def test_factors_tighten_against_saved_base(self):
        bed = self._bed()
        act = RateLimitActuator(bed.guard)
        act.apply(3)
        assert bed.guard.rl1.per_source_rate == pytest.approx(10.0)
        assert bed.guard.rl1.per_source_burst == pytest.approx(20.0)
        assert bed.guard.rl2.per_host_rate == pytest.approx(500.0)

    def test_rl2_never_tightens_below_half(self):
        bed = self._bed()
        act = RateLimitActuator(bed.guard)
        for level in (1, 2, 3):
            act.apply(level)
            assert bed.guard.rl2.per_host_rate >= 500.0

    def test_revert_restores_base_rates(self):
        bed = self._bed()
        act = RateLimitActuator(bed.guard)
        act.apply(3)
        act.revert()
        assert bed.guard.rl1.per_source_rate == pytest.approx(100.0)
        assert bed.guard.rl2.per_host_burst == pytest.approx(2000.0)


class TestAdmissionActuator:
    def test_installs_disengaged_at_construction(self):
        bed = GuardTestbed()
        assert bed.guard.admission is None
        AdmissionActuator(bed.guard)
        assert bed.guard.admission is not None
        assert not bed.guard.admission.engaged

    def test_levels_set_shed_fraction(self):
        bed = GuardTestbed()
        act = AdmissionActuator(bed.guard)
        act.apply(1)
        assert bed.guard.admission.engaged
        assert bed.guard.admission.shed_backlog_fraction == pytest.approx(0.5)
        act.apply(3)
        assert bed.guard.admission.shed_backlog_fraction == pytest.approx(0.25)

    def test_revert_disengages_but_keeps_cache_warming(self):
        bed = GuardTestbed()
        act = AdmissionActuator(bed.guard)
        act.apply(2)
        act.revert()
        # still installed (so _mark_verified keeps warming the cache),
        # just not shedding anyone
        assert bed.guard.admission is not None
        assert not bed.guard.admission.engaged


class TestKeyRotationActuator:
    def test_rotation_waits_for_engage_level_and_period(self):
        bed = GuardTestbed()
        act = KeyRotationActuator(bed.guard, random.Random(7), period=1.0)
        gen0 = bed.guard.cookies.generation
        assert not act.tick(2.0)  # below engage level: never rotates
        act.apply(2)
        assert not act.tick(0.5)  # period not yet elapsed
        assert act.tick(1.5)
        assert bed.guard.cookies.generation == gen0 + 1
        assert act.rotations == 1

    def test_rotation_budget_is_one_generation(self):
        bed = GuardTestbed()
        act = KeyRotationActuator(bed.guard, random.Random(7), period=1.0)
        act.apply(2)
        assert act.tick(1.5)
        # second rotation would kill every pre-escalation cookie in the
        # field (generation parity tolerates one outstanding generation)
        assert not act.tick(10.0)
        assert bed.guard.cookies.generation == act._base_generation + 1

    def test_crash_restart_rotation_consumes_the_budget(self):
        bed = GuardTestbed()
        act = KeyRotationActuator(bed.guard, random.Random(7), period=1.0)
        act.apply(2)
        state = bed.guard.crash()
        bed.guard.restart(state, rotate_key=True)
        assert not act.tick(10.0)
        assert act.rotations == 0


class TestDefaultActuators:
    def test_full_ladder_composition(self):
        bed = GuardTestbed()
        acts = default_actuators(bed.guard, random.Random(0))
        names = [a.name for a in acts]
        assert names == ["scheme", "ratelimit", "admission", "key-rotation"]
