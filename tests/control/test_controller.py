"""Closed-loop controller tests: hysteresis, budgets, fail-safe, parity."""

import pytest

from repro.analysis.sanitizer import capture_traces
from repro.control import (
    Actuator,
    ControlConfig,
    GuardController,
    RateLimitActuator,
    SchemeActuator,
)
from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


def _saturate(bed, seconds=5.0):
    """Park enough work on the guard CPU to pin utilisation at 1.0."""
    bed.guard_node.cpu.charge(seconds)


class TestHysteresis:
    def test_escalates_under_sustained_overload(self):
        bed = GuardTestbed()
        ctrl = GuardController(bed.guard).start()
        _saturate(bed)
        bed.run(1.0)
        assert ctrl.level == 3
        assert ctrl.escalations == 3
        assert bed.guard._policy == "drop"
        assert bed.guard.admission.engaged
        assert bed.guard.admission.shed_backlog_fraction == pytest.approx(0.25)
        assert ctrl.last_snapshot.cpu_utilization >= 0.9

    def test_single_hot_sweep_does_not_escalate(self):
        bed = GuardTestbed()
        # one sweep sees the busy window, the next sees idle: the
        # escalate_after debounce must hold the level at 0
        ctrl = GuardController(
            bed.guard, config=ControlConfig(escalate_after=2)
        ).start()
        _saturate(bed, seconds=0.05)
        bed.run(0.5)
        assert ctrl.escalations == 0
        assert ctrl.level == 0

    def test_deescalates_when_load_subsides(self):
        bed = GuardTestbed(guard_policy="dns")
        ctrl = GuardController(
            bed.guard, config=ControlConfig(deescalate_after=3)
        ).start()
        _saturate(bed, seconds=0.4)
        bed.run(3.0)
        assert ctrl.escalations >= 1
        assert ctrl.deescalations >= 1
        assert ctrl.level == 0
        assert bed.guard._policy == "dns"
        assert not bed.guard.admission.engaged

    def test_cooldown_spaces_level_changes(self):
        bed = GuardTestbed()
        ctrl = GuardController(
            bed.guard, config=ControlConfig(escalate_after=1, cooldown=10.0)
        ).start()
        _saturate(bed)
        bed.run(1.0)
        assert ctrl.escalations == 1
        assert ctrl.level == 1

    def test_action_budget_bounds_actuation_rate(self):
        bed = GuardTestbed()
        cfg = ControlConfig(
            escalate_after=1,
            cooldown=0.0,
            max_actions_per_window=1,
            action_window=60.0,
        )
        ctrl = GuardController(bed.guard, config=cfg).start()
        _saturate(bed)
        bed.run(1.0)
        assert ctrl.escalations == 1
        assert ctrl.level == 1
        assert ctrl.actions_suppressed > 0


class _BoomActuator(Actuator):
    """Explodes on any non-zero level; reverts cleanly."""

    name = "boom"

    def _enact(self, level):
        if level:
            raise RuntimeError("actuator exploded")


class TestWatchdog:
    def test_sweep_exception_reverts_and_disables(self):
        bed = GuardTestbed(guard_policy="dns")
        actuators = [
            SchemeActuator(bed.guard),
            RateLimitActuator(bed.guard),
            _BoomActuator(),
        ]
        ctrl = GuardController(bed.guard, actuators=actuators).start()
        base_rate = bed.guard.rl1.per_source_rate
        _saturate(bed)
        bed.run(0.5)
        assert ctrl.failed
        assert "RuntimeError" in (ctrl.failure or "")
        assert ctrl.level == 0
        # the limiter actuator had already tightened before the blow-up;
        # the watchdog must have restored the static base config
        assert bed.guard.rl1.per_source_rate == pytest.approx(base_rate)
        assert bed.guard._policy == "dns"
        assert any(kind == "revert:controller-crash" for _, kind, _ in ctrl.actions)

    def test_failed_controller_stops_sweeping_for_good(self):
        bed = GuardTestbed()
        ctrl = GuardController(bed.guard, actuators=[_BoomActuator()]).start()
        _saturate(bed)
        bed.run(0.5)
        assert ctrl.failed
        sweeps = ctrl.sweeps
        bed.run(0.5)
        assert ctrl.sweeps == sweeps
        # start() on a failed controller must not resurrect it
        assert ctrl.start() is ctrl
        assert ctrl._handle is None


class TestCrashComposition:
    def test_guard_crash_reverts_to_safe_config(self):
        bed = GuardTestbed(guard_policy="dns")
        ctrl = GuardController(bed.guard).start()
        _saturate(bed)
        bed.run(0.42)
        assert ctrl.level >= 1
        state = bed.guard.crash()
        bed.guard.restart(state, rotate_key=True)
        bed.run(0.04)  # crosses exactly one sweep (t=0.45)
        assert ctrl.level == 0
        assert ctrl.reverts == 1
        assert any(kind == "revert:guard-crash" for _, kind, _ in ctrl.actions)
        assert not ctrl.failed
        assert bed.guard._policy == "dns"

    def test_controller_can_reescalate_after_crash_revert(self):
        bed = GuardTestbed()
        ctrl = GuardController(bed.guard).start()
        _saturate(bed, seconds=10.0)
        bed.run(0.42)
        state = bed.guard.crash()
        bed.guard.restart(state, rotate_key=True)
        bed.run(1.0)  # load never went away: the loop should climb back
        assert ctrl.reverts == 1
        assert ctrl.level >= 1
        assert not ctrl.failed


class TestDisabledParity:
    @staticmethod
    def _digests(with_disabled_controller):
        def scenario():
            bed = GuardTestbed(seed=5)
            client = bed.add_client("lrs")
            lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=2)
            if with_disabled_controller:
                ctrl = GuardController(bed.guard, enabled=False)
                ctrl.start()
                assert ctrl._handle is None  # schedules nothing
                assert ctrl.rng is None  # draws nothing
            lrs.start()
            bed.run(0.2)

        with capture_traces() as collector:
            scenario()
        return [(trace.count, trace.hexdigest()) for trace in collector.traces]

    def test_disabled_controller_leaves_trace_bit_identical(self):
        assert self._digests(False) == self._digests(True)


class TestReporting:
    def test_summary_counters(self):
        bed = GuardTestbed()
        ctrl = GuardController(bed.guard).start()
        _saturate(bed)
        bed.run(0.3)
        summary = ctrl.summary()
        assert summary["enabled"] == 1
        assert summary["sweeps"] == ctrl.sweeps > 0
        assert summary["level"] == ctrl.level
        assert summary["failed"] == 0
