"""Multi-node packet taps: dedup, filters, bounded capture."""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.netsim import PacketTracer


def _bed_with_load(**lrs_kwargs):
    bed = GuardTestbed(ans="simulator", ans_mode="referral")
    client = bed.add_client("lrs")
    lrs = LrsSimulator(
        client, ANS_ADDRESS, workload="referral", cache_cookies=False, **lrs_kwargs
    )
    return bed, client, lrs


class TestMultiNode:
    def test_shared_link_tapped_once(self):
        bed, client, lrs = _bed_with_load()
        # guard and ans share one link: tapping both nodes must not
        # double-count the packets crossing it
        both = PacketTracer([bed.guard_node, bed.ans_node])
        guard_only = PacketTracer(bed.guard_node)
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        bed.run(0.05)
        both.detach()
        guard_only.detach()
        guard_ans = guard_only.between(IPv4Address(ANS_ADDRESS), bed.guard_node.address)
        assert len(both.between(IPv4Address(ANS_ADDRESS), bed.guard_node.address)) == len(
            guard_ans
        )
        # ...but the two-node tap sees at least as much traffic overall
        assert len(both) >= len(guard_only)

    def test_empty_node_list_rejected(self):
        with pytest.raises(ValueError):
            PacketTracer([])


class TestFilters:
    def test_src_dst_and_protocol_filters(self):
        bed, client, lrs = _bed_with_load()
        to_ans = PacketTracer(bed.guard_node, dst=ANS_ADDRESS, protocol="udp")
        from_client = PacketTracer(bed.guard_node, src=client.address)
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        bed.run(0.05)
        to_ans.detach()
        from_client.detach()
        assert to_ans.records
        assert all(r.dst == IPv4Address(ANS_ADDRESS) for r in to_ans.records)
        assert all(r.protocol == "udp" for r in to_ans.records)
        assert from_client.records
        assert all(r.src == client.address for r in from_client.records)

    def test_bad_protocol_rejected(self):
        bed, _, _ = _bed_with_load()
        with pytest.raises(ValueError):
            PacketTracer(bed.guard_node, protocol="icmp")


class TestBoundedCapture:
    def test_max_records_counts_overflow(self):
        bed, client, lrs = _bed_with_load()
        tracer = PacketTracer(bed.guard_node, max_records=5)
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        bed.run(0.05)
        tracer.detach()
        assert len(tracer) == 5
        assert tracer.truncated > 0
        assert "not captured (max_records cap)" in tracer.dump()

    def test_zero_cap_stores_nothing(self):
        bed, client, lrs = _bed_with_load()
        tracer = PacketTracer(bed.guard_node, max_records=0)
        lrs.start()
        bed.run(0.02)
        lrs.stop()
        tracer.detach()
        assert len(tracer) == 0
        assert tracer.truncated > 0

    def test_negative_cap_rejected(self):
        bed, _, _ = _bed_with_load()
        with pytest.raises(ValueError):
            PacketTracer(bed.guard_node, max_records=-1)

    def test_clear_resets_truncation(self):
        bed, client, lrs = _bed_with_load()
        tracer = PacketTracer(bed.guard_node, max_records=1)
        lrs.start()
        bed.run(0.02)
        lrs.stop()
        tracer.detach()
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.truncated == 0
