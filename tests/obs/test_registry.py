"""Unit tests for the typed metric registry."""

import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricRegistry


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCounter:
    def test_monotone_total(self):
        registry = MetricRegistry()
        c = registry.counter("packets")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricRegistry().counter("packets")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_interval_buckets_follow_the_clock(self):
        clock = _Clock()
        registry = MetricRegistry(clock)
        c = registry.counter("reqs", interval=0.1)
        c.inc()
        clock.now = 0.05
        c.inc()
        clock.now = 0.25
        c.inc(3)
        assert c.series() == [(0.0, 2.0), (pytest.approx(0.2), 3.0)]
        assert c.rate_series() == [(0.0, pytest.approx(20.0)), (pytest.approx(0.2), pytest.approx(30.0))]

    def test_no_interval_means_no_series(self):
        c = MetricRegistry().counter("reqs")
        c.inc()
        assert c.series() == []

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("reqs", interval=0.0)


class TestGauge:
    def test_set_add_and_history(self):
        clock = _Clock()
        g = MetricRegistry(clock).gauge("depth", track_history=True)
        g.set(3)
        clock.now = 1.0
        g.add(2)
        assert g.value == 5.0
        assert g.history == [(0.0, 3.0), (1.0, 5.0)]
        assert g.mean() == pytest.approx(4.0)

    def test_history_off_by_default(self):
        g = MetricRegistry().gauge("depth")
        g.set(1)
        assert g.history == []
        assert g.mean() == 0.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = MetricRegistry().histogram("lat", buckets=(1.0, 2.0, 3.0))
        h.observe(1.0)  # exactly on an edge: belongs to that bucket
        h.observe(2.0)
        h.observe(2.0001)  # just past an edge: next bucket
        h.observe(99.0)  # beyond the last edge: overflow
        assert h.counts == [1, 1, 1, 1]

    def test_cumulative_and_percentile(self):
        h = MetricRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(9):
            h.observe(0.005)
        h.observe(0.5)
        assert h.cumulative() == [(0.01, 9), (0.1, 9), (1.0, 10), (math.inf, 10)]
        assert h.percentile(50) == 0.01
        assert h.percentile(99) == 1.0

    def test_empty_percentile_is_nan(self):
        h = MetricRegistry().histogram("lat")
        assert math.isnan(h.percentile(50))

    def test_empty_snapshot_has_null_min_max(self):
        snap = MetricRegistry().histogram("lat").snapshot()
        assert snap["min"] is None and snap["max"] is None

    def test_min_max_sum(self):
        h = MetricRegistry().histogram("lat")
        h.observe(0.2)
        h.observe(0.05)
        assert h.min == 0.05
        assert h.max == 0.2
        assert h.sum == pytest.approx(0.25)
        assert h.mean() == pytest.approx(0.125)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            MetricRegistry().histogram("lat", buckets=(1.0, 1.0))


class TestRegistry:
    def test_same_name_and_labels_return_same_metric(self):
        registry = MetricRegistry()
        a = registry.counter("drops", reason="invalid")
        b = registry.counter("drops", reason="invalid")
        c = registry.counter("drops", reason="overload")
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_iteration_is_deterministic(self):
        registry = MetricRegistry()
        registry.counter("b")
        registry.counter("a", z="1")
        registry.counter("a", k="0")
        names = [m.full_name for m in registry]
        assert names == sorted(names)

    def test_find_collects_all_label_sets(self):
        registry = MetricRegistry()
        registry.counter("drops", reason="a")
        registry.counter("drops", reason="b")
        registry.counter("other")
        assert len(registry.find("drops")) == 2

    def test_full_name_formatting(self):
        registry = MetricRegistry()
        assert registry.counter("plain").full_name == "plain"
        labelled = registry.counter("dec", scheme="tcp", outcome="drop")
        assert labelled.full_name == "dec{outcome=drop,scheme=tcp}"

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricRegistry()
        registry.counter("c", interval=0.1).inc()
        registry.gauge("g", track_history=True).set(1)
        registry.histogram("h").observe(0.5)
        json.dumps(registry.snapshot())
