"""Wall-clock profiler: attribution, simulator integration, bench export."""

import json

from repro.netsim import Simulator
from repro.obs import Observability, WallClockProfiler, installed, write_bench_profile


class TestProfilerUnit:
    def test_record_attributes_time_to_handlers(self):
        prof = WallClockProfiler()

        def handler():
            pass

        prof.record(handler, 0.25, 3)
        prof.record(handler, 0.25, 7)
        assert prof.events == 2
        assert prof.total_seconds == 0.5
        assert prof.max_heap_depth == 7
        assert prof.events_per_second() == 4.0
        ((key, stats),) = prof.top_handlers()
        assert key.endswith("handler")
        assert stats.calls == 2

    def test_bound_methods_collapse_per_class(self):
        class Thing:
            def cb(self):
                pass

        prof = WallClockProfiler()
        prof.record(Thing().cb, 0.1, 1)
        prof.record(Thing().cb, 0.1, 1)
        assert len(prof.handlers) == 1
        (key,) = prof.handlers
        assert key.endswith("Thing.cb")

    def test_report_lists_top_handlers(self):
        prof = WallClockProfiler()
        prof.record(lambda: None, 0.01, 1)
        report = prof.report()
        assert "events / second" in report
        assert "<lambda>" in report

    def test_empty_profiler_rates_zero(self):
        assert WallClockProfiler().events_per_second() == 0.0


class TestSimulatorIntegration:
    def test_step_feeds_the_profiler(self):
        obs = Observability(profile=True)
        with installed(obs):
            sim = Simulator(seed=0)
            for i in range(50):
                sim.schedule(i * 0.001, lambda: None)
            sim.run(until=1.0)
        assert obs.profiler is sim.step_profiler
        assert obs.profiler.events == 50
        assert obs.profiler.total_seconds > 0.0
        assert obs.profiler.max_heap_depth >= 1

    def test_no_profiler_by_default(self):
        sim = Simulator(seed=0)
        assert sim.step_profiler is None


class TestBenchExport:
    def test_write_bench_profile(self, tmp_path):
        prof = WallClockProfiler()
        prof.record(lambda: None, 0.5, 2)
        path = tmp_path / "BENCH_profile.json"
        doc = write_bench_profile(prof, str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert on_disk["benchmark"] == "simulator-event-loop"
        assert on_disk["unit"] == "events/sec"
        assert on_disk["value"] == 2.0
        assert on_disk["detail"]["events"] == 1
