"""Exporter round-trips and run-report rendering."""

import json

from repro.obs import (
    MetricRegistry,
    SpanLog,
    load_metrics,
    load_series_csv,
    load_spans,
    metrics_to_json,
    render_report,
    series_to_csv,
    spans_to_json,
)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _populated_registry() -> MetricRegistry:
    clock = _Clock()
    registry = MetricRegistry(clock)
    c = registry.counter("reqs", interval=0.1, scheme="modified")
    c.inc(2)
    clock.now = 0.15
    c.inc()
    g = registry.gauge("util", track_history=True, node="ans")
    g.set(0.25)
    clock.now = 0.3
    g.set(0.5)
    h = registry.histogram("latency", buckets=(0.01, 0.1, 1.0))
    h.observe(0.02)
    h.observe(0.5)
    return registry


class TestMetricsRoundTrip:
    def test_json_round_trip_preserves_snapshots(self):
        registry = _populated_registry()
        loaded = load_metrics(metrics_to_json(registry))
        assert loaded == registry.snapshot()

    def test_series_csv_round_trip(self):
        registry = _populated_registry()
        rows = load_series_csv(series_to_csv(registry))
        assert ("reqs", "{scheme=modified}", 0.0, 2.0) in rows
        assert ("reqs", "{scheme=modified}", 0.1, 1.0) in rows
        assert ("util", "{node=ans}", 0.3, 0.5) in rows
        # histograms have no time series; only counter+gauge rows appear
        assert all(name in ("reqs", "util") for name, *_ in rows)

    def test_float_precision_survives_csv(self):
        clock = _Clock()
        registry = MetricRegistry(clock)
        g = registry.gauge("g", track_history=True)
        clock.now = 0.30000000000000004  # classic float artefact
        g.set(1.0 / 3.0)
        (row,) = load_series_csv(series_to_csv(registry))
        assert row[2] == 0.30000000000000004
        assert row[3] == 1.0 / 3.0


class TestSpansRoundTrip:
    def test_round_trip_preserves_tree(self):
        clock = _Clock()
        log = SpanLog(clock)
        root = log.start("query", qname="www.foo.com.")
        clock.now = 0.5
        child = root.child("attempt", n=0)
        clock.now = 1.0
        child.finish(outcome="ok")
        root.finish()
        log.start("unfinished")

        loaded = load_spans(spans_to_json(log))
        assert loaded.snapshot() == log.snapshot()
        new_root = loaded.named("query")[0]
        assert [s.name for s in loaded.children_of(new_root)] == ["attempt"]
        assert loaded.named("unfinished")[0].end is None

    def test_loaded_log_can_keep_growing(self):
        log = SpanLog(_Clock())
        log.start("a").finish()
        loaded = load_spans(spans_to_json(log))
        extra = loaded.start("b")
        assert extra.span_id not in {s.span_id for s in log.spans}

    def test_dropped_count_preserved(self):
        log = SpanLog(_Clock(), max_spans=1)
        log.start("a")
        log.start("b")
        assert load_spans(spans_to_json(log)).dropped == 1


class TestRunReport:
    def test_report_sections(self):
        registry = _populated_registry()
        log = SpanLog(_Clock())
        log.start("lrs.interaction").finish()
        report = render_report(registry, log, profiler_report="1234 events/sec")
        assert "== run report ==" in report
        assert "-- counters (1) --" in report
        assert "-- gauges (1) --" in report
        assert "-- histograms (1) --" in report
        assert "reqs{scheme=modified}" in report
        assert "lrs.interaction" in report
        assert "1234 events/sec" in report

    def test_empty_report_has_no_sections(self):
        report = render_report(MetricRegistry(), SpanLog(_Clock()))
        assert "counters" not in report
        assert "spans" not in report

    def test_metrics_json_is_valid_json(self):
        json.loads(metrics_to_json(_populated_registry()))
