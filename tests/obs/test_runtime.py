"""Observability context: installation, collection, exports, CLI smoke."""

import json

from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.netsim import Simulator
from repro.obs import Observability, current, installed, load_spans


def _observed_run(**obs_kwargs):
    obs = Observability(**obs_kwargs)
    with installed(obs):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        obs.tap(bed.guard_node, protocol="udp", max_records=25)
        client = bed.add_client("lrs", via_local_guard=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
        lrs.start()
        bed.run(0.05)
        lrs.stop()
    return obs


class TestInstallation:
    def test_simulators_attach_while_installed(self):
        obs = Observability()
        with installed(obs):
            assert current() is obs
            sim = Simulator(seed=0)
            assert sim.obs is obs
        assert current() is None
        assert Simulator(seed=0).obs is None

    def test_clock_follows_latest_simulator(self):
        obs = Observability()
        with installed(obs):
            sim = Simulator(seed=0)
            sim.schedule(1.5, lambda: None)
            sim.run(until=2.0)
        assert obs.now == sim.now
        assert obs.registry.now() == sim.now
        assert obs.now >= 1.5


class TestCollect:
    def test_collect_pulls_node_link_and_component_stats(self):
        obs = _observed_run()
        obs.collect()
        names = {m.name for m in obs.registry}
        assert "node.packets_dropped" in names
        assert "link.packets_sent" in names
        assert "guard.guard.queries_seen" in names
        assert "ans.ans.requests_served" in names
        queries_seen = [
            m for m in obs.registry if m.full_name == "guard.guard.queries_seen"
        ]
        assert queries_seen and queries_seen[0].value > 0

    def test_collect_is_idempotent(self):
        obs = _observed_run()
        obs.collect()
        count = len(obs.registry)
        obs.collect()
        assert len(obs.registry) == count

    def test_guard_decisions_counted(self):
        obs = _observed_run()
        decisions = obs.registry.find("guard.decisions")
        assert decisions
        assert sum(m.value for m in decisions) > 0
        # decision counters are time-bucketed for rate series
        assert any(m.series() for m in decisions)


class TestWrite:
    def test_write_emits_all_artifacts(self, tmp_path):
        obs = _observed_run(profile=True)
        written = obs.write(str(tmp_path))
        names = {p.rsplit("/", 1)[-1] for p in written}
        assert names == {
            "metrics.json",
            "series.csv",
            "spans.json",
            "report.txt",
            "trace.txt",
            "profile.json",
        }
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert any(m["name"] == "guard.decisions" for m in metrics)
        spans = load_spans((tmp_path / "spans.json").read_text())
        assert spans.named("lrs.interaction")
        profile = json.loads((tmp_path / "profile.json").read_text())
        assert profile["value"] > 0
        report = (tmp_path / "report.txt").read_text()
        assert "-- profile (host wall clock) --" in report
        trace = (tmp_path / "trace.txt").read_text()
        assert "DNS query" in trace

    def test_write_without_taps_or_profiler(self, tmp_path):
        obs = Observability()
        with installed(obs):
            sim = Simulator(seed=0)
            sim.schedule(0.1, lambda: None)
            sim.run(until=1.0)
        names = {p.rsplit("/", 1)[-1] for p in obs.write(str(tmp_path))}
        assert "trace.txt" not in names
        assert "profile.json" not in names


class TestCliSmoke:
    def test_obs_command_prints_report(self, capsys):
        from repro.__main__ import main

        assert main(["obs", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "guard.decisions" in out
        assert "events / second" in out

    def test_obs_flag_exports_from_any_command(self, tmp_path, capsys):
        from repro.__main__ import main

        out_dir = tmp_path / "exported"
        assert main(["demo", "--obs", str(out_dir)]) == 0
        capsys.readouterr()
        assert (out_dir / "report.txt").exists()
        assert (out_dir / "metrics.json").exists()
