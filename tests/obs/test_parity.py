"""The load-bearing invariant: observability must not perturb the trace.

Each scenario runs twice — bare, and under a fully armed Observability
(profiler on, packet taps attached) — and the full event-trace digests
must be bit-identical.  Spans, counters, taps and the profiler may only
*watch* the simulation.
"""

from repro.analysis.sanitizer import capture_traces
from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.obs import Observability, installed


def _modified_scheme_under_attack() -> None:
    from repro.attack import SpoofingAttacker

    bed = GuardTestbed(seed=3, ans="simulator", ans_mode="answer")
    client = bed.add_client("lrs", via_local_guard=True)
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
    attacker = SpoofingAttacker(
        bed.add_client("attacker"), ANS_ADDRESS, rate=2_000, carry_invalid_cookie=True
    )
    lrs.start()
    attacker.start()
    bed.run(0.1)


def _tcp_fallback_scheme() -> None:
    bed = GuardTestbed(seed=5, ans="simulator", ans_mode="answer", guard_policy="tcp")
    client = bed.add_client("lrs")
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
    lrs.start()
    bed.run(0.1)
    lrs.stop()


def _faulted_run() -> None:
    from repro.faults import FaultPlan, LinkDown

    bed = GuardTestbed(seed=7, ans="simulator", ans_mode="referral")
    client = bed.add_client("lrs")
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral")
    plan = FaultPlan()
    plan.add(0.02, LinkDown(bed.ans_link, duration=0.02))
    plan.schedule(bed.sim)
    lrs.start()
    bed.run(0.1)
    lrs.stop()


def _digest(scenario, *, observed: bool) -> str:
    with capture_traces() as collector:
        if observed:
            obs = Observability(profile=True)
            with installed(obs):
                scenario()
            obs.collect()
            assert len(obs.registry) > 0  # the run was actually observed
        else:
            scenario()
    return collector.combined_hexdigest()


class TestSanitizeParity:
    def test_modified_scheme_trace_identical_with_obs(self):
        assert _digest(_modified_scheme_under_attack, observed=False) == _digest(
            _modified_scheme_under_attack, observed=True
        )

    def test_tcp_fallback_trace_identical_with_obs(self):
        assert _digest(_tcp_fallback_scheme, observed=False) == _digest(
            _tcp_fallback_scheme, observed=True
        )

    def test_faulted_trace_identical_with_obs(self):
        assert _digest(_faulted_run, observed=False) == _digest(
            _faulted_run, observed=True
        )

    def test_packet_tap_does_not_change_trace(self):
        def tapped() -> None:
            obs = Observability()
            with installed(obs):
                bed = GuardTestbed(seed=5, ans="simulator", ans_mode="answer")
                obs.tap([bed.guard_node, bed.ans_node], protocol="udp", max_records=10)
                client = bed.add_client("lrs")
                lrs = LrsSimulator(client, ANS_ADDRESS, workload="nonreferral")
                lrs.start()
                bed.run(0.1)

        def bare() -> None:
            bed = GuardTestbed(seed=5, ans="simulator", ans_mode="answer")
            client = bed.add_client("lrs")
            lrs = LrsSimulator(client, ANS_ADDRESS, workload="nonreferral")
            lrs.start()
            bed.run(0.1)

        with capture_traces() as a:
            bare()
        with capture_traces() as b:
            tapped()
        assert a.combined_hexdigest() == b.combined_hexdigest()
