"""Span model unit tests plus real-scenario lifecycle nesting."""

import pytest

from repro.dns import LrsSimulator, StubResolver
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.netsim import Link, Node, Simulator
from repro.obs import NULL_SPAN, Observability, SpanLog, installed


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanLog:
    def test_parent_child_linkage(self):
        clock = _Clock()
        log = SpanLog(clock)
        root = log.start("query")
        clock.now = 0.5
        child = root.child("attempt", n=0)
        clock.now = 1.0
        child.finish(outcome="ok")
        root.finish()
        assert child.parent_id == root.span_id
        assert child.start == 0.5
        assert child.duration == 0.5
        assert child.attrs == {"n": 0, "outcome": "ok"}
        assert log.children_of(root) == [child]
        assert log.roots() == [root]

    def test_finish_is_idempotent(self):
        clock = _Clock()
        log = SpanLog(clock)
        span = log.start("s")
        clock.now = 1.0
        span.finish()
        clock.now = 2.0
        span.finish()
        assert span.end == 1.0

    def test_point_spans_are_zero_duration(self):
        clock = _Clock()
        log = SpanLog(clock)
        clock.now = 3.0
        root = log.start("root")
        p = log.point("decision", parent=root, outcome="drop")
        assert p.start == p.end == 3.0
        assert p.finished
        assert p.parent_id == root.span_id

    def test_at_override_for_planned_timelines(self):
        log = SpanLog(_Clock())
        span = log.start("fault", at=7.5)
        span.finish(at=9.0)
        assert (span.start, span.end) == (7.5, 9.0)

    def test_cap_returns_inert_null_span(self):
        log = SpanLog(_Clock(), max_spans=2)
        log.start("a")
        log.start("b")
        overflow = log.start("c")
        assert overflow is NULL_SPAN
        assert log.dropped == 1
        # the null span absorbs the whole API without errors
        overflow.set(x=1)
        overflow.finish(outcome="?")
        assert overflow.child("d") is NULL_SPAN
        assert len(log) == 2

    def test_render_indents_children(self):
        clock = _Clock()
        log = SpanLog(clock)
        root = log.start("outer")
        root.child("inner").finish()
        root.finish()
        lines = log.render().splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")

    def test_named_lookup(self):
        log = SpanLog(_Clock())
        log.start("x")
        log.start("y")
        log.start("x")
        assert len(log.named("x")) == 2


class TestScenarioSpans:
    """Spans captured from real simulations, crossing nodes and protocols."""

    def _run(
        self,
        *,
        guard_policy: str = "dns",
        workload: str = "plain",
        via_local_guard: bool = False,
        duration: float = 0.1,
    ):
        obs = Observability()
        with installed(obs):
            bed = GuardTestbed(
                ans="simulator", ans_mode="answer", guard_policy=guard_policy
            )
            client = bed.add_client("lrs", via_local_guard=via_local_guard)
            lrs = LrsSimulator(client, ANS_ADDRESS, workload=workload)
            lrs.start()
            bed.run(duration)
            lrs.stop()
        return obs

    def test_udp_lifecycle_nests_interaction_leg_ans(self):
        obs = self._run(via_local_guard=True)
        interactions = obs.spans.named("lrs.interaction")
        assert interactions
        completed = [s for s in interactions if s.attrs.get("completed")]
        assert completed
        legs = obs.spans.children_of(completed[0])
        assert [s.name for s in legs] == ["lrs.leg"]
        grandchildren = {s.name for s in obs.spans.children_of(legs[0])}
        assert "ans.serve" in grandchildren

    def test_tcp_fallback_nests_under_interaction(self):
        obs = self._run(guard_policy="tcp", duration=0.2)
        fallbacks = obs.spans.named("lrs.tcp_fallback")
        assert fallbacks
        span = fallbacks[0]
        parent = obs.spans.named("lrs.interaction")[0]
        assert span.parent_id == parent.span_id
        answered = [s for s in fallbacks if s.attrs.get("outcome") == "answered"]
        assert answered

    def test_stub_retries_produce_attempt_children(self):
        obs = Observability()
        with installed(obs):
            sim = Simulator(seed=1)
            client = Node(sim, "client")
            client.add_address("10.0.0.1")
            blackhole = Node(sim, "hole")
            blackhole.add_address("10.0.0.2")
            link = Link(sim, client, blackhole, delay=0.001)
            client.set_default_route(link)
            stub = StubResolver(
                client, blackhole.address, timeout=0.05, retries=2
            )
            results = []
            stub.query("www.example.com.", callback=results.append)
            sim.run(until=1.0)
        assert results and results[0].status == "timeout"
        query = obs.spans.named("stub.query")[0]
        attempts = obs.spans.children_of(query)
        assert [s.name for s in attempts] == ["stub.attempt"] * 3
        assert query.attrs["retries"] == 2
        assert all(s.attrs.get("outcome") == "timeout" for s in attempts[:-1])

    def test_fault_plan_renders_planned_timeline(self):
        from repro.faults import FaultPlan, LinkDown

        obs = Observability()
        with installed(obs):
            sim = Simulator(seed=0)
            a = Node(sim, "a")
            b = Node(sim, "b")
            link = Link(sim, a, b)
            plan = FaultPlan()
            plan.add(0.5, LinkDown(link, duration=0.25))
            plan.schedule(sim)
            sim.run(until=1.0)
        starts = obs.spans.named("fault.start")
        stops = obs.spans.named("fault.stop")
        assert [s.start for s in starts] == [0.5]
        assert [s.start for s in stops] == [0.75]
        assert starts[0].attrs["kind"] == "LinkDown"
        planned = obs.registry.find("faults.planned")
        assert planned and planned[0].value == 1


class TestDisabledCost:
    def test_no_spans_collected_without_observability(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        assert bed.sim.obs is None
        assert lrs.stats.completed > 0
