"""Unit-level tests for the remote guard pipeline internals."""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.dnswire import make_query
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


class TestActivationThreshold:
    def test_below_threshold_passes_through(self):
        bed = GuardTestbed(
            ans="simulator", ans_mode="answer", activation_threshold=50_000.0
        )
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=4)
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        # ~10K req/s offered, well below the threshold: no fabrications
        assert bed.guard.referrals_fabricated == 0
        assert bed.guard.forwarded_inactive > 0
        assert lrs.stats.completed > 1000

    def test_above_threshold_engages_detection(self):
        from repro.attack import SpoofingAttacker

        bed = GuardTestbed(
            ans="simulator", ans_mode="answer", activation_threshold=50_000.0
        )
        attacker = SpoofingAttacker(bed.add_client("atk"), ANS_ADDRESS, rate=100_000)
        attacker.start()
        bed.run(0.3)
        attacker.stop()
        # the estimator needs up to one window (~100 ms) to see the ramp;
        # after that, plain queries earn fabricated referrals instead of
        # reaching the ANS
        assert bed.guard.referrals_fabricated > 0
        served_early = bed.ans.requests_served
        assert served_early < 100_000 * 0.11  # at most ~one window leaked
        bed.run(0.1)
        # ...and nothing more leaks once detection is engaged
        assert bed.ans.requests_served == served_early

    def test_detection_disengages_when_attack_stops(self):
        from repro.attack import SpoofingAttacker

        bed = GuardTestbed(
            ans="simulator", ans_mode="answer", activation_threshold=50_000.0
        )
        attacker = SpoofingAttacker(bed.add_client("atk"), ANS_ADDRESS, rate=100_000)
        attacker.start()
        bed.run(0.1)
        attacker.stop()
        bed.run(0.3)  # quiet period
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=1)
        fabricated_before = bed.guard.referrals_fabricated
        lrs.start()
        bed.run(0.1)
        lrs.stop()
        assert bed.guard.referrals_fabricated == fabricated_before
        assert lrs.stats.completed > 50


class TestPerSourcePolicy:
    def test_policy_callable_dispatches_by_source(self):
        tcp_client_ip = IPv4Address("10.0.2.1")

        def policy(source):
            return "tcp" if source == tcp_client_ip else "dns"

        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy=policy)
        dns_client = bed.add_client("dns-client")
        tcp_client = bed.add_client("tcp-client", address=tcp_client_ip)
        responses = {}

        for name, node in (("dns", dns_client), ("tcp", tcp_client)):
            sock = node.udp.bind_ephemeral(
                lambda p, s, sp, d, key=name: responses.__setitem__(key, p)
            )
            sock.send(make_query("www.foo.com", msg_id=1), ANS_ADDRESS, 53)
        bed.run(0.1)
        assert responses["tcp"].header.tc
        assert not responses["dns"].header.tc
        assert responses["dns"].authorities  # a fabricated referral


class TestMultipleAnsAddresses:
    def test_fabricated_name_carries_every_glue_address(self):
        """§III.B: one fabricated name maps to all of a domain's ANS IPs."""
        from repro.dns import AuthoritativeServer, Zone
        from repro.dnswire import soa_record

        bed = GuardTestbed(ans="bind", zone_origin=".")
        zone = Zone(".")
        zone.add(soa_record("."))
        zone.delegate("com.", "a.gtld-servers.net.", "192.5.6.30")
        zone.delegate("com.", "b.gtld-servers.net.", "192.33.14.30")
        bed.ans.zones = [zone]
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, "www.foo.com", workload="referral")
        lrs.record_latencies = False
        responses = []

        # drive the exchange by hand to inspect message 6
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: responses.append(p))
        sock.send(make_query("www.foo.com", msg_id=1), ANS_ADDRESS, 53)
        bed.run(0.05)
        referral = responses[-1]
        ns_target = referral.authorities[0].rdata.target
        sock.send(make_query(ns_target, msg_id=2), ANS_ADDRESS, 53)
        bed.run(0.05)
        answer = responses[-1]
        addresses = {rr.rdata.address for rr in answer.answers}
        assert addresses == {IPv4Address("192.5.6.30"), IPv4Address("192.33.14.30")}


class TestCounters:
    def test_counters_track_full_exchange(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", cache_cookies=False)
        lrs.start()
        bed.run(0.1)
        lrs.stop()
        done = lrs.stats.completed
        assert bed.guard.queries_seen >= 2 * done  # msg1 + msg3 per iteration
        assert bed.guard.referrals_fabricated >= done
        assert bed.guard.valid_cookies >= done
        assert bed.guard.responses_transformed >= done

    def test_pending_exchange_gauge(self):
        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        assert bed.guard.pending_exchanges == 0
