"""Unit tests for cookie-name encoding and response fabrication (§III.B)."""

from ipaddress import IPv4Address

from repro.dnswire import Name, RRType, a_record, make_query
from repro.guard import (
    CookieFactory,
    cookie_name_answer,
    decode_cookie_name,
    delegation_owner,
    encode_cookie_name,
    fabricated_referral,
    random_key,
)

ROOT = Name.root()
FOO = Name.from_text("foo.com")
COOKIE = b"PRa1b2c3d4"


class TestCoreSeam:
    def test_adapter_reexports_the_pure_core_codec(self):
        """guard.dns_scheme is a shim over guard.core.dns_scheme — same
        objects, so round-trips below cover both import paths."""
        from repro.guard import core, dns_scheme

        assert dns_scheme.encode_cookie_name is core.dns_scheme.encode_cookie_name
        assert dns_scheme.decode_cookie_name is core.dns_scheme.decode_cookie_name
        assert dns_scheme.delegation_owner is core.dns_scheme.delegation_owner

    def test_core_round_trip_without_adapter(self):
        from repro.guard.core.dns_scheme import decode_cookie_name as dec
        from repro.guard.core.dns_scheme import encode_cookie_name as enc

        qname = Name.from_text("ns.example.net")
        decoded = dec(enc(COOKIE, qname, ROOT), ROOT)
        assert decoded.cookie_label == COOKIE
        assert decoded.original_qname == qname


class TestCookieNameCodec:
    def test_root_origin_round_trip(self):
        qname = Name.from_text("www.foo.com")
        encoded = encode_cookie_name(COOKIE, qname, ROOT)
        assert len(encoded) == 1  # single label under the root
        decoded = decode_cookie_name(encoded, ROOT)
        assert decoded is not None
        assert decoded.cookie_label == COOKIE
        assert decoded.original_qname == qname

    def test_leaf_origin_round_trip(self):
        qname = Name.from_text("www.foo.com")
        encoded = encode_cookie_name(COOKIE, qname, FOO)
        assert encoded.parent() == FOO  # one label below foo.com
        decoded = decode_cookie_name(encoded, FOO)
        assert decoded.original_qname == qname

    def test_deep_name_round_trip(self):
        qname = Name.from_text("a.b.c.foo.com")
        decoded = decode_cookie_name(encode_cookie_name(COOKIE, qname, FOO), FOO)
        assert decoded.original_qname == qname

    def test_origin_itself_round_trip(self):
        decoded = decode_cookie_name(encode_cookie_name(COOKIE, FOO, FOO), FOO)
        assert decoded.original_qname == FOO

    def test_too_long_name_returns_none(self):
        qname = Name([b"x" * 60, b"com"])
        assert encode_cookie_name(COOKIE, qname, ROOT) is None

    def test_decode_rejects_normal_names(self):
        assert decode_cookie_name(Name.from_text("www.foo.com"), ROOT) is None
        assert decode_cookie_name(Name.from_text("com"), ROOT) is None

    def test_decode_rejects_wrong_depth(self):
        encoded = encode_cookie_name(COOKIE, Name.from_text("www.foo.com"), ROOT)
        # the same label one level deeper is not a cookie name for the root
        deeper = Name((encoded.labels[0], b"com"))
        assert decode_cookie_name(deeper, ROOT) is None
        # ... but it is a valid cookie name under origin "com"
        assert decode_cookie_name(deeper, Name.from_text("com")) is not None

    def test_decode_rejects_prefix_only_lookalikes(self):
        assert decode_cookie_name(Name([b"PRshort"]), ROOT) is None

    def test_label_is_wire_safe(self):
        """The encoded name must survive the wire codec."""
        from repro.dnswire import Message

        qname = Name.from_text("www.foo.com")
        encoded = encode_cookie_name(COOKIE, qname, ROOT)
        query = make_query(encoded, RRType.A, msg_id=5)
        decoded_query = Message.decode(query.encode())
        assert decode_cookie_name(decoded_query.question.qname, ROOT).original_qname == qname


class TestDelegationOwner:
    def test_root_guard_delegates_tld(self):
        assert delegation_owner(Name.from_text("www.foo.com"), ROOT) == Name.from_text("com")

    def test_leaf_guard_delegates_next_label(self):
        assert delegation_owner(Name.from_text("www.foo.com"), FOO) == Name.from_text(
            "www.foo.com"
        )

    def test_deep_name_delegates_one_level(self):
        assert delegation_owner(Name.from_text("a.b.foo.com"), FOO) == Name.from_text(
            "b.foo.com"
        )

    def test_origin_query(self):
        assert delegation_owner(FOO, FOO) == FOO


class TestFabrication:
    def test_fabricated_referral_shape(self):
        query = make_query("www.foo.com", msg_id=9)
        factory = CookieFactory(random_key())
        label = factory.label_cookie(IPv4Address("10.0.0.53"))
        reply = fabricated_referral(query, ROOT, label, ttl=3600)
        assert reply.header.qr and not reply.header.aa
        assert reply.answers == []
        (ns,) = reply.authorities
        assert ns.rtype == RRType.NS
        assert ns.name == Name.from_text("com")
        assert ns.ttl == 3600
        assert reply.additionals == []  # fabricated referrals carry no glue

    def test_fabricated_referral_amplification_bounded(self):
        """§III.E bounds the response growth to one compressed NS record.

        The paper quotes ~24 bytes (embedding only the next label); we embed
        the full original name for universal restoration, costing a few more
        bytes but still nowhere near the 10x amplification of an unguarded
        ANS.  At the IP level the ratio stays well under the paper's 50%
        bound plus the extra name bytes.
        """
        query = make_query("www.foo.com", msg_id=9)
        factory = CookieFactory(random_key())
        label = factory.label_cookie(IPv4Address("10.0.0.53"))
        reply = fabricated_referral(query, ROOT, label)
        amplification = reply.wire_size() - query.wire_size()
        assert amplification <= 24 + len("www.foo.com")
        ip_level_ratio = (reply.wire_size() + 28) / (query.wire_size() + 28)
        assert ip_level_ratio < 1.7

    def test_fabricated_referral_none_when_name_too_long(self):
        query = make_query(Name([b"y" * 60, b"org"]), msg_id=1)
        assert fabricated_referral(query, ROOT, COOKIE) is None

    def test_cookie_name_answer_from_glue(self):
        cookie_qname = encode_cookie_name(COOKIE, Name.from_text("www.foo.com"), ROOT)
        query = make_query(cookie_qname, RRType.A, msg_id=2)
        glue = [a_record("ns1.com", "192.5.6.30", ttl=172800)]
        reply = cookie_name_answer(query, glue)
        (answer,) = reply.answers
        assert answer.name == cookie_qname  # renamed to the fabricated NS
        assert answer.rdata.address == IPv4Address("192.5.6.30")
        assert answer.ttl == 172800  # the real ANS IP keeps its own TTL

    def test_cookie_name_answer_from_raw_address(self):
        cookie_qname = encode_cookie_name(COOKIE, Name.from_text("www.foo.com"), ROOT)
        query = make_query(cookie_qname, RRType.A, msg_id=3)
        reply = cookie_name_answer(query, [IPv4Address("1.2.3.7")], ttl=604800)
        (answer,) = reply.answers
        assert answer.rdata.address == IPv4Address("1.2.3.7")
        assert answer.ttl == 604800
