"""Unit tests for cookie generation, encodings and key rotation (§III.E)."""

import hashlib
from ipaddress import IPv4Address

import pytest

from repro.guard import CookieFactory, KEY_LENGTH, LABEL_COOKIE_LENGTH, random_key

LRS = IPv4Address("10.0.0.53")
OTHER = IPv4Address("192.0.2.7")


class TestFullCookie:
    def test_cookie_is_md5_of_ip_and_key(self):
        key = bytes(range(76))
        factory = CookieFactory(key)
        expected = hashlib.md5(LRS.packed + key).digest()
        got = factory.cookie(LRS)
        # generation 0 stamps the first bit to 0
        assert got[1:] == expected[1:]
        assert got[0] == expected[0] & 0x7F

    def test_input_is_one_md5_block(self):
        # 76-byte key + 4-byte IP = 80 bytes, as the paper specifies
        assert KEY_LENGTH + 4 == 80

    def test_verify_accepts_own_cookie(self):
        factory = CookieFactory(random_key())
        assert factory.verify(factory.cookie(LRS), LRS)

    def test_verify_rejects_wrong_source(self):
        factory = CookieFactory(random_key())
        assert not factory.verify(factory.cookie(LRS), OTHER)

    def test_verify_rejects_garbage(self):
        factory = CookieFactory(random_key())
        assert not factory.verify(b"\x00" * 16, LRS)
        assert not factory.verify(b"short", LRS)

    def test_cookies_differ_per_source(self):
        factory = CookieFactory(random_key())
        assert factory.cookie(LRS) != factory.cookie(OTHER)

    def test_cookies_differ_per_key(self):
        assert CookieFactory(random_key()).cookie(LRS) != CookieFactory(
            random_key()
        ).cookie(LRS)

    def test_bad_key_length_rejected(self):
        with pytest.raises(ValueError):
            CookieFactory(b"short")

    def test_computation_counter(self):
        factory = CookieFactory(random_key())
        factory.cookie(LRS)
        factory.verify(factory.cookie(LRS), LRS)
        assert factory.computations == 3  # cookie + cookie + verify


class TestKeyRotation:
    def test_old_cookie_valid_for_one_generation(self):
        factory = CookieFactory(random_key())
        old = factory.cookie(LRS)
        factory.rotate()
        assert factory.verify(old, LRS)

    def test_old_cookie_dies_after_two_rotations(self):
        factory = CookieFactory(random_key())
        old = factory.cookie(LRS)
        factory.rotate()
        factory.rotate()
        assert not factory.verify(old, LRS)

    def test_new_cookie_valid_after_rotation(self):
        factory = CookieFactory(random_key())
        factory.rotate()
        assert factory.verify(factory.cookie(LRS), LRS)

    def test_generation_bit_flips(self):
        factory = CookieFactory(random_key())
        gen0 = factory.cookie(LRS)
        factory.rotate()
        gen1 = factory.cookie(LRS)
        assert gen0[0] >> 7 == 0
        assert gen1[0] >> 7 == 1

    def test_verification_needs_one_md5(self):
        """§III.E: the generation bit means each check costs one MD5."""
        factory = CookieFactory(random_key())
        old = factory.cookie(LRS)
        factory.rotate()
        before = factory.computations
        factory.verify(old, LRS)
        assert factory.computations == before + 1

    def test_label_cookie_survives_rotation(self):
        factory = CookieFactory(random_key())
        label = factory.label_cookie(LRS)
        factory.rotate()
        assert factory.verify_label(label, LRS)


class TestLabelCookie:
    def test_format_is_prefix_plus_hex(self):
        factory = CookieFactory(random_key())
        label = factory.label_cookie(LRS)
        assert len(label) == LABEL_COOKIE_LENGTH == 10
        assert label.startswith(b"PR")
        int(label[2:].decode(), 16)  # must be valid hex

    def test_round_trip(self):
        factory = CookieFactory(random_key())
        assert factory.verify_label(factory.label_cookie(LRS), LRS)

    def test_rejects_other_source(self):
        factory = CookieFactory(random_key())
        assert not factory.verify_label(factory.label_cookie(LRS), OTHER)

    def test_rejects_malformed(self):
        factory = CookieFactory(random_key())
        assert not factory.verify_label(b"PRzzzzzzzz", LRS)  # not hex
        assert not factory.verify_label(b"XXa1b2c3d4", LRS)  # wrong prefix
        assert not factory.verify_label(b"PR", LRS)  # short

    def test_cookie_range_is_2_to_32(self):
        """8 hex chars encode 4 bytes: the paper's 4-billion range."""
        factory = CookieFactory(random_key())
        label = factory.label_cookie(LRS)
        assert len(label[2:]) == 8


class TestIpCookie:
    def test_within_range(self):
        factory = CookieFactory(random_key())
        for r_y in (10, 254, 65534):
            assert 0 <= factory.ip_cookie(LRS, r_y) < r_y

    def test_round_trip(self):
        factory = CookieFactory(random_key())
        y = factory.ip_cookie(LRS, 254)
        assert factory.verify_ip_cookie(y, LRS, 254)

    def test_wrong_y_rejected(self):
        factory = CookieFactory(random_key())
        y = factory.ip_cookie(LRS, 254)
        assert not factory.verify_ip_cookie((y + 1) % 254, LRS, 254)

    def test_out_of_range_rejected(self):
        factory = CookieFactory(random_key())
        assert not factory.verify_ip_cookie(300, LRS, 254)
        assert not factory.verify_ip_cookie(-1, LRS, 254)

    def test_survives_rotation(self):
        factory = CookieFactory(random_key())
        y = factory.ip_cookie(LRS, 254)
        factory.rotate()
        assert factory.verify_ip_cookie(y, LRS, 254)

    def test_invalid_range_rejected(self):
        factory = CookieFactory(random_key())
        with pytest.raises(ValueError):
            factory.ip_cookie(LRS, 0)

    def test_guess_success_rate_is_one_over_range(self):
        """§III.G: random guessing succeeds with probability 1/R_y."""
        factory = CookieFactory(bytes(76))
        r_y = 16
        hits = sum(
            1
            for host in range(200)
            for y in [host % r_y]
            if factory.verify_ip_cookie(y, IPv4Address(f"10.1.{host // 250}.{host % 250 + 1}"), r_y)
        )
        # expect about 200/16 = 12.5 hits; allow generous slack
        assert 2 <= hits <= 40
