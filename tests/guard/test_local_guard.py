"""Unit tests for the LRS-side local DNS guard (modified-DNS scheme)."""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


def build(cache=True, guard_enabled=True):
    bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_enabled=guard_enabled)
    client = bed.add_client("lrs", via_local_guard=True)
    client.local_guard.cache_cookies = cache
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
    return bed, client, lrs


class TestCookieCaching:
    def test_one_cookie_per_server(self):
        bed, client, lrs = build()
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        guard = client.local_guard
        assert guard.cookies_cached == 1
        assert guard.cached_cookie(ANS_ADDRESS, client.address) is not None

    def test_cached_cookie_skips_exchange(self):
        bed, client, lrs = build()
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        # one grant total: everything after the first query reused the cache
        assert bed.guard.cookies_granted == 1
        assert client.local_guard.queries_stamped >= lrs.stats.completed

    def test_cache_disabled_fetches_per_query(self):
        bed, client, lrs = build(cache=False)
        lrs.start()
        bed.run(0.1)
        lrs.stop()
        assert bed.guard.cookies_granted >= lrs.stats.completed
        assert client.local_guard.cookies_cached == 0

    def test_flush_forces_refetch(self):
        bed, client, lrs = build()
        lrs.start()
        bed.run(0.1)
        client.local_guard.flush()
        bed.run(0.1)
        lrs.stop()
        assert bed.guard.cookies_granted == 2

    def test_cookie_ttl_expiry(self):
        bed, client, lrs = build()
        client.local_guard.cookie_ttl = 0.05
        lrs.start()
        bed.run(0.3)
        lrs.stop()
        # the cookie expired several times and was re-fetched
        assert bed.guard.cookies_granted >= 3


class TestUnguardedServerDetection:
    def test_passthrough_when_no_remote_guard(self):
        bed, client, lrs = build(guard_enabled=False)
        lrs.start()
        bed.run(0.3)
        lrs.stop()
        # traffic flows at full closed-loop speed despite no grants ever
        assert lrs.stats.completed > 500
        assert lrs.stats.timeouts <= 2
        assert client.local_guard.cookies_cached == 0

    def test_held_queries_released_plain(self):
        bed, client, lrs = build(guard_enabled=False)
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        assert bed.ans.requests_served >= lrs.stats.completed

    def test_guard_reenables_after_negative_ttl(self):
        from repro.guard.local_guard import UNCOOKIED_TTL

        bed, client, lrs = build(guard_enabled=True)
        bed.guard.enabled = False
        lrs.start()
        bed.run(0.2)
        bed.guard.enabled = True
        bed.run(UNCOOKIED_TTL + 1.0)
        lrs.stop()
        # once the negative entry expired, the shimmed cookie flow resumed
        assert bed.guard.cookies_granted >= 1
        assert lrs.stats.completed > 1000
