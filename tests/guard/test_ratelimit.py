"""Unit tests for token buckets, heavy-hitter tracking and the rate limiters."""

from ipaddress import IPv4Address

import pytest

from repro.guard import (
    RateEstimator,
    TokenBucket,
    TopRequesterTracker,
    UnverifiedResponseLimiter,
    VerifiedRequestLimiter,
)


def ip(n: int) -> IPv4Address:
    return IPv4Address(0x0A000000 + n)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.consume(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            bucket.consume(0.0)
        assert not bucket.consume(0.0)
        assert bucket.consume(0.1)  # one token refilled

    def test_burst_is_capacity_ceiling(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert bucket.available(100.0) == pytest.approx(3.0)

    def test_steady_state_rate(self):
        bucket = TokenBucket(rate=5.0, burst=1.0)
        allowed = sum(bucket.consume(t / 100.0) for t in range(200))  # 2 seconds
        assert 10 <= allowed <= 12  # ~5/sec plus the initial burst

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestTopRequesterTracker:
    def test_counts_accumulate(self):
        tracker = TopRequesterTracker(capacity=8)
        for _ in range(5):
            tracker.observe(ip(1))
        assert tracker.count(ip(1)) == 5

    def test_heavy_hitter_survives_churn(self):
        tracker = TopRequesterTracker(capacity=8)
        for i in range(1000):
            tracker.observe(ip(1))  # the heavy hitter
            tracker.observe(ip(100 + i))  # a sea of one-shot spoofed sources
        top = [address for address, _ in tracker.top(1)]
        assert top == [ip(1)]

    def test_capacity_bounded(self):
        tracker = TopRequesterTracker(capacity=16)
        for i in range(10000):
            tracker.observe(ip(i))
        assert len(tracker._counts) == 16

    def test_top_k_ordering(self):
        tracker = TopRequesterTracker(capacity=8)
        for count, host in ((5, 1), (3, 2), (8, 3)):
            for _ in range(count):
                tracker.observe(ip(host))
        assert [address for address, _ in tracker.top(2)] == [ip(3), ip(1)]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TopRequesterTracker(capacity=0)


class TestUnverifiedResponseLimiter:
    def test_reflection_victim_protected(self):
        """Responses toward one spoofed victim are clamped to the bucket rate."""
        limiter = UnverifiedResponseLimiter(per_source_rate=100.0, per_source_burst=100.0)
        victim = ip(99)
        allowed = sum(limiter.allow(victim, t / 10000.0) for t in range(10000))  # 1 sec
        assert allowed <= 250  # burst + ~100/sec, far below the 10000 offered

    def test_light_requesters_unaffected(self):
        limiter = UnverifiedResponseLimiter(per_source_rate=100.0, per_source_burst=200.0)
        assert all(limiter.allow(ip(i), float(i)) for i in range(500))

    def test_counters(self):
        limiter = UnverifiedResponseLimiter(per_source_rate=1.0, per_source_burst=1.0)
        limiter.allow(ip(1), 0.0)
        limiter.allow(ip(1), 0.0)
        assert limiter.allowed == 1 and limiter.denied == 1

    def test_bucket_table_bounded(self):
        limiter = UnverifiedResponseLimiter(max_buckets=64)
        for i in range(1000):
            limiter.allow(ip(i), 0.0)
        assert len(limiter._buckets) <= 64


class TestVerifiedRequestLimiter:
    def test_single_host_throttled(self):
        """§III.G: even a host with a valid cookie cannot flood the ANS."""
        limiter = VerifiedRequestLimiter(per_host_rate=100.0, per_host_burst=100.0)
        zombie = ip(66)
        allowed = sum(limiter.allow(zombie, t / 100000.0) for t in range(100000))  # 1 sec
        assert allowed <= 250

    def test_independent_hosts(self):
        limiter = VerifiedRequestLimiter(per_host_rate=10.0, per_host_burst=5.0)
        assert limiter.allow(ip(1), 0.0)
        assert limiter.allow(ip(2), 0.0)


class TestRateEstimator:
    def test_estimates_steady_rate(self):
        estimator = RateEstimator(window=0.1)
        rate = 0.0
        for i in range(2000):
            rate = estimator.observe(i / 1000.0)  # 1000 req/s for 2 seconds
        assert rate == pytest.approx(1000.0, rel=0.15)

    def test_ramp_up_detected_within_window(self):
        estimator = RateEstimator(window=0.1)
        for i in range(10):
            estimator.observe(i / 100.0)  # 100/s baseline
        # burst: 5000 arrivals in 10 ms
        rate = 0.0
        for i in range(5000):
            rate = estimator.observe(0.1 + i / 500000.0)
        assert rate > 10000

    def test_rate_now_does_not_count(self):
        estimator = RateEstimator(window=0.1)
        estimator.observe(0.0)
        before = estimator._count
        estimator.rate_now(0.05)
        assert estimator._count == before

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RateEstimator(window=0.0)


class TestReconfigure:
    def test_bucket_reconfigure_clamps_tokens_to_new_burst(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        bucket.reconfigure(5.0, 2.0)
        assert bucket.available(0.0) == pytest.approx(2.0)
        assert bucket.consume(0.0)
        assert bucket.consume(0.0)
        assert not bucket.consume(0.0)

    def test_bucket_widening_does_not_mint_tokens(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.consume(0.0)
        bucket.consume(0.0)
        bucket.reconfigure(10.0, 100.0)
        assert bucket.available(0.0) == pytest.approx(0.0)
        # ...but the new ceiling applies to refills
        assert bucket.available(100.0) == pytest.approx(100.0)

    def test_bucket_reconfigure_rejects_nonpositive(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        with pytest.raises(ValueError):
            bucket.reconfigure(0.0, 1.0)
        with pytest.raises(ValueError):
            bucket.reconfigure(1.0, -1.0)

    def test_rl1_reconfigure_applies_to_existing_buckets(self):
        limiter = UnverifiedResponseLimiter(
            per_source_rate=100.0, per_source_burst=100.0
        )
        src = ip(1)
        assert limiter.allow(src, 0.0)  # materialises a 100-token bucket
        limiter.reconfigure(1.0, 2.0)
        assert limiter.allow(src, 0.0)
        assert limiter.allow(src, 0.0)
        assert not limiter.allow(src, 0.0)  # clamped to the new burst

    def test_rl1_reconfigure_applies_to_new_buckets(self):
        limiter = UnverifiedResponseLimiter(
            per_source_rate=100.0, per_source_burst=100.0
        )
        limiter.reconfigure(1.0, 2.0)
        assert limiter.per_source_rate == 1.0
        src = ip(2)
        assert limiter.allow(src, 0.0)
        assert limiter.allow(src, 0.0)
        assert not limiter.allow(src, 0.0)

    def test_rl2_reconfigure_applies_to_existing_buckets(self):
        limiter = VerifiedRequestLimiter(per_host_rate=100.0, per_host_burst=100.0)
        host = ip(3)
        assert limiter.allow(host, 0.0)
        limiter.reconfigure(2.0, 3.0)
        assert limiter.per_host_burst == 3.0
        allowed = sum(limiter.allow(host, 0.0) for _ in range(10))
        assert allowed == 3

    def test_limiter_reconfigure_rejects_nonpositive(self):
        limiter = UnverifiedResponseLimiter()
        with pytest.raises(ValueError):
            limiter.reconfigure(-1.0, 1.0)
