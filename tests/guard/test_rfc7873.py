"""Tests for the RFC 7873 DNS-cookie extension (the standardised scheme)."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AnsSimulator, LrsSimulator
from repro.dnswire import Message, make_query
from repro.guard.rfc7873 import (
    CLIENT_COOKIE_LENGTH,
    EdnsCookieClientShim,
    EdnsCookieGuard,
    EdnsCookieServer,
    attach_edns_cookie,
    extract_edns_cookie,
    strip_edns_cookie,
)
from repro.netsim import Link, Node, Simulator

CLIENT_IP = IPv4Address("10.0.0.10")
ANS_IP = IPv4Address("203.0.113.53")


class TestCookieCodec:
    def test_attach_extract_round_trip(self):
        query = make_query("www.foo.com", msg_id=1)
        attach_edns_cookie(query, b"\x01" * 8, b"\x02" * 16)
        decoded = Message.decode(query.encode())
        assert extract_edns_cookie(decoded) == (b"\x01" * 8, b"\x02" * 16)

    def test_client_cookie_only(self):
        query = attach_edns_cookie(make_query("a.com"), b"\x07" * 8)
        assert extract_edns_cookie(query) == (b"\x07" * 8, b"")

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            attach_edns_cookie(make_query("a.com"), b"short")

    def test_strip(self):
        query = attach_edns_cookie(make_query("a.com"), b"\x07" * 8)
        strip_edns_cookie(query)
        assert extract_edns_cookie(query) is None

    def test_plain_message_has_no_cookie(self):
        assert extract_edns_cookie(make_query("a.com")) is None


class TestServerCookie:
    def test_verify_round_trip(self):
        server = EdnsCookieServer()
        cc = b"\x11" * 8
        sc = server.server_cookie(cc, CLIENT_IP)
        assert server.verify(cc, sc, CLIENT_IP)

    def test_binds_to_address(self):
        server = EdnsCookieServer()
        cc = b"\x11" * 8
        sc = server.server_cookie(cc, CLIENT_IP)
        assert not server.verify(cc, sc, IPv4Address("10.0.0.11"))

    def test_binds_to_client_cookie(self):
        server = EdnsCookieServer()
        sc = server.server_cookie(b"\x11" * 8, CLIENT_IP)
        assert not server.verify(b"\x22" * 8, sc, CLIENT_IP)

    def test_keys_differ(self):
        cc = b"\x11" * 8
        a = EdnsCookieServer(b"key-a").server_cookie(cc, CLIENT_IP)
        b = EdnsCookieServer(b"key-b").server_cookie(cc, CLIENT_IP)
        assert a != b


def build_testbed(no_cookie_policy="drop"):
    """client -- shim -- guard -- ans, all inline."""
    sim = Simulator(seed=1)
    client = Node(sim, "client")
    client.add_address(CLIENT_IP)
    shim_node = Node(sim, "shim")
    shim_node.add_address("10.0.0.1")
    guard_node = Node(sim, "guard")
    guard_node.add_address("203.0.113.1")
    ans_node = Node(sim, "ans")
    ans_node.add_address(ANS_IP)

    l1 = Link(sim, client, shim_node, delay=0.00005)
    l2 = Link(sim, shim_node, guard_node, delay=0.0001)
    l3 = Link(sim, guard_node, ans_node, delay=0.00001)
    client.set_default_route(l1)
    shim_node.add_route(f"{CLIENT_IP}/32", l1)
    shim_node.set_default_route(l2)
    guard_node.add_route(f"{CLIENT_IP}/32", l2)
    guard_node.add_route(f"{ANS_IP}/32", l3)
    ans_node.set_default_route(l3)

    ans = AnsSimulator(ans_node, mode="answer")
    guard = EdnsCookieGuard(guard_node, ANS_IP, no_cookie_policy=no_cookie_policy)
    shim = EdnsCookieClientShim(shim_node)

    # an attacker node wired straight to the guard, bypassing the shim
    attacker = Node(sim, "attacker")
    attacker.add_address("10.9.9.9")
    l4 = Link(sim, attacker, guard_node, delay=0.0001)
    attacker.set_default_route(l4)
    guard_node.add_route("10.9.9.9/32", l4)
    return sim, client, shim, guard, ans, attacker


class TestEndToEnd:
    def test_queries_complete_with_cookie_learning(self):
        sim, client, shim, guard, ans, attacker = build_testbed()
        lrs = LrsSimulator(client, ANS_IP, workload="plain")
        lrs.start()
        sim.run(until=0.5)
        lrs.stop()
        assert lrs.stats.completed > 100
        assert guard.cookies_granted == 1  # learned once, cached after
        assert shim.grants_learned == 1
        assert guard.valid_cookies >= lrs.stats.completed

    def test_ans_sees_classic_dns(self):
        sim, client, shim, guard, ans, attacker = build_testbed()
        seen = []
        original = ans.respond

        def spy(query):
            seen.append(extract_edns_cookie(query))
            return original(query)

        ans.respond = spy
        lrs = LrsSimulator(client, ANS_IP, workload="plain")
        lrs.start()
        sim.run(until=0.1)
        lrs.stop()
        assert seen and all(cookie is None for cookie in seen)

    def test_spoofed_queries_dropped(self):
        from repro.netsim import DnsPayload, Packet, UdpDatagram

        sim, client, shim, guard, ans, attacker = build_testbed()
        served0 = ans.requests_served
        # spoofed plain queries (no cookie at all) under hard enforcement
        for i in range(50):
            query = make_query("www.foo.com", msg_id=i)
            packet = Packet(
                src=IPv4Address(f"172.18.0.{i % 250 + 1}"),
                dst=ANS_IP,
                segment=UdpDatagram(40000, 53, DnsPayload(query)),
            )
            attacker.send(packet)
        sim.run(until=0.2)
        assert guard.no_cookie_drops == 50
        assert ans.requests_served == served0

    def test_forged_server_cookie_dropped(self):
        from repro.netsim import DnsPayload, Packet, UdpDatagram

        sim, client, shim, guard, ans, attacker = build_testbed()
        query = make_query("www.foo.com", msg_id=9)
        attach_edns_cookie(query, b"\x09" * 8, b"\xff" * 16)
        packet = Packet(
            src=IPv4Address("172.18.0.99"),
            dst=ANS_IP,
            segment=UdpDatagram(40000, 53, DnsPayload(query)),
        )
        attacker.send(packet)
        sim.run(until=0.2)
        assert guard.invalid_drops == 1
        assert ans.requests_served == 0

    def test_first_contact_costs_one_extra_round_trip(self):
        sim, client, shim, guard, ans, attacker = build_testbed()
        lrs = LrsSimulator(client, ANS_IP, workload="plain")
        lrs.record_latencies = True
        lrs.start()
        sim.run(until=0.05)
        lrs.stop()
        assert lrs.latencies[0] > lrs.latencies[-1] * 1.5
