"""The guard's namespace stays alive while detection is dormant.

Clients hold week-long references into the fabricated namespace (cookie NS
names, COOKIE2 addresses, modified-DNS cookies).  When the activation
threshold has detection disengaged, those references must keep working —
otherwise every activation/deactivation transition strands clients until
their caches expire (which is exactly what an attacker could exploit by
oscillating around the threshold).
"""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.dnswire import ZERO_COOKIE, attach_cookie, extract_cookie, make_query
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed

HIGH_THRESHOLD = 1e9  # detection will never engage


def idle_bed(**kwargs):
    return GuardTestbed(
        ans="simulator", activation_threshold=HIGH_THRESHOLD, **kwargs
    )


class TestInactiveNamespace:
    def test_cookie_grants_issued_while_dormant(self):
        bed = idle_bed(ans_mode="answer")
        client = bed.add_client("lrs")
        responses = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: responses.append(p))
        probe = attach_cookie(make_query("www.foo.com", msg_id=1), ZERO_COOKIE)
        sock.send(probe, ANS_ADDRESS, 53)
        bed.run(0.05)
        assert responses
        cookie = extract_cookie(responses[0])
        assert cookie is not None and cookie != ZERO_COOKIE
        assert bed.guard.cookies_granted == 1

    def test_cookie_name_queries_served_while_dormant(self):
        """A cached fabricated NS name resolves even below the threshold."""
        bed = idle_bed(ans_mode="referral")
        client = bed.add_client("lrs")
        # obtain the cookie name while active, then go dormant
        bed.guard.activation_threshold = None
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral")
        lrs.start()
        bed.run(0.02)
        lrs.stop()
        bed.run(0.02)
        target = lrs._cookie_ns_target
        assert target is not None
        bed.guard.activation_threshold = HIGH_THRESHOLD  # dormant again
        responses = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: responses.append(p))
        sock.send(make_query(target, msg_id=77), ANS_ADDRESS, 53)
        bed.run(0.05)
        assert responses and responses[0].answers

    def test_cookie2_addresses_served_while_dormant(self):
        bed = idle_bed(ans_mode="answer")
        client = bed.add_client("lrs")
        bed.guard.activation_threshold = None
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="nonreferral")
        lrs.start()
        bed.run(0.02)
        lrs.stop()
        bed.run(0.02)
        cookie2 = lrs._cookie2_address
        assert cookie2 is not None
        bed.guard.activation_threshold = HIGH_THRESHOLD
        responses = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: responses.append(p))
        sock.send(make_query("www.foo.com", msg_id=88), cookie2, 53)
        bed.run(0.05)
        assert responses and responses[0].answers

    def test_modified_query_stripped_but_not_verified_while_dormant(self):
        """Dormant means no detection: even a wrong cookie passes (stripped)."""
        bed = idle_bed(ans_mode="answer")
        client = bed.add_client("lrs")
        responses = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: responses.append(p))
        bogus = attach_cookie(make_query("www.foo.com", msg_id=2), b"\x13" * 16)
        sock.send(bogus, ANS_ADDRESS, 53)
        bed.run(0.05)
        assert responses and responses[0].answers
        assert bed.guard.invalid_drops == 0

    def test_threshold_oscillation_never_strands_clients(self):
        """Flipping activation on and off leaves a cookie-capable client
        completing queries continuously."""
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", via_local_guard=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
        lrs.start()
        for flip in range(6):
            bed.guard.activation_threshold = None if flip % 2 else HIGH_THRESHOLD
            bed.run(0.05)
        lrs.stop()
        assert lrs.stats.completed > 600
        assert lrs.stats.timeouts <= 1
