"""Unit-level tests for the transparent TCP proxy."""

from ipaddress import IPv4Address

import pytest

from repro.dns import StreamFramer, frame
from repro.dnswire import make_query
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


def query_over_tcp(bed, client, qname="www.foo.com", msg_id=1, timeout=2.0):
    """One DNS-over-TCP request; returns the response message or None."""
    framer = StreamFramer()
    result = []

    def on_data(conn, data):
        for message in framer.feed(data):
            result.append(message)
            conn.close()

    client.tcp.connect(
        ANS_ADDRESS, 53,
        on_established=lambda c: c.send(frame(make_query(qname, msg_id=msg_id))),
        on_data=on_data,
    )
    bed.run(timeout)
    return result[0] if result else None


class TestProxyBasics:
    def test_dnat_termination_preserves_server_address(self):
        """The client talks to the ANS's address; the proxy answers as it."""
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs")
        response = query_over_tcp(bed, client, msg_id=42)
        assert response is not None
        assert response.header.msg_id == 42
        assert response.answers
        # the connection state lives at the guard, not the ANS
        assert bed.ans_node.tcp.open_connections == 0

    def test_multiple_queries_one_connection(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs")
        framer = StreamFramer()
        got = []

        def on_established(conn):
            conn.send(frame(make_query("a.foo.com", msg_id=1)))
            conn.send(frame(make_query("b.foo.com", msg_id=2)))

        def on_data(conn, data):
            got.extend(framer.feed(data))
            if len(got) == 2:
                conn.close()

        client.tcp.connect(ANS_ADDRESS, 53, on_established=on_established, on_data=on_data)
        bed.run(1.0)
        assert sorted(m.header.msg_id for m in got) == [1, 2]

    def test_garbage_on_stream_ignored(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs")
        conn = client.tcp.connect(
            ANS_ADDRESS, 53,
            on_established=lambda c: c.send(b"\x00\x04\xde\xad\xbe\xef"),
        )
        bed.run(1.0)
        # undecodable framed payload: dropped without killing the proxy
        assert bed.guard.tcp_proxy.requests_proxied == 0

    def test_response_timeout_cleans_pending_socket(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")
        bed.ans_node.udp._sockets.clear()  # ANS dark: no UDP responses
        client = bed.add_client("lrs")
        response = query_over_tcp(bed, client, timeout=3.0)
        assert response is None
        # the proxy's ephemeral sockets were closed by the timeout path
        live = [s for s in bed.guard_node.udp._sockets.values() if not s.closed]
        assert len(live) == 0


class TestProxyPolicing:
    def test_rl2_applies_to_proxied_queries(self):
        from repro.guard import VerifiedRequestLimiter

        rl2 = VerifiedRequestLimiter(per_host_rate=10.0, per_host_burst=10.0)
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp", rl2=rl2)
        client = bed.add_client("lrs")
        framer = StreamFramer()
        got = []

        def on_established(conn):
            for i in range(50):
                conn.send(frame(make_query(f"n{i}.foo.com", msg_id=i)))

        client.tcp.connect(
            ANS_ADDRESS, 53,
            on_established=on_established,
            on_data=lambda c, data: got.extend(framer.feed(data)),
        )
        bed.run(1.0)
        assert bed.guard.rl2_drops > 0
        assert len(got) <= 12  # burst-limited

    def test_connection_rate_counter(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_policy="tcp")
        bed.guard.tcp_proxy.new_connection_rate = 2.0
        bed.guard.tcp_proxy.new_connection_burst = 2.0
        client = bed.add_client("lrs")
        for _ in range(10):
            client.tcp.connect(ANS_ADDRESS, 53)
        bed.run(0.5)
        proxy = bed.guard.tcp_proxy
        assert proxy.connections_accepted <= 3
        assert proxy.connections_rate_limited >= 7
