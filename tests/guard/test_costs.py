"""Invariants of the guard cost table (the paper's P4 calibration)."""

import dataclasses

import pytest

from repro.guard.costs import GuardCosts


class TestBaseCosts:
    def test_defaults_match_calibration(self):
        costs = GuardCosts()
        assert costs.per_packet == 1.0e-6
        assert costs.cookie == 1.15e-6
        assert costs.fabricate == 2.4e-6
        assert costs.rewrite == 0.5e-6
        assert costs.tcp_segment == 2.8e-6
        assert costs.tcp_conn_scan == 6.7e-10

    def test_all_base_costs_positive(self):
        costs = GuardCosts()
        for field in dataclasses.fields(costs):
            assert getattr(costs, field.name) > 0, field.name

    def test_table_is_frozen(self):
        costs = GuardCosts()
        with pytest.raises(dataclasses.FrozenInstanceError):
            costs.per_packet = 0.0


class TestDerivedCosts:
    """Every derived cost is an exact sum of its primitive parts."""

    def test_formulas(self):
        c = GuardCosts()
        assert c.forward == 2 * c.per_packet
        assert c.drop_invalid == c.per_packet + c.cookie
        assert c.fabricate_response == 2 * c.per_packet + c.cookie + c.fabricate
        assert c.truncate_response == 2 * c.per_packet + c.fabricate
        assert c.validate_and_forward == 2 * c.per_packet + c.cookie
        assert c.transform_response == 2 * c.per_packet + c.rewrite
        assert c.serve_cached_answer == 2 * c.per_packet + c.cookie + c.rewrite

    def test_formulas_track_overrides(self):
        c = GuardCosts(per_packet=2.0e-6, cookie=3.0e-6, rewrite=1.0e-6)
        assert c.validate_and_forward == 7.0e-6
        assert c.serve_cached_answer == 8.0e-6

    def test_ordering_reflects_work(self):
        """More work never costs less (the paper's Table III ordering)."""
        c = GuardCosts()
        # dropping an attack packet is the cheapest guarded operation
        assert c.drop_invalid < c.validate_and_forward
        # a cache-hit service beats fabricating a fresh referral
        assert c.serve_cached_answer < c.fabricate_response
        # transforming reuses the ANS answer, cheaper than fabricating
        assert c.transform_response < c.fabricate_response
        # plain transit forwarding is cheaper than any cookie operation
        assert c.forward < c.validate_and_forward

    def test_paper_capacity_anchors(self):
        """The calibrated table lands on the paper's measured capacities."""
        c = GuardCosts()
        # invalid-cookie drop ~= 2.15 us -> ~465K drops/s of attack traffic
        assert c.drop_invalid == pytest.approx(2.15e-6)
        # NS-name cache-hit service ~= 5.2 us (2 in + 2 out + MD5 + rewrite
        # + fabricated grant amortised): validate + serve stays below 8 us
        assert c.validate_and_forward + c.serve_cached_answer < 8.0e-6


class TestTcpSegmentCost:
    def test_zero_connections_is_base_cost(self):
        c = GuardCosts()
        assert c.tcp_segment_cost(0) == c.per_packet + c.tcp_segment

    def test_scan_cost_is_linear_in_connections(self):
        c = GuardCosts()
        base = c.tcp_segment_cost(0)
        assert c.tcp_segment_cost(1000) == pytest.approx(base + 1000 * c.tcp_conn_scan)
        assert c.tcp_segment_cost(6000) == pytest.approx(base + 6000 * c.tcp_conn_scan)

    def test_monotone_in_table_size(self):
        c = GuardCosts()
        samples = [c.tcp_segment_cost(n) for n in (0, 10, 100, 1000, 10000)]
        assert samples == sorted(samples)
        assert len(set(samples)) == len(samples)

    def test_figure7_knee(self):
        """Figure 7a: the per-connection scan roughly doubles segment cost
        near 6000 open connections relative to an empty table."""
        c = GuardCosts()
        ratio = c.tcp_segment_cost(6000) / c.tcp_segment_cost(0)
        assert 1.5 < ratio < 3.0
