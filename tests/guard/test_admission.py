"""Admission-control gate and the guard's actuator-seam entry points."""

from ipaddress import IPv4Address

from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.guard import AdmissionControl, random_key


def _quiet_bed():
    """A testbed whose guard never activates detection: traffic flows
    plainly, so the admission gate is the only thing standing in the way."""
    return GuardTestbed(ans="simulator", ans_mode="answer", activation_threshold=1e9)


class TestAdmissionGate:
    def test_engaged_gate_sheds_unverified_prefers_verified(self):
        bed = _quiet_bed()
        good = bed.add_client("good")
        bad = bed.add_client("bad")
        bed.guard.watch_sources = frozenset({bad.addresses[0]})
        # shed_backlog_fraction=0 makes the gate bite at any backlog,
        # so the test does not need to saturate the CPU first
        bed.guard.set_admission(
            AdmissionControl(engaged=True, shed_backlog_fraction=0.0)
        )
        bed.guard._mark_verified(good.addresses[0])
        good_lrs = LrsSimulator(good, ANS_ADDRESS, workload="plain", concurrency=1)
        bad_lrs = LrsSimulator(bad, ANS_ADDRESS, workload="plain", concurrency=1)
        good_lrs.start()
        bad_lrs.start()
        bed.run(0.2)
        good_lrs.stop()
        bad_lrs.stop()
        assert good_lrs.stats.completed > 0
        assert bad_lrs.stats.completed == 0
        assert bed.guard.admission_shed > 0
        # every shed against the watched (legitimate) source was counted
        assert bed.guard.watched_rejects > 0
        assert bed.guard.stats()["admission_shed"] == bed.guard.admission_shed

    def test_disengaged_control_passes_everyone(self):
        bed = _quiet_bed()
        client = bed.add_client("lrs")
        bed.guard.set_admission(AdmissionControl(engaged=False))
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=1)
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        assert lrs.stats.completed > 0
        assert bed.guard.admission_shed == 0

    def test_verification_expires_after_ttl(self):
        bed = _quiet_bed()
        client = bed.add_client("lrs")
        bed.guard.set_admission(
            AdmissionControl(
                engaged=True, shed_backlog_fraction=0.0, verified_ttl=0.05
            )
        )
        bed.guard._mark_verified(client.addresses[0])  # marked at t=0
        bed.run(0.1)  # ...which is stale by now
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=1)
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        assert lrs.stats.completed == 0
        assert bed.guard.admission_shed > 0

    def test_verified_cache_is_bounded(self):
        bed = _quiet_bed()
        bed.guard.set_admission(AdmissionControl())
        for i in range(9000):
            bed.guard._mark_verified(IPv4Address(0x0A000000 + i))
        assert len(bed.guard._verified_sources) <= 8192

    def test_mark_verified_without_admission_is_a_noop(self):
        bed = _quiet_bed()
        bed.guard._mark_verified(IPv4Address("10.0.0.1"))
        assert bed.guard._verified_sources == {}


class TestActuatorEntryPoints:
    def test_set_policy_hot_switches(self):
        bed = GuardTestbed(guard_policy="dns")
        source = IPv4Address("10.0.0.1")
        assert bed.guard.policy_for(source) == "dns"
        bed.guard.set_policy("drop")
        assert bed.guard.policy_for(source) == "drop"

    def test_set_admission_none_clears_the_cache(self):
        bed = _quiet_bed()
        bed.guard.set_admission(AdmissionControl(engaged=True))
        bed.guard._mark_verified(IPv4Address("10.0.0.1"))
        assert bed.guard.stats()["verified_sources"] == 1
        bed.guard.set_admission(None)
        assert bed.guard.admission is None
        assert bed.guard._verified_sources == {}

    def test_rotate_cookie_key_advances_one_generation(self):
        bed = GuardTestbed()
        generation = bed.guard.cookies.generation
        bed.guard.rotate_cookie_key(random_key())
        assert bed.guard.cookies.generation == generation + 1

    def test_crash_clears_verified_sources(self):
        bed = _quiet_bed()
        bed.guard.set_admission(AdmissionControl(engaged=True))
        bed.guard._mark_verified(IPv4Address("10.0.0.1"))
        state = bed.guard.crash()
        assert bed.guard._verified_sources == {}
        bed.guard.restart(state)
