"""Configurable cookie-label width (§III.E's variable COOKIE size)."""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.guard import CookieFactory, random_key
from repro.guard.dns_scheme import decode_cookie_name, encode_cookie_name
from repro.dnswire import Name

LRS = IPv4Address("10.0.0.53")


class TestWidthConfiguration:
    @pytest.mark.parametrize("digits", [4, 8, 16, 32])
    def test_round_trip_at_any_width(self, digits):
        factory = CookieFactory(random_key(), label_hex_digits=digits)
        label = factory.label_cookie(LRS)
        assert len(label) == 2 + digits
        assert factory.verify_label(label, LRS)
        assert not factory.verify_label(label, IPv4Address("10.0.0.54"))

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            CookieFactory(random_key(), label_hex_digits=7)

    def test_oversize_width_rejected(self):
        with pytest.raises(ValueError):
            CookieFactory(random_key(), label_hex_digits=34)

    def test_wider_cookie_means_larger_range(self):
        """16 hex digits = 2^64 range vs the default 2^32."""
        wide = CookieFactory(random_key(), label_hex_digits=16)
        narrow = CookieFactory(random_key(), label_hex_digits=8)
        assert len(wide.label_cookie(LRS)) - len(narrow.label_cookie(LRS)) == 8

    def test_narrow_label_fails_wide_verification(self):
        """A guard configured wide rejects labels from a narrower config."""
        factory = CookieFactory(random_key(), label_hex_digits=16)
        narrow = CookieFactory(
            b"x" * 76, label_hex_digits=8
        ).label_cookie(LRS)
        assert not factory.verify_label(narrow, LRS)

    def test_cookie_name_codec_at_width(self):
        factory = CookieFactory(random_key(), label_hex_digits=16)
        label = factory.label_cookie(LRS)
        qname = Name.from_text("www.foo.com")
        encoded = encode_cookie_name(label, qname, Name.root())
        decoded = decode_cookie_name(
            encoded, Name.root(), cookie_length=factory.label_cookie_length
        )
        assert decoded is not None
        assert decoded.cookie_label == label
        assert decoded.original_qname == qname


class TestWidthEndToEnd:
    @pytest.mark.parametrize("digits", [4, 16])
    def test_guard_with_nondefault_width(self, digits):
        from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed

        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        bed.guard.cookies = CookieFactory(random_key(), label_hex_digits=digits)
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral")
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        assert lrs.stats.completed > 100
        assert lrs.stats.timeouts == 0
        assert bed.guard.valid_cookies >= lrs.stats.completed
