"""Smoke tests for the fault-injection experiment (python -m repro faults)."""

import pytest

from repro.experiments.faults import (
    FaultCell,
    SCENARIOS,
    SCHEMES,
    _build,
    _plan_for,
    _run_cell,
    format_faults,
    plan_cells,
    reduce_matrix,
    run_matrix_cell,
)


class TestScenarioMatrix:
    def test_scenario_and_scheme_lists(self):
        assert len(SCENARIOS) >= 6  # baseline + >=5 fault scenarios
        assert "baseline" in SCENARIOS
        assert set(SCHEMES) == {"modified", "ns_name", "tcp"}

    def test_every_scenario_builds_a_plan(self):
        env = _build("ns_name", seed=0)
        for scenario in SCENARIOS:
            plan = _plan_for(scenario, env, 0.1, 1.0)
            if scenario == "baseline":
                assert len(plan) == 0
            else:
                assert len(plan) >= 1

    def test_unknown_scheme_and_scenario_rejected(self):
        with pytest.raises(ValueError):
            _build("nonsense", seed=0)
        env = _build("ns_name", seed=0)
        with pytest.raises(ValueError):
            _plan_for("nonsense", env, 0.1, 1.0)


class TestPlannerDelegation:
    """run_faults expands through the farm planner: one cell definition,
    identical identities and derived seeds solo, serial, or sharded."""

    def test_plan_covers_full_matrix_in_canonical_order(self):
        cells = plan_cells(seed=0)
        assert len(cells) == len(SCENARIOS) * len(SCHEMES)
        assert [c.param_dict()["scenario"] for c in cells[: len(SCHEMES)]] == [
            "baseline"
        ] * len(SCHEMES)
        assert cells[0].cell_id == "faults/scenario=baseline/scheme=modified"
        seeds = {c.seed for c in cells}
        assert len(seeds) == len(cells)  # every cell gets its own stream

    def test_run_matrix_cell_matches_direct_run(self):
        import dataclasses

        cell = plan_cells(seed=0, fast=True)[0]
        via_farm = run_matrix_cell(cell.param_dict(), cell.seed, True)
        direct = dataclasses.asdict(
            _run_cell("modified", "baseline", seed=cell.seed, warmup=0.15, window=0.4)
        )
        assert via_farm == direct

    def test_reduce_fills_added_latency_in_plan_order(self):
        def row(scenario, scheme, latency):
            return {
                "scenario": scenario,
                "scheme": scheme,
                "sent": 10,
                "completed": 10,
                "timeouts": 0,
                "availability": 1.0,
                "mean_latency_ms": latency,
                "added_latency_ms": 0.0,
                "false_rejects": 0,
            }

        cells = plan_cells(
            seed=0, scenarios=("baseline", "uplink-flap"), schemes=("modified",)
        )
        merged = reduce_matrix(
            cells, [row("baseline", "modified", 2.0), row("uplink-flap", "modified", 3.5)]
        )
        assert merged[0].added_latency_ms == 0.0
        assert merged[1].added_latency_ms == pytest.approx(1.5)


class TestSingleCells:
    def test_baseline_cell_full_availability(self):
        cell = _run_cell("ns_name", "baseline", seed=1, warmup=0.05, window=0.1)
        assert cell.availability == 1.0
        assert cell.false_rejects == 0
        assert cell.mean_latency_ms > 0

    def test_guard_restart_cell_no_false_rejects(self):
        cell = _run_cell("ns_name", "guard-restart", seed=1, warmup=0.05, window=0.2)
        assert cell.false_rejects == 0
        assert cell.availability > 0.9

    def test_blackout_cell_dips_availability(self):
        cell = _run_cell("modified", "uplink-blackout", seed=1, warmup=0.05, window=0.2)
        assert cell.timeouts > 0
        assert cell.availability < 1.0
        assert cell.false_rejects == 0

    def test_ans_failover_cell_recovers(self):
        cell = _run_cell("ns_name", "ans-failover", seed=1, warmup=0.05, window=0.2)
        assert cell.availability > 0.8
        assert cell.false_rejects == 0


class TestFormatting:
    def test_format_reports_worst_case_and_rejects(self):
        cells = [
            FaultCell("baseline", "ns_name", 100, 100, 0, 1.0, 0.4, 0.0, 0),
            FaultCell("uplink-blackout", "ns_name", 100, 90, 10, 0.9, 0.5, 0.1, 0),
        ]
        out = format_faults(cells)
        assert "worst availability: 90.00% (uplink-blackout / ns_name)" in out
        assert "total false rejects: 0" in out
        assert "scenario" in out
