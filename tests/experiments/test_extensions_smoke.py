"""Smoke tests for the extension experiments and remaining CLI paths."""

import pytest

from repro.__main__ import main
from repro.experiments.containment import run_containment
from repro.experiments.sensitivity import (
    format_sensitivity,
    run_sensitivity,
    summarize,
)


class TestSensitivitySmoke:
    def test_one_at_a_time_and_corners_counted(self):
        results = run_sensitivity(factors=(0.5, 1.0, 2.0))
        # 5 fields x 3 factors + 2^5 corners
        assert len(results) == 5 * 3 + 32

    def test_summary_fields(self):
        results = run_sensitivity(factors=(0.5, 1.0, 2.0))
        summary = summarize(results)
        assert 0 <= summary["ordering_holds"] <= 1
        assert summary["configurations"] == len(results)

    def test_format_mentions_claims(self):
        text = format_sensitivity(run_sensitivity(factors=(0.5, 1.0, 2.0)))
        assert "scheme ordering" in text
        assert "protected rate" in text


class TestContainmentSmoke:
    def test_short_run_contains(self):
        result = run_containment(
            attack_rate=200_000.0,
            baseline_duration=0.3,
            attack_duration=0.4,
            sample_interval=0.05,
        )
        assert result.contained
        assert result.recovery_time < 0.3
        assert result.baseline_throughput > 90_000


class TestCliExtras:
    def test_report_command(self, tmp_path, monkeypatch, capsys):
        results = tmp_path / "benchmarks" / "results"
        results.mkdir(parents=True)
        (results / "demo.txt").write_text("hello world\n")
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 0
        report = (tmp_path / "REPORT.md").read_text()
        assert "## demo" in report
        assert "hello world" in report

    def test_report_without_results_dir_fails(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 1

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity"]) == 0
        assert "configurations tested" in capsys.readouterr().out

    def test_plot_flag_renders_chart(self, capsys):
        # fluid ignores --plot; use a tiny fig7 instead? too slow — check
        # the plotting module directly through the fig6 plotter contract
        from repro.experiments.fig6 import Fig6Point
        from repro.experiments.plotting import plot_fig6

        points = [
            Fig6Point(0, True, 110_000, 0.5, 1.0),
            Fig6Point(250_000, True, 90_000, 1.0, 0.8),
            Fig6Point(0, False, 110_000, 0.4, 1.0),
            Fig6Point(250_000, False, 0, 0.5, 1.0),
        ]
        chart = plot_fig6(points)
        assert "guard on" in chart and "guard off" in chart
