"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_fluid(self, capsys):
        assert main(["fluid"]) == 0
        out = capsys.readouterr().out
        assert "guard saturates" in out

    def test_table1_fast(self, capsys):
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "modified" in out

    def test_demo(self, capsys):
        assert main(["demo", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "forged requests dropped" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_faults_registered(self):
        from repro.__main__ import _COMMANDS

        assert "faults" in _COMMANDS
