"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_fluid(self, capsys):
        assert main(["fluid"]) == 0
        out = capsys.readouterr().out
        assert "guard saturates" in out

    def test_table1_fast(self, capsys):
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "modified" in out

    def test_demo(self, capsys):
        assert main(["demo", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "forged requests dropped" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_faults_registered(self):
        from repro.__main__ import _COMMANDS

        assert "faults" in _COMMANDS

    def test_farm_list(self, capsys):
        assert main(["farm", "--list"]) == 0
        out = capsys.readouterr().out
        assert "faults" in out and "hybrid" in out and "smoke" in out

    def test_farm_serial_selftest(self, capsys, tmp_path):
        manifest = str(tmp_path / "m.json")
        # the selftest matrix includes one always-failing cell -> exit 1
        assert main(["farm", "--matrix", "selftest", "--manifest", manifest]) == 1
        out = capsys.readouterr().out
        assert "manifest digest:" in out
        assert "failed: selftest/behaviour=boom" in out

    def test_farm_rejects_sanitize_modes(self):
        with pytest.raises(SystemExit):
            main(["farm", "--matrix", "smoke", "--sanitize"])
        with pytest.raises(SystemExit):
            main(["faults", "--shards", "2", "--races"])
