"""Unit tests for the ASCII plotting helpers and the guard stats snapshot."""

import pytest

from repro.experiments.plotting import bar_chart, line_chart


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_included(self):
        assert bar_chart(["x"], [1.0], title="hello").startswith("hello")

    def test_values_formatted(self):
        chart = bar_chart(["k"], [1500.0])
        assert "1.5K" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_is_title_only(self):
        assert bar_chart([], [], title="t") == "t"

    def test_explicit_max_value(self):
        chart = bar_chart(["a"], [5.0], width=10, max_value=10.0)
        assert chart.count("█") == 5


class TestLineChart:
    def test_markers_present_per_series(self):
        chart = line_chart([0, 1, 2], {"up": [0, 1, 2], "down": [2, 1, 0]})
        assert "●" in chart and "○" in chart
        assert "up" in chart and "down" in chart

    def test_axis_labels(self):
        chart = line_chart([0, 10], {"s": [1, 2]}, x_label="attack", y_label="rps")
        assert "attack" in chart and "rps" in chart

    def test_empty_returns_title(self):
        assert line_chart([], {}, title="nothing") == "nothing"

    def test_peak_row_is_top(self):
        chart = line_chart([0, 1], {"s": [0.0, 100.0]}, height=5, width=10)
        rows = [line for line in chart.splitlines() if "┤" in line]
        assert "●" in rows[0]  # the maximum lands on the top row
        assert "●" in rows[-1]  # the zero lands on the bottom row


class TestGuardStats:
    def test_snapshot_keys_and_monotonicity(self):
        from repro.dns import LrsSimulator
        from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed

        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral")
        before = bed.guard.stats()
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        after = bed.guard.stats()
        assert set(before) == set(after)
        assert after["queries_seen"] > before["queries_seen"]
        assert after["valid_cookies"] > 0
        assert after["cpu_busy_seconds"] > 0
        assert "tcp_requests_proxied" in after
