"""Smoke tests: every experiment runner produces sane output quickly.

Full-scale runs live in ``benchmarks/``; these only prove the runners wire
up correctly and their results point the right way.
"""

import pytest

from repro.experiments import fluid
from repro.experiments.ablation import run_hcf_ablation, run_rotation_ablation
from repro.experiments.attacks import run_cookie2_guessing
from repro.experiments.fig6 import run_point as fig6_point
from repro.experiments.fig7 import run_fig7a_point, run_fig7b_point
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import measure_scheme as table2_scheme
from repro.experiments.table3 import measure_scheme as table3_scheme


class TestTableRunners:
    def test_table1_static(self):
        rows = run_table1(measure_latency=False)
        assert {row.scheme for row in rows} == {"ns_name", "fabricated", "tcp", "modified"}
        assert all(row.worst_latency_rtt >= row.best_latency_rtt for row in rows)

    def test_table2_single_scheme(self):
        miss, hit = table2_scheme("modified", iterations=6)
        assert miss == pytest.approx(21.8, rel=0.1)
        assert hit == pytest.approx(10.9, rel=0.1)

    def test_table3_single_scheme(self):
        rate = table3_scheme("modified", cache=True, warmup=0.05, duration=0.1,
                             concurrency=128)
        assert rate == pytest.approx(110_000, rel=0.1)


class TestFigureRunners:
    def test_fig6_point(self):
        p = fig6_point(0, True, warmup=0.05, duration=0.1, concurrency=64)
        assert p.legit_throughput == pytest.approx(110_000, rel=0.15)
        assert 0 < p.guard_cpu < 1

    def test_fig7a_point(self):
        p = run_fig7a_point(20, warmup=0.1, duration=0.1)
        assert p.throughput == pytest.approx(22_000, rel=0.2)

    def test_fig7b_point(self):
        p = run_fig7b_point(0, warmup=0.1, duration=0.1)
        assert p.throughput == pytest.approx(22_700, rel=0.2)


class TestAttackRunners:
    def test_guessing_expected_rate(self):
        result = run_cookie2_guessing(packets=508)
        assert result.expected_success_rate == pytest.approx(1 / 254)
        assert result.cookies_accepted == 2  # 508 packets cover the /24 twice


class TestAblationRunners:
    def test_hcf(self):
        result = run_hcf_ablation(clients=100)
        assert 0 <= result.hcf_false_negative_rate <= 1
        assert result.hcf_false_negative_rate > result.cookie_false_negative_rate

    def test_rotation(self):
        result = run_rotation_ablation(cookies=50)
        assert result.survivors_with_generation_bit == 50
        assert result.survivors_naive == 0


class TestFluidModel:
    def test_predictions_positive_and_ordered(self):
        model = fluid.FluidModel()
        assert (
            model.throughput("modified", True)
            >= model.throughput("ns_name", False)
            > model.throughput("fabricated", False)
            > model.throughput("tcp", False)
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            fluid.FluidModel().request_cost("quantum", True)

    def test_saturated_guard_returns_zero(self):
        model = fluid.FluidModel()
        assert model.legit_throughput_under_attack(10**9) == 0.0

    def test_format_runs(self):
        assert "guard saturates" in fluid.format_predictions()
