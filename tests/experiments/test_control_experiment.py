"""Smoke tests for the adaptive-control experiment and its bench record."""

import json

from repro.experiments.control import (
    ControlCell,
    ControlResult,
    format_control,
    run_control,
    write_bench_control,
)


class TestRunControl:
    def test_fast_subset_matrix(self):
        result = run_control(seed=1, fast=True, schemes=("modified", "adaptive"))
        # fast mode: 2 attacks x 2 faults x the 2 requested schemes
        assert len(result.cells) == 8
        adaptive = [c for c in result.cells if c.scheme == "adaptive"]
        assert len(adaptive) == 4
        assert all(not c.ctrl_failed for c in adaptive)

        calm = next(
            c for c in adaptive if c.attack == "calm" and c.fault == "none"
        )
        assert calm.availability > 0.9
        flood = next(
            c for c in adaptive if c.attack == "cookie-flood" and c.fault == "none"
        )
        assert flood.ctrl_max_level >= 1  # the controller actually escalated
        # the controller reverted to the safe config on every crash cell
        assert result.crash_reverts >= 1
        assert result.false_rejects_adaptive == 0

    def test_static_only_skips_win_computation(self):
        result = run_control(seed=1, fast=True, schemes=("modified",))
        assert result.adaptive_wins == []
        assert all(c.scheme == "modified" for c in result.cells)

    def test_format_is_human_readable(self):
        result = run_control(seed=1, fast=True, schemes=("modified", "adaptive"))
        text = format_control(result)
        assert "adaptive" in text
        assert "false rejects" in text
        assert "safe-reverts" in text


def _tiny_result() -> ControlResult:
    cell = ControlCell(
        attack="calm",
        fault="none",
        scheme="adaptive",
        sent=10,
        completed=10,
        timeouts=0,
        availability=1.0,
        mean_latency_ms=1.0,
        added_latency_ms=0.0,
        false_rejects=0,
        cpu_utilization=0.5,
    )
    return ControlResult(
        cells=[cell],
        adaptive_wins=[("calm", "none")],
        false_rejects_adaptive=0,
        false_rejects_modified=0,
        crash_reverts=0,
    )


class TestBenchRecord:
    def test_trajectory_appends_across_runs(self, tmp_path):
        path = str(tmp_path / "BENCH_control.json")
        result = _tiny_result()
        doc1 = write_bench_control(result, path, date="2026-08-07")
        assert len(doc1["trajectory"]) == 1
        doc2 = write_bench_control(result, path, date="2026-08-08")
        assert [entry["date"] for entry in doc2["trajectory"]] == [
            "2026-08-07",
            "2026-08-08",
        ]
        assert doc2["value"] == 1.0
        with open(path, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == doc2

    def test_corrupt_previous_file_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH_control.json"
        path.write_text("not json", encoding="utf-8")
        doc = write_bench_control(_tiny_result(), str(path), date="2026-08-08")
        assert len(doc["trajectory"]) == 1
