"""Unit tests for the testbed builder and calibration constants."""

from ipaddress import IPv4Address

import pytest

from repro.dns import LrsSimulator
from repro.experiments import calibration
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


class TestTestbedConstruction:
    def test_defaults_build_simulator_ans(self):
        bed = GuardTestbed()
        assert bed.guard.enabled
        assert bed.ans_node.address == ANS_ADDRESS

    def test_bind_ans_option(self):
        from repro.dns import AuthoritativeServer

        bed = GuardTestbed(ans="bind", zone_origin="foo.com.")
        assert isinstance(bed.ans, AuthoritativeServer)

    def test_unknown_ans_rejected(self):
        with pytest.raises(ValueError):
            GuardTestbed(ans="powerdns")

    def test_client_addresses_unique(self):
        bed = GuardTestbed()
        a = bed.add_client("a")
        b = bed.add_client("b")
        assert a.address != b.address

    def test_explicit_client_address(self):
        bed = GuardTestbed()
        node = bed.add_client("x", address="10.0.7.7")
        assert node.address == IPv4Address("10.0.7.7")

    def test_local_guard_client_has_shim(self):
        bed = GuardTestbed()
        node = bed.add_client("lrs", via_local_guard=True)
        assert hasattr(node, "local_guard")

    def test_lan_rtt_calibrated_to_paper(self):
        """Client-to-ANS RTT should be the paper's 0.4 ms."""
        bed = GuardTestbed(guard_enabled=False)
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
        lrs.record_latencies = True
        lrs.start()
        bed.run(0.01)
        lrs.stop()
        assert lrs.latencies[0] == pytest.approx(0.0004, rel=0.15)

    def test_wan_rtt_calibrated_to_paper(self):
        """WAN client RTT should be the paper's 10.9 ms."""
        bed = GuardTestbed(guard_enabled=False)
        client = bed.add_client("lrs", wan=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.2)
        lrs.record_latencies = True
        lrs.start()
        bed.run(0.2)
        lrs.stop()
        assert lrs.latencies[0] == pytest.approx(calibration.WAN_RTT, rel=0.05)

    def test_measure_returns_throughputs(self):
        bed = GuardTestbed()
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=4)
        lrs.start()
        (rate,) = bed.measure([lrs.stats], 0.1, warmup=0.05)
        lrs.stop()
        assert rate > 0

    def test_cpu_utilization_helper(self):
        bed = GuardTestbed()
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=64)
        lrs.start()
        bed.run(0.05)
        utilization = bed.cpu_utilization(bed.ans_node, 0.1)
        lrs.stop()
        assert 0.5 < utilization <= 1.0


class TestCalibrationConstants:
    def test_capacity_anchors(self):
        assert calibration.BIND_UDP_COST == pytest.approx(1 / 14000)
        assert calibration.BIND_TCP_COST == pytest.approx(1 / 2200)
        assert calibration.ANS_SIMULATOR_COST == pytest.approx(1 / 110000)

    def test_timers(self):
        assert calibration.BIND_TIMEOUT == 2.0
        assert calibration.LRS_SIMULATOR_TIMEOUT == 0.010

    def test_wan_delay_composes_to_rtt(self):
        rtt = 2 * (calibration.WAN_LINK_DELAY + calibration.ANS_LINK_DELAY)
        assert rtt == pytest.approx(calibration.WAN_RTT, rel=0.01)

    def test_lan_delay_composes_to_testbed_rtt(self):
        rtt = 2 * (calibration.LAN_LINK_DELAY + calibration.ANS_LINK_DELAY)
        assert rtt == pytest.approx(0.0004, rel=0.01)
