"""Link-level fault knobs: duplication, corruption, reordering, isolation."""

from ipaddress import IPv4Address

from repro.faults import Corrupt, Duplicate, FaultPlan, Reorder
from repro.netsim import Link, Node, Simulator

B_ADDR = IPv4Address("10.0.0.2")


def topology(seed=0):
    sim = Simulator(seed=seed)
    a = Node(sim, "a")
    a.add_address("10.0.0.1")
    b = Node(sim, "b")
    b.add_address(B_ADDR)
    link = Link(sim, a, b, delay=0.001)
    return sim, a, b, link


class TestDuplicate:
    def test_every_packet_delivered_twice(self):
        sim, a, b, link = topology()
        got = []
        b.udp.bind(9, lambda p, *rest: got.append(p))
        plan = FaultPlan()
        plan.add(0.0, Duplicate(link, 1.0))
        plan.schedule(sim)
        sock = a.udp.bind_ephemeral(lambda *args: None)
        for i in range(5):
            sim.schedule_at(0.01 * (i + 1), sock.send, b"x%d" % i, B_ADDR, 9)
        sim.run(until=1.0)
        assert len(got) == 10
        assert link.fault_stats(a)["duplicated"] == 5

    def test_duration_reverts(self):
        sim, a, b, link = topology()
        got = []
        b.udp.bind(9, lambda p, *rest: got.append(p))
        plan = FaultPlan()
        plan.add(0.0, Duplicate(link, 1.0, duration=0.05))
        plan.schedule(sim)
        sock = a.udp.bind_ephemeral(lambda *args: None)
        sim.schedule_at(0.01, sock.send, b"doubled", B_ADDR, 9)
        sim.schedule_at(0.1, sock.send, b"single", B_ADDR, 9)
        sim.run(until=1.0)
        assert got.count(b"doubled") == 2
        assert got.count(b"single") == 1


class TestCorrupt:
    def test_corrupted_packets_never_arrive(self):
        sim, a, b, link = topology()
        got = []
        b.udp.bind(9, lambda p, *rest: got.append(p))
        plan = FaultPlan()
        plan.add(0.0, Corrupt(link, 1.0))
        plan.schedule(sim)
        sock = a.udp.bind_ephemeral(lambda *args: None)
        for i in range(3):
            sim.schedule_at(0.01 * (i + 1), sock.send, b"junked", B_ADDR, 9)
        sim.run(until=1.0)
        assert got == []
        assert link.fault_stats(a)["corrupted"] == 3


class TestReorder:
    def test_held_packet_overtaken(self):
        sim, a, b, link = topology()
        got = []
        b.udp.bind(9, lambda p, *rest: got.append(p))
        plan = FaultPlan()
        # reorder everything for the first 15 ms, then nothing
        plan.add(0.0, Reorder(link, 1.0, extra_delay=0.02, duration=0.015))
        plan.schedule(sim)
        sock = a.udp.bind_ephemeral(lambda *args: None)
        sim.schedule_at(0.01, sock.send, b"first", B_ADDR, 9)
        sim.schedule_at(0.02, sock.send, b"second", B_ADDR, 9)
        sim.run(until=1.0)
        assert got == [b"second", b"first"]
        assert link.fault_stats(a)["reordered"] == 1


class TestDeterminismIsolation:
    def test_fault_rng_leaves_core_stream_untouched(self):
        """Enabling faults must not shift the core RNG's draw sequence."""

        def core_draws(with_faults: bool):
            sim, a, b, link = topology(seed=42)
            b.udp.bind(9, lambda *args: None)
            if with_faults:
                plan = FaultPlan()
                plan.add(0.0, Duplicate(link, 0.5))
                plan.add(0.0, Corrupt(link, 0.3))
                plan.schedule(sim)
            sock = a.udp.bind_ephemeral(lambda *args: None)
            for i in range(20):
                sim.schedule_at(0.01 * (i + 1), sock.send, b"p", B_ADDR, 9)
            sim.run(until=1.0)
            return [sim.rng.random() for _ in range(5)]

        assert core_draws(False) == core_draws(True)

    def test_clear_faults_restores_pristine_link(self):
        sim, a, b, link = topology()
        link.duplicate_prob = 0.5
        link.corrupt_prob = 0.5
        link.reorder_prob = 0.5
        link.reorder_delay = 0.1
        link.loss_model = object()
        link.clear_faults()
        assert link.loss_model is None
        assert link.duplicate_prob == 0.0
        assert link.corrupt_prob == 0.0
        assert link.reorder_prob == 0.0
        assert link.reorder_delay == 0.0
        assert link.up
