"""Guard crash-and-restart: state loss, downtime, and key-rotation survival."""

from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.faults import FaultPlan, GuardCrash


def referral_bed(seed=0):
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="referral")
    client = bed.add_client("lrs")
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.02)
    return bed, lrs


class TestCrashSemantics:
    def test_crash_wipes_soft_state_and_drops_transit(self):
        bed, lrs = referral_bed()
        lrs.start()
        bed.run(0.1)
        assert lrs.stats.completed > 0
        bed.guard.crash()
        assert bed.guard.down
        assert bed.guard.pending_exchanges == 0
        completed_at_crash = lrs.stats.completed
        served_at_crash = bed.ans.requests_served
        bed.run(0.1)
        # dead inline hardware: nothing reaches the ANS
        assert bed.ans.requests_served == served_at_crash
        assert lrs.stats.completed == completed_at_crash
        lrs.stop()

    def test_restart_resumes_service(self):
        bed, lrs = referral_bed()
        lrs.start()
        bed.run(0.1)
        state = bed.guard.crash()
        bed.run(0.05)
        bed.guard.restart(state)
        completed_before = lrs.stats.completed
        bed.run(0.2)
        lrs.stop()
        assert not bed.guard.down
        assert lrs.stats.completed > completed_before
        assert bed.guard.stats()["crashes"] == 1

    def test_restart_restarts_pending_sweeper(self):
        bed, lrs = referral_bed()
        state = bed.guard.crash()
        bed.guard.restart(state)
        assert bed.guard._sweeper is not None


class TestKeyRotationAcrossRestart:
    def test_cached_cookie_survives_restart_with_rotation(self):
        """The acceptance bar: zero false rejects across crash + key rotation."""
        bed, lrs = referral_bed(seed=2)
        lrs.start()
        bed.run(0.1)
        # the LRS now holds a cached cookie NS target issued pre-crash
        assert lrs._cookie_ns_target is not None
        cookie_before = lrs._cookie_ns_target
        state = bed.guard.crash()
        bed.guard.restart(state, rotate_key=True)
        completed_before = lrs.stats.completed
        bed.run(0.3)
        lrs.stop()
        # the pre-crash cookie kept verifying under the previous key
        assert lrs._cookie_ns_target == cookie_before
        assert lrs.stats.completed > completed_before
        assert bed.guard.invalid_drops == 0

    def test_restart_without_state_keeps_live_factory(self):
        bed, lrs = referral_bed()
        factory = bed.guard.cookies
        bed.guard.crash()
        bed.guard.restart()
        assert bed.guard.cookies is factory

    def test_scheduled_guard_crash_action(self):
        """GuardCrash as a FaultPlan action: down during the window, zero
        false rejects after a restart that rotates the key."""
        bed, lrs = referral_bed(seed=5)
        plan = FaultPlan()
        plan.add(0.1, GuardCrash(bed.guard, downtime=0.05, rotate_key=True))
        plan.schedule(bed.sim)
        lrs.start()
        bed.run(0.12)
        assert bed.guard.down
        bed.run(0.5)
        lrs.stop()
        assert not bed.guard.down
        assert bed.guard.crashes == 1
        assert bed.guard.invalid_drops == 0
        assert lrs.stats.completed > 0


class TestModifiedSchemeRestart:
    def test_local_guard_cookie_survives_rotation(self):
        bed = GuardTestbed(seed=3, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", via_local_guard=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.02)
        lrs.start()
        bed.run(0.1)
        state = bed.guard.crash()
        bed.guard.restart(state, rotate_key=True)
        completed_before = lrs.stats.completed
        bed.run(0.3)
        lrs.stop()
        assert lrs.stats.completed > completed_before
        assert bed.guard.invalid_drops == 0
