"""Unit tests for FaultPlan scheduling and the individual fault actions."""

from ipaddress import IPv4Address

import pytest

from repro.faults import (
    BurstyLoss,
    Callback,
    FAULT_STREAM,
    FaultPlan,
    GilbertElliottLoss,
    LinkDown,
    LinkFlap,
)
from repro.netsim import Link, Node, Simulator


def topology(seed=0, **link_kwargs):
    sim = Simulator(seed=seed)
    a = Node(sim, "a")
    a.add_address("10.0.0.1")
    b = Node(sim, "b")
    b.add_address("10.0.0.2")
    link = Link(sim, a, b, delay=0.001, **link_kwargs)
    return sim, a, b, link


class TestChildRng:
    def test_same_name_returns_same_stream(self):
        sim = Simulator(seed=1)
        assert sim.child_rng("x") is sim.child_rng("x")

    def test_streams_reproducible_across_simulators(self):
        draws1 = [Simulator(seed=5).child_rng(FAULT_STREAM).random() for _ in range(3)]
        draws2 = [Simulator(seed=5).child_rng(FAULT_STREAM).random() for _ in range(3)]
        assert draws1 == draws2

    def test_streams_differ_by_seed_and_name(self):
        sim = Simulator(seed=5)
        other_seed = Simulator(seed=6)
        assert sim.child_rng("x").random() != other_seed.child_rng("x").random()
        sim2 = Simulator(seed=5)
        assert sim2.child_rng("x").random() != sim2.child_rng("y").random()

    def test_child_stream_does_not_touch_core_rng(self):
        sim = Simulator(seed=7)
        expected = Simulator(seed=7).rng.random()
        sim.child_rng(FAULT_STREAM).random()
        assert sim.rng.random() == expected


class TestFaultPlan:
    def test_negative_time_rejected(self):
        sim, a, b, link = topology()
        with pytest.raises(ValueError):
            FaultPlan().add(-0.1, LinkDown(link))

    def test_double_schedule_rejected(self):
        sim, a, b, link = topology()
        plan = FaultPlan()
        plan.add(0.1, LinkDown(link))
        plan.schedule(sim)
        with pytest.raises(RuntimeError):
            plan.schedule(sim)

    def test_extend_composes_plans(self):
        sim, a, b, link = topology()
        plan = FaultPlan()
        plan.add(0.1, LinkDown(link))
        other = FaultPlan()
        other.add(0.2, LinkDown(link))
        assert len(plan.extend(other)) == 2

    def test_callback_runs_at_time(self):
        sim, a, b, link = topology()
        fired = []
        plan = FaultPlan()
        plan.add(0.5, Callback(lambda ctx: fired.append(ctx.sim.now), label="mark"))
        plan.schedule(sim)
        sim.run(until=1.0)
        assert fired == [0.5]


class TestLinkDownAndFlap:
    def test_blackout_reverts_after_duration(self):
        sim, a, b, link = topology()
        states = []
        plan = FaultPlan()
        plan.add(0.1, LinkDown(link, duration=0.2))
        plan.schedule(sim)
        sim.schedule_at(0.05, lambda: states.append(link.up))
        sim.schedule_at(0.15, lambda: states.append(link.up))
        sim.schedule_at(0.35, lambda: states.append(link.up))
        sim.run(until=0.5)
        assert states == [True, False, True]

    def test_blackout_drops_packets(self):
        sim, a, b, link = topology()
        got = []
        b.udp.bind(9, lambda p, *rest: got.append(p))
        plan = FaultPlan()
        plan.add(0.0, LinkDown(link, duration=0.1))
        plan.schedule(sim)
        sock = a.udp.bind_ephemeral(lambda *args: None)
        sim.schedule_at(0.05, lambda: sock.send(b"lost", IPv4Address("10.0.0.2"), 9))
        sim.schedule_at(0.2, lambda: sock.send(b"ok", IPv4Address("10.0.0.2"), 9))
        sim.run(until=0.5)
        assert got == [b"ok"]

    def test_flap_cycles(self):
        sim, a, b, link = topology()
        transitions = []
        plan = FaultPlan()
        plan.add(0.1, LinkFlap(link, down_for=0.05, up_for=0.05, count=3))
        plan.schedule(sim)
        probe_times = [0.12, 0.17, 0.22, 0.27, 0.32, 0.4]
        for t in probe_times:
            sim.schedule_at(t, lambda: transitions.append(link.up))
        sim.run(until=1.0)
        assert transitions == [False, True, False, True, False, True]

    def test_flap_validation(self):
        sim, a, b, link = topology()
        with pytest.raises(ValueError):
            LinkFlap(link, down_for=0.1, up_for=0.1, count=0)
        with pytest.raises(ValueError):
            LinkFlap(link, down_for=0.0, up_for=0.1, count=1)


class TestBurstyLoss:
    def test_model_installed_and_reverted(self):
        sim, a, b, link = topology()
        action = BurstyLoss(link, duration=0.2)
        plan = FaultPlan()
        plan.add(0.1, action)
        plan.schedule(sim)
        sim.run(until=0.15)
        assert link.loss_model is action.model
        sim.run(until=0.5)
        assert link.loss_model is None

    def test_gilbert_elliott_bad_state_drops(self):
        import random

        rng = random.Random(1)
        model = GilbertElliottLoss(
            rng, p_good_to_bad=1.0, p_bad_to_good=0.0, loss_good=0.0, loss_bad=1.0
        )
        # first step enters the bad state and stays: everything drops
        assert all(model.should_drop() for _ in range(50))
        assert model.drops == 50

    def test_gilbert_elliott_good_state_passes(self):
        import random

        model = GilbertElliottLoss(random.Random(1), p_good_to_bad=0.0, p_bad_to_good=1.0)
        assert not any(model.should_drop() for _ in range(50))

    def test_gilbert_elliott_validation(self):
        import random

        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(0), p_good_to_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(0), loss_bad=-0.1)
