"""Fault actions coinciding with guard timers: the simultaneity contract.

Referenced by ``FaultAction.schedule`` (``src/repro/faults/plan.py``):
fault actions run in the boundary priority lane, so a GuardCrash landing
at the exact instant of a guard sweep shares one tie group with it — and
must converge to the same post-instant state regardless of intra-group
order, because ``crash()`` cancels the sweeper and cancellation is
honoured inside a tie group.
"""

from repro.analysis.races import run_monitored
from repro.dns import LrsSimulator
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.faults import FaultPlan, GuardCrash


def crash_at_sweep_instant(seed=0, *, downtime=0.4):
    """A loaded testbed whose GuardCrash fires exactly at the t=1.0 sweep."""
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="referral")
    client = bed.add_client("lrs")
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.02)
    plan = FaultPlan()
    plan.add(1.0, GuardCrash(bed.guard, downtime=downtime))
    plan.schedule(bed.sim)
    return bed, lrs


class TestCrashMeetsSweep:
    def test_crash_at_sweep_instant_converges(self):
        bed, lrs = crash_at_sweep_instant()
        lrs.start()
        bed.run(1.2)
        # the instant resolved cleanly: guard down, soft state wiped, and
        # no sweeper left alive on a crashed guard
        assert bed.guard.down
        assert bed.guard.pending_exchanges == 0
        assert bed.guard._sweeper is None
        bed.run(0.4)  # past restart at t=1.4
        lrs.stop()
        assert not bed.guard.down
        assert bed.guard._sweeper is not None
        assert bed.guard.stats()["crashes"] == 1

    def test_crash_at_sweep_instant_is_race_free(self):
        """The regression: before fault actions moved to the boundary lane,
        a crash sharing an instant with packet deliveries or the sweep was
        an insertion-order artifact; now the lane contract (and the
        documented plan-order allowance) makes the monitored run clean."""

        def scenario():
            bed, lrs = crash_at_sweep_instant(seed=3)
            lrs.start()
            bed.run(2.0)
            lrs.stop()

        report = run_monitored(scenario)
        assert report.multi_groups > 0  # the aligned instant really grouped
        assert report.ok, report.summary()

    def test_monitoring_does_not_change_outcome(self):
        """W002 discipline: the grouped/instrumented path must leave the
        scenario's observable results exactly as the fast path does."""

        def outcome():
            bed, lrs = crash_at_sweep_instant(seed=5)
            lrs.start()
            bed.run(2.0)
            lrs.stop()
            return (
                lrs.stats.completed,
                lrs.stats.timeouts,
                bed.guard.stats()["crashes"],
                bed.ans.requests_served,
            )

        plain = outcome()
        monitored = []
        run_monitored(lambda: monitored.append(outcome()))
        assert monitored[0] == plain
