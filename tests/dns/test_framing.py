"""Unit tests for DNS-over-TCP stream framing."""

import pytest

from repro.dns import StreamFramer, frame
from repro.dnswire import make_query


class TestFraming:
    def test_frame_prefixes_length(self):
        query = make_query("www.foo.com", msg_id=1)
        framed = frame(query)
        wire = query.encode()
        assert framed[:2] == len(wire).to_bytes(2, "big")
        assert framed[2:] == wire

    def test_single_message_round_trip(self):
        framer = StreamFramer()
        query = make_query("www.foo.com", msg_id=7)
        (decoded,) = framer.feed(frame(query))
        assert decoded.header.msg_id == 7

    def test_byte_by_byte_delivery(self):
        framer = StreamFramer()
        data = frame(make_query("www.foo.com", msg_id=9))
        messages = []
        for i in range(len(data)):
            messages.extend(framer.feed(data[i : i + 1]))
        assert len(messages) == 1
        assert messages[0].header.msg_id == 9
        assert framer.pending_bytes == 0

    def test_two_messages_in_one_chunk(self):
        framer = StreamFramer()
        blob = frame(make_query("a.com", msg_id=1)) + frame(make_query("b.com", msg_id=2))
        messages = framer.feed(blob)
        assert [m.header.msg_id for m in messages] == [1, 2]

    def test_partial_second_message_waits(self):
        framer = StreamFramer()
        first = frame(make_query("a.com", msg_id=1))
        second = frame(make_query("b.com", msg_id=2))
        messages = framer.feed(first + second[:3])
        assert len(messages) == 1
        assert framer.pending_bytes == 3
        messages = framer.feed(second[3:])
        assert len(messages) == 1

    def test_oversize_message_rejected(self):
        from repro.dnswire import Message, Name, ResourceRecord, RRClass, RRType, TXT

        msg = Message()
        for _ in range(400):
            msg.answers.append(
                ResourceRecord(Name.from_text("x.com"), RRType.TXT, RRClass.IN, 1,
                               TXT.single(b"y" * 250))
            )
        with pytest.raises(ValueError):
            frame(msg)
