"""Multi-name (uniform/Zipf) workloads in the LRS simulator."""

from collections import Counter

import pytest

from repro.dns import LrsSimulator
from repro.dnswire import Message, Name
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed


NAMES = [f"host{i}.foo.com" for i in range(20)]


def spy_names(bed):
    """Record qnames of queries the ANS actually serves."""
    seen = Counter()
    original = bed.ans.respond

    def spy(query):
        seen[str(query.question.qname)] += 1
        return original(query)

    bed.ans.respond = spy
    return seen


class TestMultiNameWorkload:
    def test_uniform_draws_every_name(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_enabled=False)
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, qnames=NAMES, workload="plain",
                           concurrency=4)
        seen = spy_names(bed)
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        assert len(seen) == len(NAMES)
        counts = sorted(seen.values())
        assert counts[0] > counts[-1] * 0.3  # roughly even

    def test_zipf_skews_toward_head(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_enabled=False)
        client = bed.add_client("lrs")
        lrs = LrsSimulator(
            client, ANS_ADDRESS, qnames=NAMES, workload="plain",
            concurrency=4, name_distribution="zipf", zipf_s=1.2,
        )
        seen = spy_names(bed)
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        head = seen[str(Name.from_text(NAMES[0]))]
        tail = seen[str(Name.from_text(NAMES[-1]))]
        assert head > tail * 3

    def test_per_name_cookie_caches(self):
        """Each name earns its own COOKIE2 under the fabricated scheme."""
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(
            client, ANS_ADDRESS, qnames=NAMES[:5], workload="nonreferral",
            concurrency=2,
        )
        lrs.start()
        bed.run(0.5)
        lrs.stop()
        assert len(lrs._cookie2_addresses) == 5
        # all fabricated addresses are the same (cookie depends on the
        # source address, not the name) but each name cached it separately
        assert len(set(lrs._cookie2_addresses.values())) == 1

    def test_single_name_compat(self):
        bed = GuardTestbed(ans="simulator", ans_mode="nonexistent" if False else "answer")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, "www.foo.com", workload="nonreferral")
        lrs.start()
        bed.run(0.1)
        lrs.stop()
        assert lrs._cookie2_address is not None  # legacy accessor still works

    def test_invalid_distribution_rejected(self):
        bed = GuardTestbed(ans="simulator")
        client = bed.add_client("lrs")
        with pytest.raises(ValueError):
            LrsSimulator(client, ANS_ADDRESS, qnames=NAMES, name_distribution="pareto")
