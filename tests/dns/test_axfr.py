"""AXFR zone transfer and the secondary server."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AuthoritativeServer, SecondaryServer, Zone
from repro.dnswire import Name, RRType, soa_record
from repro.netsim import Link, Node, Simulator

PRIMARY_IP = IPv4Address("203.0.113.53")
SECONDARY_IP = IPv4Address("203.0.113.54")
STRANGER_IP = IPv4Address("10.9.9.9")


def build(record_count=10, allow_secondary=True, serial=7):
    sim = Simulator(seed=1)
    primary_node = Node(sim, "primary")
    primary_node.add_address(PRIMARY_IP)
    secondary_node = Node(sim, "secondary")
    secondary_node.add_address(SECONDARY_IP)
    stranger_node = Node(sim, "stranger")
    stranger_node.add_address(STRANGER_IP)
    hub = Node(sim, "hub")
    hub.add_address("10.255.255.1")
    for node, ip in (
        (primary_node, PRIMARY_IP),
        (secondary_node, SECONDARY_IP),
        (stranger_node, STRANGER_IP),
    ):
        link = Link(sim, node, hub, delay=0.0002)
        node.set_default_route(link)
        hub.add_route(f"{ip}/32", link)

    zone = Zone("foo.com.")
    zone.add(soa_record("foo.com.", serial=serial))
    for i in range(record_count):
        zone.add_a(f"h{i}.foo.com.", f"198.51.{i // 250}.{i % 250 + 1}")
    primary = AuthoritativeServer(
        primary_node, [zone],
        axfr_allow=[SECONDARY_IP] if allow_secondary else None,
    )
    secondary = SecondaryServer(secondary_node, PRIMARY_IP)
    stranger = SecondaryServer(stranger_node, PRIMARY_IP)
    return sim, zone, primary, secondary, stranger


def do_transfer(sim, secondary, origin="foo.com."):
    results = []
    secondary.transfer(origin, results.append)
    sim.run(until=sim.now + 10.0)
    assert results, "transfer never completed"
    return results[0]


class TestAxfr:
    def test_full_zone_transferred(self):
        sim, zone, primary, secondary, _ = build(record_count=10)
        result = do_transfer(sim, secondary)
        assert result.status == "ok"
        assert result.serial == 7
        assert result.records == zone.record_count()
        assert primary.axfr_served == 1

    def test_transferred_zone_answers_queries(self):
        sim, zone, primary, secondary, _ = build()
        result = do_transfer(sim, secondary)
        lookup = result.zone.lookup(Name.from_text("h3.foo.com."), RRType.A)
        assert lookup.records
        assert secondary.serials[Name.from_text("foo.com.")] == 7

    def test_large_zone_spans_multiple_messages(self):
        sim, zone, primary, secondary, _ = build(record_count=250)
        result = do_transfer(sim, secondary)
        assert result.status == "ok"
        assert result.records == zone.record_count()

    def test_unauthorised_requester_refused(self):
        sim, zone, primary, secondary, stranger = build()
        result = do_transfer(sim, stranger)
        assert result.status == "refused"
        assert primary.axfr_refused == 1

    def test_axfr_disabled_by_default(self):
        sim, zone, primary, secondary, _ = build(allow_secondary=False)
        result = do_transfer(sim, secondary)
        assert result.status == "refused"

    def test_unknown_zone_refused(self):
        sim, zone, primary, secondary, _ = build()
        result = do_transfer(sim, secondary, origin="bar.org.")
        assert result.status == "refused"

    def test_timeout_when_primary_dark(self):
        sim, zone, primary, secondary, _ = build()
        primary.node.tcp._listeners.clear()
        secondary.timeout = 0.5
        result = do_transfer(sim, secondary)
        assert result.status in ("timeout", "error")
        assert secondary.transfers_failed == 1

    def test_secondary_serves_transferred_zone(self):
        """End to end: transfer, stand up an ANS on the secondary, query it."""
        from repro.dnswire import make_query

        sim, zone, primary, secondary, _ = build()
        result = do_transfer(sim, secondary)
        AuthoritativeServer(secondary.node, [result.zone])
        client = Node(sim, "client")
        client.add_address("10.0.0.1")
        hub = primary.node.links[0].other(primary.node)
        link = Link(sim, client, hub, delay=0.0002)
        client.set_default_route(link)
        hub.add_route("10.0.0.1/32", link)
        answers = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: answers.append(p))
        sock.send(make_query("h5.foo.com.", msg_id=1), SECONDARY_IP, 53)
        sim.run(until=sim.now + 1.0)
        assert answers and answers[0].answers
