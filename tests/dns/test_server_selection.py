"""BIND-style smoothed-RTT server selection in the recursive resolver."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AuthoritativeServer, LocalRecursiveServer, Zone
from repro.dnswire import RRType, soa_record
from repro.netsim import Link, Node, Simulator

NEAR_IP = IPv4Address("192.0.2.1")
FAR_IP = IPv4Address("192.0.2.2")
LRS_IP = IPv4Address("10.0.0.53")


def dual_server_setup(*, near_delay=0.0005, far_delay=0.02, seed=0):
    """Two authoritative servers for the same zone at different distances."""
    sim = Simulator(seed=seed)
    hub = Node(sim, "hub")
    hub.add_address("10.255.255.1")

    def attach(name, ip, delay):
        node = Node(sim, name)
        node.add_address(ip)
        link = Link(sim, node, hub, delay=delay)
        node.set_default_route(link)
        hub.add_route(f"{ip}/32", link)
        return node

    zone_data = Zone(".")
    zone_data.add(soa_record("."))
    zone_data.add_a("www.example.", "198.51.100.80", ttl=0)  # TTL 0: re-query

    near = AuthoritativeServer(attach("near", NEAR_IP, near_delay), [zone_data])
    far = AuthoritativeServer(attach("far", FAR_IP, far_delay), [zone_data])
    lrs_node = attach("lrs", LRS_IP, 0.0001)
    lrs = LocalRecursiveServer(lrs_node, [FAR_IP, NEAR_IP], timeout=0.2)
    return sim, lrs, near, far


def resolve(sim, lrs, name="www.example."):
    results = []
    lrs.resolve(name, RRType.A, results.append)
    sim.run(until=sim.now + 5.0)
    assert results
    return results[0]


class TestServerSelection:
    def test_learns_rtt_estimates(self):
        sim, lrs, near, far = dual_server_setup()
        resolve(sim, lrs)
        # at least one server has a measured RTT now
        assert lrs.server_rtt(FAR_IP) is not None or lrs.server_rtt(NEAR_IP) is not None

    def test_untried_servers_get_a_chance(self):
        """Both servers are eventually sampled across repeated queries."""
        sim, lrs, near, far = dual_server_setup()
        for _ in range(4):
            resolve(sim, lrs)
        assert lrs.server_rtt(NEAR_IP) is not None
        assert lrs.server_rtt(FAR_IP) is not None

    def test_prefers_faster_server_once_learned(self):
        sim, lrs, near, far = dual_server_setup()
        for _ in range(5):
            resolve(sim, lrs)
        near_before, far_before = near.requests_served, far.requests_served
        for _ in range(10):
            resolve(sim, lrs)
        # steady state: the near server takes (essentially) all the traffic
        assert near.requests_served - near_before >= 9
        assert far.requests_served - far_before <= 1

    def test_ranking_orders_by_srtt(self):
        sim, lrs, near, far = dual_server_setup()
        lrs.note_rtt(NEAR_IP, 0.001)
        lrs.note_rtt(FAR_IP, 0.040)
        assert lrs.rank_servers([FAR_IP, NEAR_IP]) == [NEAR_IP, FAR_IP]

    def test_timeout_penalty_triggers_failover(self):
        sim, lrs, near, far = dual_server_setup()
        for _ in range(5):
            resolve(sim, lrs)
        # the near (preferred) server goes dark
        near.node.udp._sockets.clear()
        result = resolve(sim, lrs)
        assert result.ok  # failed over to the far server
        assert lrs.server_rtt(NEAR_IP) > lrs.server_rtt(FAR_IP)

    def test_srtt_smoothing(self):
        sim, lrs, near, far = dual_server_setup()
        lrs.note_rtt(NEAR_IP, 0.010)
        lrs.note_rtt(NEAR_IP, 0.020)
        assert lrs.server_rtt(NEAR_IP) == pytest.approx(0.7 * 0.010 + 0.3 * 0.020)
