"""Shared fixtures: a three-level DNS hierarchy (root, com, foo.com) on a LAN."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AuthoritativeServer, LocalRecursiveServer, Zone
from repro.dnswire import soa_record
from repro.netsim import Link, Node, Simulator

ROOT_IP = IPv4Address("198.41.0.4")
COM_IP = IPv4Address("192.5.6.30")
FOO_IP = IPv4Address("203.0.113.53")
LRS_IP = IPv4Address("10.0.0.53")


class Hierarchy:
    """Root, com and foo.com servers plus an LRS, all joined by a router."""

    def __init__(self, *, seed=0, delay=0.0002, lrs_timeout=2.0, answer_ttl=None):
        self.sim = Simulator(seed=seed)
        self.router = Node(self.sim, "router")
        self.router.add_address("10.255.255.1")

        def host(name, ip):
            node = Node(self.sim, name)
            node.add_address(ip)
            link = Link(self.sim, node, self.router, delay=delay)
            node.set_default_route(link)
            self.router.add_route(f"{ip}/32", link)
            return node

        self.root_node = host("root", ROOT_IP)
        self.com_node = host("com", COM_IP)
        self.foo_node = host("foo", FOO_IP)
        self.lrs_node = host("lrs", LRS_IP)

        root_zone = Zone(".")
        root_zone.add(soa_record("."))
        root_zone.delegate("com.", "a.gtld-servers.net.", COM_IP)
        # glue for out-of-zone NS target lives with the delegation
        com_zone = Zone("com.")
        com_zone.add(soa_record("com."))
        com_zone.delegate("foo.com.", "ns1.foo.com.", FOO_IP)
        foo_zone = Zone("foo.com.")
        foo_zone.add(soa_record("foo.com."))
        foo_zone.add_a("www.foo.com.", "198.51.100.80", ttl=answer_ttl or 3600)
        foo_zone.add_a("ns1.foo.com.", FOO_IP)
        foo_zone.add_a("mail.foo.com.", "198.51.100.25")

        self.root = AuthoritativeServer(self.root_node, [root_zone])
        self.com = AuthoritativeServer(self.com_node, [com_zone])
        self.foo = AuthoritativeServer(self.foo_node, [foo_zone])
        self.lrs = LocalRecursiveServer(
            self.lrs_node, [ROOT_IP], timeout=lrs_timeout, serve_clients=True
        )


@pytest.fixture
def hierarchy():
    return Hierarchy()
