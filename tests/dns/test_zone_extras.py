"""Wildcard synthesis (RFC 1034 §4.3.3) and SRV records."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AnswerKind, Zone, parse_zone_text
from repro.dnswire import Message, Name, RRType, SRV, soa_record


def wild_zone() -> Zone:
    zone = Zone("foo.com")
    zone.add(soa_record("foo.com"))
    zone.add_a("www.foo.com", "198.51.100.80")
    zone.add_a("*.foo.com", "198.51.100.99")
    zone.add_a("exact.dyn.foo.com", "198.51.100.50")
    return zone


class TestWildcards:
    def test_wildcard_synthesizes_missing_name(self):
        result = wild_zone().lookup(Name.from_text("anything.foo.com"), RRType.A)
        assert result.kind is AnswerKind.ANSWER
        assert result.records[0].rdata.address == IPv4Address("198.51.100.99")
        # the owner name is rewritten to the query name
        assert result.records[0].name == Name.from_text("anything.foo.com")

    def test_exact_match_beats_wildcard(self):
        result = wild_zone().lookup(Name.from_text("www.foo.com"), RRType.A)
        assert result.records[0].rdata.address == IPv4Address("198.51.100.80")

    def test_existing_node_blocks_wildcard_above(self):
        """'exact.dyn.foo.com' exists, so its closest encloser is itself for
        deeper names — the apex wildcard must not match below it."""
        zone = wild_zone()
        result = zone.lookup(Name.from_text("sub.exact.dyn.foo.com"), RRType.A)
        assert result.kind is AnswerKind.NXDOMAIN

    def test_wildcard_at_deeper_level(self):
        zone = wild_zone()
        zone.add_a("*.exact.dyn.foo.com", "198.51.100.51")
        result = zone.lookup(Name.from_text("sub.exact.dyn.foo.com"), RRType.A)
        assert result.records[0].rdata.address == IPv4Address("198.51.100.51")

    def test_wildcard_nodata_for_missing_type(self):
        result = wild_zone().lookup(Name.from_text("anything.foo.com"), RRType.MX)
        assert result.kind is AnswerKind.NODATA

    def test_wildcard_not_used_for_multilabel_gap(self):
        """a.b.foo.com: the closest encloser is the apex (b.foo.com doesn't
        exist), so the apex wildcard applies (RFC 1034 semantics)."""
        result = wild_zone().lookup(Name.from_text("a.b.foo.com"), RRType.A)
        assert result.kind is AnswerKind.ANSWER

    def test_wildcard_in_zone_file(self):
        zone = parse_zone_text(
            "$ORIGIN dyn.example.\n@ IN SOA ns1 h 1 2 3 4 5\n* IN A 10.0.0.1\n"
        )
        result = zone.lookup(Name.from_text("host42.dyn.example"), RRType.A)
        assert result.kind is AnswerKind.ANSWER


class TestSrv:
    def test_wire_round_trip(self):
        from repro.dnswire import ResourceRecord, RRClass, make_query, make_response

        rr = ResourceRecord(
            Name.from_text("_dns._tcp.foo.com"), RRType.SRV, RRClass.IN, 300,
            SRV(10, 60, 53, Name.from_text("ns1.foo.com")),
        )
        response = make_response(make_query("_dns._tcp.foo.com", RRType.SRV))
        response.answers.append(rr)
        decoded = Message.decode(response.encode())
        srv = decoded.answers[0].rdata
        assert (srv.priority, srv.weight, srv.port) == (10, 60, 53)
        assert srv.target == Name.from_text("ns1.foo.com")

    def test_zone_file_srv(self):
        zone = parse_zone_text(
            "$ORIGIN foo.com.\n"
            "@ IN SOA ns1 h 1 2 3 4 5\n"
            "_dns._tcp IN SRV 0 5 53 ns1\n"
            "ns1 IN A 10.0.0.53\n"
        )
        result = zone.lookup(Name.from_text("_dns._tcp.foo.com"), RRType.SRV)
        assert result.kind is AnswerKind.ANSWER
        assert result.records[0].rdata.port == 53

    def test_short_srv_rejected(self):
        from repro.dnswire import DecodeError

        with pytest.raises(DecodeError):
            SRV.decode(b"\x00\x01\x00", 0, 3)
