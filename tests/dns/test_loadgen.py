"""Unit tests for the ANS/LRS load simulators."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AnsSimulator, LrsSimulator, TcpLoadClient
from repro.dnswire import Message, RRType, make_query
from repro.netsim import Link, Node, Simulator

ANS_IP = IPv4Address("203.0.113.53")


def direct_pair(seed=0, **ans_kwargs):
    """Client and ANS simulator joined by one link (no guard)."""
    sim = Simulator(seed=seed)
    client = Node(sim, "client")
    client.add_address("10.0.0.1")
    ans_node = Node(sim, "ans")
    ans_node.add_address(ANS_IP)
    Link(sim, client, ans_node, delay=0.0002)
    ans = AnsSimulator(ans_node, **ans_kwargs)
    return sim, client, ans


class TestAnsSimulator:
    def test_answer_mode_returns_fixed_a(self):
        sim, client, ans = direct_pair(mode="answer", answer_address="198.51.100.10")
        got = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: got.append(p))
        sock.send(make_query("anything.example", msg_id=3), ANS_IP, 53)
        sim.run(until=1.0)
        assert got[0].answers[0].rdata.address == IPv4Address("198.51.100.10")
        assert got[0].header.aa

    def test_referral_mode_returns_ns_plus_glue(self):
        sim, client, ans = direct_pair(mode="referral")
        got = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: got.append(p))
        sock.send(make_query("www.foo.com", msg_id=4), ANS_IP, 53)
        sim.run(until=1.0)
        response = got[0]
        assert not response.answers
        assert response.authorities[0].rtype == RRType.NS
        assert response.additionals[0].rtype == RRType.A

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            direct_pair(mode="bogus")

    def test_capacity_is_request_cost_inverse(self):
        # a deeper queue so pacing, not socket-buffer drops, sets the rate
        sim, client, ans = direct_pair(request_cost=1.0 / 1000.0, queue_limit=0.05)
        # a timeout above the worst queueing delay, so pacing is the limit
        lrs = LrsSimulator(client, ANS_IP, workload="plain", concurrency=16, timeout=0.1)
        lrs.start()
        sim.run(until=0.2)
        lrs.stats.begin_window(sim.now)
        sim.run(until=1.2)
        lrs.stop()
        assert lrs.stats.throughput(sim.now) == pytest.approx(1000.0, rel=0.1)

    def test_overload_drops(self):
        sim, client, ans = direct_pair(request_cost=1.0 / 100.0)
        sock = client.udp.bind_ephemeral(lambda *a: None)
        for i in range(500):
            sock.send(make_query("x.com", msg_id=i), ANS_IP, 53)
        sim.run(until=2.0)
        assert ans.requests_dropped > 0
        assert ans.requests_served + ans.requests_dropped == 500


class TestLrsSimulator:
    def test_closed_loop_paces_on_rtt(self):
        sim, client, ans = direct_pair(mode="answer")
        lrs = LrsSimulator(client, ANS_IP, workload="plain", concurrency=1)
        lrs.start()
        sim.run(until=1.0)
        lrs.stop()
        # one loop at 0.4 ms RTT -> ~2500 req/s
        assert lrs.stats.completed == pytest.approx(2500, rel=0.1)

    def test_concurrency_scales_throughput(self):
        sim, client, ans = direct_pair(mode="answer")
        lrs = LrsSimulator(client, ANS_IP, workload="plain", concurrency=8)
        lrs.start()
        sim.run(until=0.5)
        lrs.stop()
        assert lrs.stats.completed == pytest.approx(8 * 2500 * 0.5, rel=0.15)

    def test_timeout_counted_when_server_dark(self):
        sim = Simulator()
        client = Node(sim, "client")
        client.add_address("10.0.0.1")
        dark = Node(sim, "dark")
        dark.add_address(ANS_IP)
        Link(sim, client, dark, delay=0.0002)
        lrs = LrsSimulator(client, ANS_IP, workload="plain", timeout=0.01)
        lrs.start()
        sim.run(until=0.1)
        lrs.stop()
        assert lrs.stats.completed == 0
        assert lrs.stats.timeouts >= 8

    def test_target_rate_paces_below_capacity(self):
        sim, client, ans = direct_pair(mode="answer")
        lrs = LrsSimulator(
            client, ANS_IP, workload="plain", concurrency=16, target_rate=1000.0
        )
        lrs.start()
        sim.run(until=0.5)
        lrs.stats.begin_window(sim.now)
        sim.run(until=2.5)
        lrs.stop()
        assert lrs.stats.throughput(sim.now) == pytest.approx(1000.0, rel=0.1)

    def test_invalid_workload_rejected(self):
        sim, client, ans = direct_pair()
        with pytest.raises(ValueError):
            LrsSimulator(client, ANS_IP, workload="nope")

    def test_latency_recording(self):
        sim, client, ans = direct_pair(mode="answer")
        lrs = LrsSimulator(client, ANS_IP, workload="plain")
        lrs.record_latencies = True
        lrs.start()
        sim.run(until=0.05)
        lrs.stop()
        assert lrs.latencies
        assert all(lat == pytest.approx(0.0004, rel=0.2) for lat in lrs.latencies)

    def test_window_throughput_counter(self):
        sim, client, ans = direct_pair(mode="answer")
        lrs = LrsSimulator(client, ANS_IP, workload="plain", concurrency=4)
        lrs.start()
        sim.run(until=0.1)
        lrs.stats.begin_window(sim.now)
        before = lrs.stats.completed
        sim.run(until=0.3)
        assert lrs.stats.window_completed == lrs.stats.completed - before
        lrs.stop()


class TestTcpLoadClient:
    def test_requests_complete_over_tcp(self):
        from repro.dns import AuthoritativeServer, Zone

        sim = Simulator()
        client = Node(sim, "client")
        client.add_address("10.0.0.1")
        ans_node = Node(sim, "ans")
        ans_node.add_address(ANS_IP)
        Link(sim, client, ans_node, delay=0.0002)
        zone = Zone("foo.com.")
        zone.add_a("www.foo.com.", "198.51.100.80")
        AuthoritativeServer(ans_node, [zone])
        tcp = TcpLoadClient(client, ANS_IP, concurrency=4)
        tcp.start()
        sim.run(until=0.5)
        tcp.stop()
        assert tcp.stats.completed > 50
        assert tcp.stats.timeouts == 0
