"""DNS-0x20 case randomisation in the recursive resolver."""

from ipaddress import IPv4Address

import pytest

from repro.dns.recursive import _randomize_case
from repro.dnswire import Name, RRType
from repro.netsim import DnsPayload, Packet, UdpDatagram
from tests.dns.conftest import FOO_IP, Hierarchy


class TestCaseRandomisation:
    def test_randomised_name_stays_equal(self):
        import random

        rng = random.Random(3)
        name = Name.from_text("www.foo.com")
        mixed = _randomize_case(name, rng)
        assert mixed == name  # DNS equality is case-insensitive
        assert mixed.wire_length() == name.wire_length()

    def test_randomisation_actually_flips_some_case(self):
        import random

        rng = random.Random(3)
        name = Name.from_text("somelongenoughname.example.org")
        variants = {_randomize_case(name, rng).labels for _ in range(10)}
        assert len(variants) > 1

    def test_digits_and_punctuation_untouched(self):
        import random

        rng = random.Random(3)
        name = Name.from_text("a1-2b.x0")
        mixed = _randomize_case(name, rng)
        for orig, flip in zip(name.labels, mixed.labels):
            for byte_o, byte_f in zip(orig, flip):
                if not (65 <= byte_o <= 90 or 97 <= byte_o <= 122):
                    assert byte_o == byte_f


class TestResolverWith0x20:
    def test_resolution_succeeds_end_to_end(self):
        h = Hierarchy()
        assert h.lrs.use_0x20
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=10.0)
        assert results and results[0].ok

    def test_wrong_case_echo_rejected(self):
        """A forged response with the right id but un-echoed casing fails."""
        h = Hierarchy(seed=12)
        # off-path attacker node
        from repro.netsim import Link, Node

        attacker = Node(h.sim, "offpath")
        attacker.add_address("10.66.0.66")
        link = Link(h.sim, attacker, h.router, delay=0.00001)
        attacker.set_default_route(link)
        h.router.add_route("10.66.0.66/32", link)

        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        # forge answers with every plausible msg id but all-lowercase qname:
        # even an attacker who guesses the id and port fails the 0x20 echo
        # (probabilistically — "www.foo.com" has 9 letters => 1/512 chance
        # per guess of matching; none of these lowercase forgeries can)
        from repro.dnswire import Header, Message, Question, RRClass, a_record

        for port in range(49152, 49156):
            for msg_id in range(0, 65536, 512):
                forged = Message(header=Header(msg_id=msg_id, qr=True, aa=True))
                lower = Name.from_text("www.foo.com")
                forged.questions.append(Question(lower, RRType.A, RRClass.IN))
                forged.answers.append(a_record(lower, "6.6.6.6", ttl=3600))
                attacker.send(
                    Packet(
                        src=FOO_IP,
                        dst=IPv4Address("10.0.0.53"),
                        segment=UdpDatagram(53, port, DnsPayload(forged)),
                    )
                )
        h.sim.run(until=10.0)
        assert results and results[0].ok
        assert results[0].addresses() == [IPv4Address("198.51.100.80")]

    def test_guard_cookie_labels_survive_0x20(self):
        """The guard verifies cookie labels case-insensitively, so 0x20
        resolvers work through it unmodified."""
        from repro.experiments.hierarchy import GuardedHierarchy, WWW_IP

        h = GuardedHierarchy(guard_root=True, guard_foo=True)
        assert h.lrs.use_0x20
        result = h.resolve("www.foo.com")
        assert result.ok
        assert result.addresses() == [WWW_IP]

    def test_0x20_can_be_disabled(self):
        h = Hierarchy()
        h.lrs.use_0x20 = False
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=10.0)
        assert results and results[0].ok
