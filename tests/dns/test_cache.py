"""Unit tests for the resolver cache."""

from repro.dns import DnsCache
from repro.dnswire import Name, RRType, a_record


WWW = Name.from_text("www.foo.com")


class TestDnsCache:
    def test_put_get_round_trip(self):
        cache = DnsCache()
        cache.put(WWW, RRType.A, [a_record(WWW, "1.2.3.4", ttl=60)], now=0.0)
        got = cache.get(WWW, RRType.A, now=10.0)
        assert got is not None
        assert got[0].rdata.address.exploded == "1.2.3.4"

    def test_expiry(self):
        cache = DnsCache()
        cache.put(WWW, RRType.A, [a_record(WWW, "1.2.3.4", ttl=60)], now=0.0)
        assert cache.get(WWW, RRType.A, now=59.9) is not None
        assert cache.get(WWW, RRType.A, now=60.0) is None

    def test_ttl_zero_never_cached(self):
        cache = DnsCache()
        cache.put(WWW, RRType.A, [a_record(WWW, "1.2.3.4", ttl=0)], now=0.0)
        assert cache.get(WWW, RRType.A, now=0.0) is None

    def test_ttl_ages_down(self):
        cache = DnsCache()
        cache.put(WWW, RRType.A, [a_record(WWW, "1.2.3.4", ttl=100)], now=0.0)
        got = cache.get(WWW, RRType.A, now=40.0)
        assert got[0].ttl == 60

    def test_rrset_ttl_is_minimum(self):
        cache = DnsCache()
        cache.put(
            WWW,
            RRType.A,
            [a_record(WWW, "1.2.3.4", ttl=100), a_record(WWW, "1.2.3.5", ttl=10)],
            now=0.0,
        )
        assert cache.get(WWW, RRType.A, now=11.0) is None

    def test_lru_bound(self):
        cache = DnsCache(max_entries=3)
        for i in range(5):
            name = Name.from_text(f"h{i}.foo.com")
            cache.put(name, RRType.A, [a_record(name, "1.2.3.4", ttl=60)], now=0.0)
        assert len(cache) == 3
        assert cache.get(Name.from_text("h0.foo.com"), RRType.A, now=0.0) is None
        assert cache.get(Name.from_text("h4.foo.com"), RRType.A, now=0.0) is not None

    def test_get_refreshes_lru_position(self):
        cache = DnsCache(max_entries=2)
        a, b, c = (Name.from_text(f"{x}.foo.com") for x in "abc")
        cache.put(a, RRType.A, [a_record(a, "1.1.1.1", ttl=60)], now=0.0)
        cache.put(b, RRType.A, [a_record(b, "2.2.2.2", ttl=60)], now=0.0)
        cache.get(a, RRType.A, now=0.0)  # touch a so b becomes LRU
        cache.put(c, RRType.A, [a_record(c, "3.3.3.3", ttl=60)], now=0.0)
        assert cache.get(a, RRType.A, now=0.0) is not None
        assert cache.get(b, RRType.A, now=0.0) is None

    def test_hit_miss_counters(self):
        cache = DnsCache()
        cache.get(WWW, RRType.A, now=0.0)
        cache.put(WWW, RRType.A, [a_record(WWW, "1.2.3.4", ttl=60)], now=0.0)
        cache.get(WWW, RRType.A, now=0.0)
        assert cache.misses == 1 and cache.hits == 1

    def test_evict_and_flush(self):
        cache = DnsCache()
        cache.put(WWW, RRType.A, [a_record(WWW, "1.2.3.4", ttl=60)], now=0.0)
        cache.evict(WWW, RRType.A)
        assert cache.get(WWW, RRType.A, now=0.0) is None
        cache.put(WWW, RRType.A, [a_record(WWW, "1.2.3.4", ttl=60)], now=0.0)
        cache.flush()
        assert len(cache) == 0

    def test_empty_put_ignored(self):
        cache = DnsCache()
        cache.put(WWW, RRType.A, [], now=0.0)
        assert len(cache) == 0
