"""Negative caching (RFC 2308) in the cache and the resolver."""

import pytest

from repro.dns import DnsCache
from repro.dnswire import Name, RRType
from tests.dns.conftest import Hierarchy


WWW = Name.from_text("ghost.foo.com")


class TestNegativeCacheUnit:
    def test_put_and_check(self):
        cache = DnsCache()
        cache.put_negative(WWW, RRType.A, ttl=30.0, now=0.0)
        assert cache.is_negative(WWW, RRType.A, now=10.0)

    def test_expiry(self):
        cache = DnsCache()
        cache.put_negative(WWW, RRType.A, ttl=30.0, now=0.0)
        assert not cache.is_negative(WWW, RRType.A, now=30.0)

    def test_zero_ttl_not_cached(self):
        cache = DnsCache()
        cache.put_negative(WWW, RRType.A, ttl=0.0, now=0.0)
        assert not cache.is_negative(WWW, RRType.A, now=0.0)

    def test_type_specific(self):
        cache = DnsCache()
        cache.put_negative(WWW, RRType.A, ttl=30.0, now=0.0)
        assert not cache.is_negative(WWW, RRType.MX, now=0.0)

    def test_flush_and_evict_clear_negatives(self):
        cache = DnsCache()
        cache.put_negative(WWW, RRType.A, ttl=30.0, now=0.0)
        cache.evict(WWW, RRType.A)
        assert not cache.is_negative(WWW, RRType.A, now=0.0)
        cache.put_negative(WWW, RRType.A, ttl=30.0, now=0.0)
        cache.flush()
        assert not cache.is_negative(WWW, RRType.A, now=0.0)

    def test_negative_hit_counter(self):
        cache = DnsCache()
        cache.put_negative(WWW, RRType.A, ttl=30.0, now=0.0)
        cache.is_negative(WWW, RRType.A, now=1.0)
        assert cache.negative_hits == 1

    def test_bounded(self):
        cache = DnsCache(max_entries=4)
        for i in range(10):
            cache.put_negative(Name.from_text(f"n{i}.x"), RRType.A, 30.0, 0.0)
        assert len(cache._negative) == 4


class TestResolverNegativeCaching:
    def test_second_nxdomain_served_from_cache(self):
        h = Hierarchy()
        results = []
        h.lrs.resolve("ghost.foo.com", RRType.A, results.append)
        h.sim.run(until=h.sim.now + 5.0)
        assert results[0].status == "nxdomain"
        served_before = h.foo.requests_served

        h.lrs.resolve("ghost.foo.com", RRType.A, results.append)
        h.sim.run(until=h.sim.now + 5.0)
        assert results[1].status == "nxdomain"
        # no new query hit the authoritative server
        assert h.foo.requests_served == served_before
        assert results[1].latency == 0.0  # answered synchronously

    def test_negative_entry_expires(self):
        h = Hierarchy()
        results = []
        h.lrs.resolve("ghost.foo.com", RRType.A, results.append)
        h.sim.run(until=h.sim.now + 5.0)
        served_before = h.foo.requests_served
        # the testbed SOA minimum is 300 s: jump past it
        h.sim.run(until=h.sim.now + 301.0)
        h.lrs.resolve("ghost.foo.com", RRType.A, results.append)
        h.sim.run(until=h.sim.now + 5.0)
        assert h.foo.requests_served == served_before + 1

    def test_positive_name_not_affected(self):
        h = Hierarchy()
        results = []
        h.lrs.resolve("ghost.foo.com", RRType.A, results.append)
        h.sim.run(until=h.sim.now + 5.0)
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=h.sim.now + 5.0)
        assert results[1].ok
