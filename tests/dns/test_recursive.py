"""Integration-grade tests for the recursive resolver over a real hierarchy."""

from ipaddress import IPv4Address

import pytest

from repro.dnswire import Name, RRType
from tests.dns.conftest import Hierarchy, FOO_IP


def resolve(h, name, qtype=RRType.A, run_for=30.0):
    results = []
    h.lrs.resolve(name, qtype, results.append)
    h.sim.run(until=h.sim.now + run_for)
    assert results, "resolution never completed"
    return results[0]


class TestIterativeResolution:
    def test_full_chain_root_com_foo(self, hierarchy):
        result = resolve(hierarchy, "www.foo.com")
        assert result.ok
        assert result.addresses() == [IPv4Address("198.51.100.80")]
        # root referral, com referral, foo answer
        assert hierarchy.root.referrals_sent == 1
        assert hierarchy.com.referrals_sent == 1
        assert hierarchy.foo.answers_sent == 1

    def test_second_query_served_from_cache(self, hierarchy):
        resolve(hierarchy, "www.foo.com")
        sent_before = hierarchy.lrs.queries_sent
        result = resolve(hierarchy, "www.foo.com")
        assert result.ok
        assert hierarchy.lrs.queries_sent == sent_before  # pure cache hit

    def test_sibling_query_reuses_delegations(self, hierarchy):
        resolve(hierarchy, "www.foo.com")
        resolve(hierarchy, "mail.foo.com")
        # foo.com's ANS is queried directly the second time
        assert hierarchy.root.requests_served == 1
        assert hierarchy.com.requests_served == 1
        assert hierarchy.foo.requests_served == 2

    def test_nxdomain_propagates(self, hierarchy):
        result = resolve(hierarchy, "missing.foo.com")
        assert result.status == "nxdomain"

    def test_latency_counts_round_trips(self, hierarchy):
        result = resolve(hierarchy, "www.foo.com")
        # three query/response exchanges at 0.4 ms RTT each (two router hops)
        assert result.latency == pytest.approx(3 * 0.0008, rel=0.2)
        assert result.queries_sent == 3

    def test_timeout_when_all_servers_dead(self):
        h = Hierarchy(lrs_timeout=0.05)
        h.root_node.udp._sockets.clear()  # root goes dark
        h.lrs.cache.flush()
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=10.0)
        assert results and results[0].status == "timeout"

    def test_retry_recovers_from_packet_loss(self):
        h = Hierarchy(seed=5, lrs_timeout=0.05)
        h.lrs.retries = 12
        # make the LRS uplink lossy
        h.lrs_node.links[0].loss = 0.3
        results = []
        h.lrs.resolve("www.foo.com", RRType.A, results.append)
        h.sim.run(until=20.0)
        assert results and results[0].ok

    def test_glueless_delegation_triggers_subresolution(self, hierarchy):
        """A referral whose NS has no glue forces resolving the NS name —
        the exact behaviour the NS-name cookie scheme relies on."""
        from repro.dns import Zone
        from repro.dnswire import ns_record, soa_record

        # com delegates foo.com to an out-of-bailiwick NS name (no glue) and
        # separately delegates foo-ns.com (with glue) to the foo server,
        # which also serves the foo-ns.com zone holding the NS target's A.
        com_zone = Zone("com.")
        com_zone.add(soa_record("com."))
        com_zone.add(ns_record("foo.com.", "ns.foo-ns.com.", ttl=3600))
        com_zone.delegate("foo-ns.com.", "ns1.foo-ns.com.", FOO_IP)
        hierarchy.com.zones = [com_zone]
        foons_zone = Zone("foo-ns.com.")
        foons_zone.add(soa_record("foo-ns.com."))
        foons_zone.add_a("ns.foo-ns.com.", FOO_IP)
        hierarchy.foo.zones.append(foons_zone)
        hierarchy.foo.zones.sort(key=lambda z: len(z.origin), reverse=True)

        result = resolve(hierarchy, "www.foo.com")
        assert result.ok
        # com was asked twice: for www.foo.com (glueless referral) and for
        # the NS target's address (referral to foo-ns.com)
        assert hierarchy.com.requests_served == 2

    def test_cname_chase_across_resolution(self, hierarchy):
        from repro.dnswire import CNAME, ResourceRecord, RRClass

        foo_zone = hierarchy.foo.zones[0]
        foo_zone.add(
            ResourceRecord(
                Name.from_text("alias.foo.com"), RRType.CNAME, RRClass.IN, 300,
                CNAME(Name.from_text("www.foo.com")),
            )
        )
        result = resolve(hierarchy, "alias.foo.com")
        assert result.ok
        assert result.addresses() == [IPv4Address("198.51.100.80")]

    def test_ttl_zero_answers_not_cached(self):
        h = Hierarchy(answer_ttl=None)
        # override answer TTL to zero at the foo server
        h.foo.answer_ttl_override = 0
        resolve(h, "www.foo.com")
        first = h.foo.requests_served
        resolve(h, "www.foo.com")
        assert h.foo.requests_served == first + 1  # re-queried, not cached


class TestStubFrontDoor:
    def test_stub_query_through_lrs(self, hierarchy):
        from repro.dns import StubResolver
        from repro.netsim import Link, Node

        stub_node = Node(hierarchy.sim, "laptop")
        stub_node.add_address("10.0.0.99")
        link = Link(hierarchy.sim, stub_node, hierarchy.router, delay=0.0001)
        hierarchy.router.add_route("10.0.0.99/32", link)
        stub = StubResolver(stub_node, IPv4Address("10.0.0.53"))
        results = []
        stub.query("www.foo.com", RRType.A, results.append)
        hierarchy.sim.run(until=30.0)
        assert results and results[0].ok
        assert results[0].addresses() == [IPv4Address("198.51.100.80")]

    def test_stub_gets_nxdomain(self, hierarchy):
        from repro.dns import StubResolver
        from repro.netsim import Link, Node

        stub_node = Node(hierarchy.sim, "laptop")
        stub_node.add_address("10.0.0.99")
        link = Link(hierarchy.sim, stub_node, hierarchy.router, delay=0.0001)
        hierarchy.router.add_route("10.0.0.99/32", link)
        stub = StubResolver(stub_node, IPv4Address("10.0.0.53"))
        results = []
        stub.query("nothere.foo.com", RRType.A, results.append)
        hierarchy.sim.run(until=30.0)
        assert results and results[0].status == "nxdomain"
