"""Trace-replay workloads, link jitter and cookie-key persistence."""

from ipaddress import IPv4Address

import pytest

from repro.dns import TraceReplayClient
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.guard import CookieFactory, random_key
from repro.metrics import LatencyStats
from repro.netsim import Link, Node, Simulator


class TestTraceReplay:
    def test_replays_at_scheduled_times(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_enabled=False)
        client = bed.add_client("replayer")
        trace = [(0.01 * i, f"q{i}.foo.com") for i in range(20)]
        replay = TraceReplayClient(client, ANS_ADDRESS, trace)
        replay.start()
        bed.run(1.0)
        assert replay.stats.completed == 20
        assert replay.stats.timeouts == 0
        stats = LatencyStats(replay.latencies)
        assert stats.mean == pytest.approx(0.0004, rel=0.2)

    def test_replay_through_guard_cookie_flow(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        client = bed.add_client("replayer", via_local_guard=True)
        trace = [(0.005 * i, "app.foo.com") for i in range(50)]
        replay = TraceReplayClient(client, ANS_ADDRESS, trace, timeout=0.05)
        replay.start()
        bed.run(2.0)
        assert replay.stats.completed == 50
        assert bed.guard.cookies_granted == 1

    def test_unsorted_trace_is_sorted(self):
        bed = GuardTestbed(ans="simulator", ans_mode="answer", guard_enabled=False)
        client = bed.add_client("replayer")
        replay = TraceReplayClient(client, ANS_ADDRESS, [(0.05, "b.x"), (0.01, "a.x")])
        assert [q for _, q in replay.trace][0].labels[0] == b"a"


class TestLinkJitter:
    def test_jitter_varies_arrival_times(self):
        sim = Simulator(seed=5)
        a = Node(sim, "a")
        a.add_address("10.0.0.1")
        b = Node(sim, "b")
        b.add_address("10.0.0.2")
        Link(sim, a, b, delay=0.001, jitter=0.0005)
        arrivals = []
        b.udp.bind(53, lambda p, s, sp, d: arrivals.append(sim.now))
        sock = a.udp.bind_ephemeral(lambda *args: None)
        for i in range(50):
            sim.schedule(i * 0.01, sock.send, b"x", IPv4Address("10.0.0.2"), 53)
        sim.run(until=2.0)
        deltas = [t - i * 0.01 for i, t in enumerate(arrivals)]
        assert min(deltas) >= 0.0005 - 1e-9
        assert max(deltas) <= 0.0015 + 1e-9
        assert max(deltas) - min(deltas) > 0.0003  # actually spread out

    def test_invalid_jitter_rejected(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, delay=0.001, jitter=0.002)


class TestKeyPersistence:
    def test_export_import_round_trip(self):
        source = IPv4Address("10.0.0.53")
        factory = CookieFactory(random_key())
        cookie = factory.cookie(source)
        restored = CookieFactory.import_state(factory.export_state())
        assert restored.verify(cookie, source)
        assert restored.generation == factory.generation

    def test_previous_key_survives_restart(self):
        source = IPv4Address("10.0.0.53")
        factory = CookieFactory(random_key())
        old_cookie = factory.cookie(source)
        factory.rotate()
        restored = CookieFactory.import_state(factory.export_state())
        assert restored.verify(old_cookie, source)  # old generation honoured
        assert restored.verify(restored.cookie(source), source)

    def test_label_width_carried_by_caller(self):
        factory = CookieFactory(random_key(), label_hex_digits=16)
        restored = CookieFactory.import_state(
            factory.export_state(), label_hex_digits=16
        )
        source = IPv4Address("10.0.0.53")
        assert restored.verify_label(factory.label_cookie(source), source)

    def test_truncated_blob_rejected(self):
        with pytest.raises(ValueError):
            CookieFactory.import_state(b"\x00\x00\x00\x00")

    def test_guard_restart_scenario(self):
        """A new guard built from exported state honours cookies issued
        before the 'restart'."""
        from repro.dns import LrsSimulator

        bed = GuardTestbed(ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral")
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        bed.run(0.02)
        # "restart": replace the factory with one rebuilt from saved state
        bed.guard.cookies = CookieFactory.import_state(bed.guard.cookies.export_state())
        completed_before = lrs.stats.completed
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        assert lrs.stats.completed > completed_before + 50
        assert lrs.stats.timeouts == 0
