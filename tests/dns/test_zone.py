"""Unit tests for zone data and the master-file parser."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AnswerKind, Zone, parse_zone_text
from repro.dnswire import Name, RRType, a_record, soa_record


def foo_zone() -> Zone:
    zone = Zone("foo.com")
    zone.add(soa_record("foo.com", serial=1))
    zone.add_a("www.foo.com", "198.51.100.10")
    zone.add_a("www.foo.com", "198.51.100.11")
    zone.add_a("mail.foo.com", "198.51.100.20")
    zone.delegate("sub.foo.com", "ns1.sub.foo.com", "203.0.113.5")
    return zone


class TestLookup:
    def test_authoritative_answer(self):
        result = foo_zone().lookup(Name.from_text("www.foo.com"), RRType.A)
        assert result.kind is AnswerKind.ANSWER
        assert len(result.records) == 2

    def test_nxdomain_carries_soa(self):
        result = foo_zone().lookup(Name.from_text("nope.foo.com"), RRType.A)
        assert result.kind is AnswerKind.NXDOMAIN
        assert result.authority and result.authority[0].rtype == RRType.SOA

    def test_nodata_for_missing_type(self):
        result = foo_zone().lookup(Name.from_text("www.foo.com"), RRType.MX)
        assert result.kind is AnswerKind.NODATA

    def test_delegation_with_glue(self):
        result = foo_zone().lookup(Name.from_text("host.sub.foo.com"), RRType.A)
        assert result.kind is AnswerKind.DELEGATION
        assert result.is_referral
        assert result.authority[0].rtype == RRType.NS
        assert result.additional[0].rdata.address == IPv4Address("203.0.113.5")

    def test_delegation_applies_to_names_below_cut(self):
        result = foo_zone().lookup(Name.from_text("deep.deeper.sub.foo.com"), RRType.A)
        assert result.kind is AnswerKind.DELEGATION

    def test_name_outside_zone_is_nxdomain(self):
        result = foo_zone().lookup(Name.from_text("www.bar.org"), RRType.A)
        assert result.kind is AnswerKind.NXDOMAIN

    def test_cname_detected(self):
        zone = foo_zone()
        from repro.dnswire import CNAME, ResourceRecord, RRClass

        zone.add(
            ResourceRecord(
                Name.from_text("alias.foo.com"), RRType.CNAME, RRClass.IN, 60,
                CNAME(Name.from_text("www.foo.com")),
            )
        )
        result = zone.lookup(Name.from_text("alias.foo.com"), RRType.A)
        assert result.kind is AnswerKind.CNAME

    def test_add_outside_origin_rejected(self):
        with pytest.raises(ValueError):
            foo_zone().add(a_record("www.bar.org", "1.1.1.1"))

    def test_record_count_and_contains(self):
        zone = foo_zone()
        assert zone.record_count() >= 5
        assert Name.from_text("www.foo.com") in zone
        assert Name.from_text("ghost.foo.com") not in zone


ZONE_TEXT = """
$ORIGIN foo.com.
$TTL 300
@   IN SOA ns1 hostmaster 1 7200 1800 1209600 300
@   IN NS  ns1
ns1 IN A   192.0.2.53
www 600 IN A 192.0.2.80
www IN A 192.0.2.81
    IN A 192.0.2.82 ; continuation uses previous owner
mail IN MX 10 mx1.foo.com.
alias IN CNAME www
note IN TXT "hello world"
sub IN NS ns1.sub
ns1.sub IN A 203.0.113.99
"""


class TestZoneParser:
    def test_parses_origin_and_records(self):
        zone = parse_zone_text(ZONE_TEXT)
        assert zone.origin == Name.from_text("foo.com")
        result = zone.lookup(Name.from_text("www.foo.com"), RRType.A)
        assert result.kind is AnswerKind.ANSWER
        assert len(result.records) == 3

    def test_explicit_ttl_honoured(self):
        zone = parse_zone_text(ZONE_TEXT)
        result = zone.lookup(Name.from_text("www.foo.com"), RRType.A)
        assert 600 in {rr.ttl for rr in result.records}

    def test_default_ttl_applied(self):
        zone = parse_zone_text(ZONE_TEXT)
        result = zone.lookup(Name.from_text("ns1.foo.com"), RRType.A)
        assert result.records[0].ttl == 300

    def test_relative_names_resolved(self):
        zone = parse_zone_text(ZONE_TEXT)
        result = zone.lookup(Name.from_text("alias.foo.com"), RRType.CNAME)
        assert result.records[0].rdata.target == Name.from_text("www.foo.com")

    def test_delegation_parsed(self):
        zone = parse_zone_text(ZONE_TEXT)
        result = zone.lookup(Name.from_text("x.sub.foo.com"), RRType.A)
        assert result.kind is AnswerKind.DELEGATION

    def test_mx_parsed(self):
        zone = parse_zone_text(ZONE_TEXT)
        result = zone.lookup(Name.from_text("mail.foo.com"), RRType.MX)
        assert result.records[0].rdata.preference == 10

    def test_txt_parsed(self):
        zone = parse_zone_text(ZONE_TEXT)
        result = zone.lookup(Name.from_text("note.foo.com"), RRType.TXT)
        assert result.kind is AnswerKind.ANSWER

    def test_empty_zone_rejected(self):
        with pytest.raises(ValueError):
            parse_zone_text("; only a comment\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            parse_zone_text("$ORIGIN x.\nfoo IN WKS boom\n")

    def test_missing_origin_rejected(self):
        with pytest.raises(ValueError):
            parse_zone_text("www IN A 1.2.3.4\n")

    def test_origin_argument_used(self):
        zone = parse_zone_text("www IN A 192.0.2.1\n", origin="bar.org")
        assert zone.lookup(Name.from_text("www.bar.org"), RRType.A).kind is AnswerKind.ANSWER
