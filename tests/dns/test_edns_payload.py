"""EDNS(0) UDP payload-size negotiation at the authoritative server."""

from ipaddress import IPv4Address

import pytest

from repro.dns import AuthoritativeServer, Zone
from repro.dnswire import (
    MAX_UDP_PAYLOAD,
    Message,
    Name,
    OPT,
    ResourceRecord,
    RRClass,
    RRType,
    TXT,
    make_query,
    soa_record,
)
from repro.netsim import Link, Node, Simulator

ANS_IP = IPv4Address("203.0.113.53")


def big_answer_setup():
    sim = Simulator()
    ans_node = Node(sim, "ans")
    ans_node.add_address(ANS_IP)
    client = Node(sim, "client")
    client.add_address("10.0.0.1")
    Link(sim, ans_node, client, delay=0.0002)
    zone = Zone("foo.com.")
    zone.add(soa_record("foo.com."))
    for _ in range(6):
        zone.add(
            ResourceRecord(
                Name.from_text("big.foo.com"), RRType.TXT, RRClass.IN, 60,
                TXT.single(bytes(200)),
            )
        )
    AuthoritativeServer(ans_node, [zone])
    return sim, client


def with_opt(query: Message, payload_size: int) -> Message:
    query.additionals.append(
        ResourceRecord(Name.root(), RRType.OPT, payload_size, 0, OPT())
    )
    return query


class TestEdnsPayload:
    def ask(self, sim, client, query):
        responses = []
        sock = client.udp.bind_ephemeral(lambda p, s, sp, d: responses.append(p))
        sock.send(query, ANS_IP, 53)
        sim.run(until=sim.now + 1.0)
        return responses[0]

    def test_classic_client_gets_truncation(self):
        sim, client = big_answer_setup()
        response = self.ask(sim, client, make_query("big.foo.com", RRType.TXT, msg_id=1))
        assert response.header.tc
        assert response.wire_size() <= MAX_UDP_PAYLOAD

    def test_edns_client_gets_full_answer(self):
        sim, client = big_answer_setup()
        query = with_opt(make_query("big.foo.com", RRType.TXT, msg_id=2), 4096)
        response = self.ask(sim, client, query)
        assert not response.header.tc
        assert len(response.answers) == 6
        assert response.wire_size() > MAX_UDP_PAYLOAD

    def test_small_advertisement_still_floors_at_512(self):
        sim, client = big_answer_setup()
        query = with_opt(make_query("big.foo.com", RRType.TXT, msg_id=3), 100)
        response = self.ask(sim, client, query)
        assert response.header.tc  # 512-byte floor applies, answer is bigger

    def test_edns_advertisement_between_512_and_answer(self):
        sim, client = big_answer_setup()
        query = with_opt(make_query("big.foo.com", RRType.TXT, msg_id=4), 900)
        response = self.ask(sim, client, query)
        assert response.header.tc
        assert response.wire_size() <= 900
