"""Unit tests for the authoritative server."""

from ipaddress import IPv4Address

from repro.dns import AuthoritativeServer, Zone
from repro.dnswire import (
    MAX_UDP_PAYLOAD,
    Message,
    Name,
    Rcode,
    RRType,
    TXT,
    ResourceRecord,
    RRClass,
    make_query,
    soa_record,
)
from repro.netsim import Link, Node, Simulator


def standalone_server(**kwargs):
    sim = Simulator()
    server_node = Node(sim, "ans")
    server_node.add_address("203.0.113.53")
    client_node = Node(sim, "client")
    client_node.add_address("10.0.0.1")
    Link(sim, server_node, client_node, delay=0.0002)
    zone = Zone("foo.com")
    zone.add(soa_record("foo.com"))
    zone.add_a("www.foo.com", "198.51.100.80")
    zone.delegate("sub.foo.com", "ns1.sub.foo.com", "203.0.113.99")
    server = AuthoritativeServer(server_node, [zone], **kwargs)
    return sim, server, server_node, client_node, zone


def ask(sim, client_node, query, server_ip="203.0.113.53"):
    responses = []
    sock = client_node.udp.bind_ephemeral(
        lambda payload, src, sport, dst: responses.append(payload)
    )
    sock.send(query, IPv4Address(server_ip), 53)
    sim.run(until=sim.now + 1.0)
    sock.close()
    return responses


class TestUdpService:
    def test_authoritative_answer(self):
        sim, server, _, client, _ = standalone_server()
        responses = ask(sim, client, make_query("www.foo.com", msg_id=1))
        assert len(responses) == 1
        response = responses[0]
        assert response.header.aa and response.header.qr
        assert response.answers[0].rdata.address == IPv4Address("198.51.100.80")

    def test_referral_not_authoritative(self):
        sim, server, _, client, _ = standalone_server()
        (response,) = ask(sim, client, make_query("deep.sub.foo.com", msg_id=2))
        assert not response.header.aa
        assert response.authorities[0].rtype == RRType.NS
        assert response.additionals[0].rtype == RRType.A
        assert server.referrals_sent == 1

    def test_nxdomain(self):
        sim, server, _, client, _ = standalone_server()
        (response,) = ask(sim, client, make_query("ghost.foo.com", msg_id=3))
        assert response.header.rcode == Rcode.NXDOMAIN
        assert response.authorities[0].rtype == RRType.SOA

    def test_out_of_zone_refused(self):
        sim, server, _, client, _ = standalone_server()
        (response,) = ask(sim, client, make_query("www.bar.org", msg_id=4))
        assert response.header.rcode == Rcode.REFUSED

    def test_cname_chase_within_zone(self):
        sim, server, _, client, zone = standalone_server()
        from repro.dnswire import CNAME

        zone.add(
            ResourceRecord(
                Name.from_text("alias.foo.com"), RRType.CNAME, RRClass.IN, 60,
                CNAME(Name.from_text("www.foo.com")),
            )
        )
        (response,) = ask(sim, client, make_query("alias.foo.com", msg_id=5))
        types = [rr.rtype for rr in response.answers]
        assert RRType.CNAME in types and RRType.A in types

    def test_big_response_truncated_over_udp(self):
        sim, server, _, client, zone = standalone_server()
        for i in range(6):
            zone.add(
                ResourceRecord(
                    Name.from_text("big.foo.com"), RRType.TXT, RRClass.IN, 60,
                    TXT.single(bytes(200)),
                )
            )
        (response,) = ask(sim, client, make_query("big.foo.com", RRType.TXT, msg_id=6))
        assert response.header.tc
        assert response.wire_size() <= MAX_UDP_PAYLOAD

    def test_ttl_override(self):
        sim, server, _, client, _ = standalone_server(answer_ttl_override=0)
        (response,) = ask(sim, client, make_query("www.foo.com", msg_id=7))
        assert response.answers[0].ttl == 0

    def test_overload_drops_requests(self):
        sim, server, node, client, _ = standalone_server(udp_request_cost=0.1)
        node.cpu.queue_limit = 0.15
        sock = client.udp.bind_ephemeral(lambda *args: None)
        for i in range(10):
            sock.send(make_query("www.foo.com", msg_id=100 + i), IPv4Address("203.0.113.53"), 53)
        sim.run(until=5.0)
        assert server.requests_dropped > 0

    def test_malformed_query_ignored(self):
        sim, server, _, client, _ = standalone_server()
        responses = ask(sim, client, make_query("www.foo.com", msg_id=8))
        # raw bytes payload (not a parsed Message) must be ignored, not crash
        sock = client.udp.bind_ephemeral(lambda *a: None)
        sock.send(b"\x00garbage", IPv4Address("203.0.113.53"), 53)
        sim.run(until=sim.now + 0.5)
        assert server.requests_served == 1  # only the valid one

    def test_response_source_is_queried_address(self):
        sim, server, node, client, _ = standalone_server()
        node.add_address("203.0.113.54")
        sources = []
        sock = client.udp.bind_ephemeral(lambda p, src, sp, d: sources.append(src))
        sock.send(make_query("www.foo.com", msg_id=9), IPv4Address("203.0.113.54"), 53)
        sim.run(until=sim.now + 1.0)
        assert sources == [IPv4Address("203.0.113.54")]


class TestTcpService:
    def test_query_over_tcp(self):
        from repro.dns import StreamFramer, frame

        sim, server, _, client, _ = standalone_server()
        query = make_query("www.foo.com", msg_id=21)
        framer = StreamFramer()
        answers = []

        def on_data(conn, data):
            for message in framer.feed(data):
                answers.append(message)
                conn.close()

        client.tcp.connect(
            IPv4Address("203.0.113.53"), 53,
            on_established=lambda conn: conn.send(frame(query)),
            on_data=on_data,
        )
        sim.run(until=2.0)
        assert len(answers) == 1
        assert answers[0].header.msg_id == 21
        assert not answers[0].header.tc  # TCP responses are never truncated

    def test_tcp_can_carry_big_response(self):
        from repro.dns import StreamFramer, frame

        sim, server, _, client, zone = standalone_server()
        for _ in range(6):
            zone.add(
                ResourceRecord(
                    Name.from_text("big.foo.com"), RRType.TXT, RRClass.IN, 60,
                    TXT.single(bytes(200)),
                )
            )
        framer = StreamFramer()
        answers = []

        def on_data(conn, data):
            for message in framer.feed(data):
                answers.append(message)
                conn.close()

        client.tcp.connect(
            IPv4Address("203.0.113.53"), 53,
            on_established=lambda conn: conn.send(frame(make_query("big.foo.com", RRType.TXT))),
            on_data=on_data,
        )
        sim.run(until=2.0)
        assert len(answers) == 1
        assert answers[0].wire_size() > MAX_UDP_PAYLOAD
        assert len(answers[0].answers) == 6

    def test_tcp_disabled(self):
        sim = Simulator()
        node = Node(sim, "ans")
        node.add_address("203.0.113.53")
        zone = Zone("foo.com")
        zone.add_a("www.foo.com", "1.2.3.4")
        AuthoritativeServer(node, [zone], serve_tcp=False)
        assert node.tcp._listeners == {}
