"""Stub-resolver retry/backoff behaviour against a silent or flaky server."""

from ipaddress import IPv4Address

import pytest

from repro.dns import StubResolver
from repro.dnswire import RRType, make_response
from repro.netsim import Link, Node, Simulator

LRS_ADDR = IPv4Address("10.0.0.53")


def topology(seed=0):
    sim = Simulator(seed=seed)
    stub_node = Node(sim, "stub")
    stub_node.add_address("10.0.0.1")
    lrs_node = Node(sim, "lrs")
    lrs_node.add_address(LRS_ADDR)
    link = Link(sim, stub_node, lrs_node, delay=0.001)
    return sim, stub_node, lrs_node, link


def echo_lrs(lrs_node):
    """A one-answer LRS: responds to every query it actually receives."""
    queries = []

    def on_query(payload, src, sport, dst):
        queries.append(payload)
        response = make_response(payload)
        lrs_node.udp.bind_ephemeral(lambda *a: None)
        sock.send(response, src, sport)

    sock = lrs_node.udp.bind(53, on_query)
    return queries


class TestRetry:
    def test_lost_first_attempt_recovered_by_retry(self):
        sim, stub_node, lrs_node, link = topology()
        queries = echo_lrs(lrs_node)
        # blackout swallows the first attempt; service restored before retry
        link.up = False
        sim.schedule_at(0.05, lambda: setattr(link, "up", True))
        stub = StubResolver(stub_node, LRS_ADDR, timeout=0.1, retries=2)
        results = []
        stub.query("www.foo.com", RRType.A, results.append)
        sim.run(until=5.0)
        assert len(results) == 1
        assert results[0].ok
        assert results[0].retries == 1
        assert stub.retries_sent == 1
        assert stub.queries_sent == 2
        assert len(queries) == 1

    def test_all_attempts_exhausted_is_timeout(self):
        sim, stub_node, lrs_node, link = topology()
        link.up = False  # the LRS is unreachable for good
        stub = StubResolver(stub_node, LRS_ADDR, timeout=0.1, retries=2, backoff=2.0)
        results = []
        stub.query("www.foo.com", RRType.A, results.append)
        sim.run(until=60.0)
        assert len(results) == 1
        assert results[0].status == "timeout"
        assert results[0].retries == 2
        # geometric backoff: 0.1 + 0.2 + 0.4 seconds of waiting
        assert results[0].latency == pytest.approx(0.7)

    def test_zero_retries_is_one_shot(self):
        sim, stub_node, lrs_node, link = topology()
        link.up = False
        stub = StubResolver(stub_node, LRS_ADDR, timeout=0.1, retries=0)
        results = []
        stub.query("www.foo.com", RRType.A, results.append)
        sim.run(until=5.0)
        assert results[0].status == "timeout"
        assert stub.queries_sent == 1

    def test_duplicate_responses_reported_once(self):
        """A retry racing the original response must not double-fire."""
        sim, stub_node, lrs_node, link = topology()

        def slow_lrs(payload, src, sport, dst):
            # answer every copy, slower than the retry timer
            sim.schedule(0.15, sock.send, make_response(payload), src, sport)

        sock = lrs_node.udp.bind(53, slow_lrs)
        stub = StubResolver(stub_node, LRS_ADDR, timeout=0.1, retries=2)
        results = []
        stub.query("www.foo.com", RRType.A, results.append)
        sim.run(until=5.0)
        assert len(results) == 1

    def test_validation(self):
        sim, stub_node, lrs_node, link = topology()
        with pytest.raises(ValueError):
            StubResolver(stub_node, LRS_ADDR, retries=-1)
        with pytest.raises(ValueError):
            StubResolver(stub_node, LRS_ADDR, timeout=0.0)
        with pytest.raises(ValueError):
            StubResolver(stub_node, LRS_ADDR, backoff=0.5)


class TestMessageIds:
    def test_ids_span_the_full_16_bit_space(self):
        """Regression: randrange(0, 0xFFFF) could never produce 0xFFFF."""
        sim, stub_node, lrs_node, link = topology()
        stub = StubResolver(stub_node, LRS_ADDR)
        stub._next_id = 0xFFFE
        stub.query("a.foo.com")
        stub.query("b.foo.com")
        stub.query("c.foo.com")
        assert stub._next_id == 0x0001  # wrapped through 0xFFFF and 0x0000

    def test_initial_id_is_seed_deterministic(self):
        first = StubResolver(topology(seed=3)[1], LRS_ADDR)._next_id
        second = StubResolver(topology(seed=3)[1], LRS_ADDR)._next_id
        assert first == second
