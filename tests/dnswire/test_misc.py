"""Odds and ends: builders, enums, OPT options, presentation forms."""

from ipaddress import IPv4Address, IPv6Address

import pytest

from repro.dnswire import (
    AAAA,
    Header,
    Message,
    Name,
    OPT,
    Opcode,
    Rcode,
    ResourceRecord,
    RRClass,
    RRType,
    make_query,
    make_response,
    ns_record,
    soa_record,
)


class TestBuilders:
    def test_make_response_echoes_identity(self):
        query = make_query("a.com", RRType.MX, msg_id=99, recursion_desired=True)
        response = make_response(query, authoritative=True, recursion_available=True)
        assert response.header.msg_id == 99
        assert response.header.qr and response.header.aa and response.header.ra
        assert response.header.rd  # echoed from the query
        assert response.question == query.question

    def test_make_response_rcode(self):
        response = make_response(make_query("a.com"), rcode=Rcode.REFUSED)
        assert response.header.rcode == Rcode.REFUSED

    def test_ns_record_accepts_strings_and_names(self):
        rr1 = ns_record("foo.com", "ns1.foo.com")
        rr2 = ns_record(Name.from_text("foo.com"), Name.from_text("ns1.foo.com"))
        assert rr1.name == rr2.name
        assert rr1.rdata == rr2.rdata

    def test_soa_record_defaults(self):
        rr = soa_record("zone.example")
        assert rr.rtype == RRType.SOA
        assert rr.rdata.minimum == 300


class TestEnums:
    def test_rrtype_name_of_known(self):
        assert RRType.name_of(1) == "A"
        assert RRType.name_of(33) == "SRV"

    def test_rrtype_name_of_unknown(self):
        assert RRType.name_of(4242) == "TYPE4242"

    def test_opcode_and_rcode_values(self):
        assert Opcode.QUERY == 0
        assert Rcode.NXDOMAIN == 3
        assert RRClass.IN == 1


class TestAaaa:
    def test_round_trip(self):
        rr = ResourceRecord(
            Name.from_text("v6.example"), RRType.AAAA, RRClass.IN, 60,
            AAAA(IPv6Address("2001:db8::1")),
        )
        msg = Message()
        msg.answers.append(rr)
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata.address == IPv6Address("2001:db8::1")

    def test_coerces_strings(self):
        assert AAAA("2001:db8::2").address == IPv6Address("2001:db8::2")


class TestOpt:
    def test_option_lookup(self):
        opt = OPT(options=((10, b"cookie"), (12, b"padding")))
        assert opt.option(10) == b"cookie"
        assert opt.option(12) == b"padding"
        assert opt.option(99) is None

    def test_wire_round_trip(self):
        rr = ResourceRecord(Name.root(), RRType.OPT, 4096, 0,
                            OPT(options=((10, b"\x01" * 8),)))
        msg = Message()
        msg.additionals.append(rr)
        decoded = Message.decode(msg.encode())
        assert decoded.additionals[0].rdata.option(10) == b"\x01" * 8


class TestPresentation:
    def test_message_str_lists_sections(self):
        query = make_query("www.foo.com", msg_id=5)
        response = make_response(query)
        from repro.dnswire import a_record

        response.answers.append(a_record("www.foo.com", "1.2.3.4"))
        text = str(response)
        assert "www.foo.com." in text
        assert "an " in text and "? " in text

    def test_header_flags_survive_flags_word(self):
        header = Header(qr=True, aa=True, rcode=Rcode.SERVFAIL)
        decoded, _ = Header.decode(header.encode())
        assert decoded.flags_word() == header.flags_word()


class TestNameMisc:
    def test_wire_length_matches_to_wire(self):
        for text in (".", "a.b", "www.foo.com", "x" * 63):
            name = Name.from_text(text)
            assert name.wire_length() == len(name.to_wire())

    def test_iteration_and_len(self):
        name = Name.from_text("a.b.c")
        assert list(name) == [b"a", b"b", b"c"]
        assert len(name) == 3

    def test_repr(self):
        assert "www.foo.com." in repr(Name.from_text("www.foo.com"))
