"""Unit tests for the message codec: headers, records, truncation."""

from ipaddress import IPv4Address

import pytest

from repro.dnswire import (
    A,
    CNAME,
    DecodeError,
    Header,
    MAX_UDP_PAYLOAD,
    Message,
    MX,
    NS,
    Name,
    Opaque,
    Question,
    Rcode,
    ResourceRecord,
    RRClass,
    RRType,
    SOA,
    TXT,
    a_record,
    make_query,
    make_response,
    make_truncated_response,
    ns_record,
    soa_record,
)


class TestHeader:
    def test_flag_round_trip(self):
        header = Header(msg_id=0x1234, qr=True, aa=True, tc=True, rd=True, ra=True,
                        rcode=Rcode.NXDOMAIN)
        decoded, end = Header.decode(header.encode())
        assert end == 12
        assert decoded == header

    def test_short_buffer_rejected(self):
        with pytest.raises(DecodeError):
            Header.decode(b"\x00" * 11)

    def test_flags_word_bits(self):
        assert Header(qr=True).flags_word() == 0x8000
        assert Header(tc=True).flags_word() == 0x0200
        assert Header(rd=True).flags_word() == 0x0100


class TestMessageRoundTrip:
    def test_query_round_trip(self):
        query = make_query("www.foo.com", RRType.A, msg_id=7, recursion_desired=True)
        decoded = Message.decode(query.encode())
        assert decoded.header.msg_id == 7
        assert decoded.header.rd
        assert not decoded.header.qr
        assert decoded.question.qname == Name.from_text("www.foo.com")
        assert decoded.question.qtype == RRType.A

    def test_response_with_all_sections(self):
        query = make_query("www.foo.com", msg_id=9)
        response = make_response(query, authoritative=True)
        response.answers.append(a_record("www.foo.com", "10.0.0.1", ttl=60))
        response.authorities.append(ns_record("foo.com", "ns1.foo.com"))
        response.additionals.append(a_record("ns1.foo.com", "10.0.0.53"))
        decoded = Message.decode(response.encode())
        assert decoded.header.aa and decoded.header.qr
        assert decoded.answers[0].rdata == A(IPv4Address("10.0.0.1"))
        assert decoded.answers[0].ttl == 60
        assert decoded.authorities[0].rdata == NS(Name.from_text("ns1.foo.com"))
        assert decoded.additionals[0].rdata == A(IPv4Address("10.0.0.53"))

    def test_compression_reduces_size(self):
        query = make_query("www.foo.com")
        response = make_response(query)
        for i in range(5):
            response.answers.append(a_record("www.foo.com", f"10.0.0.{i + 1}"))
        assert len(response.encode(compress=True)) < len(response.encode(compress=False))
        # both forms decode identically
        assert (
            Message.decode(response.encode(compress=True)).answers
            == Message.decode(response.encode(compress=False)).answers
        )

    def test_soa_round_trip(self):
        rr = soa_record("foo.com", serial=42)
        query = make_query("foo.com", RRType.SOA)
        response = make_response(query)
        response.authorities.append(rr)
        decoded = Message.decode(response.encode())
        soa = decoded.authorities[0].rdata
        assert isinstance(soa, SOA)
        assert soa.serial == 42
        assert soa.mname == Name.from_text("ns1.invalid.")

    def test_txt_round_trip(self):
        rr = ResourceRecord(Name.root(), RRType.TXT, RRClass.IN, 0, TXT.single(b"\x01" * 16))
        query = make_query(".", RRType.TXT)
        response = make_response(query)
        response.additionals.append(rr)
        decoded = Message.decode(response.encode())
        assert decoded.additionals[0].rdata.payload == b"\x01" * 16

    def test_txt_multiple_strings(self):
        txt = TXT((b"hello", b"world"))
        rr = ResourceRecord(Name.from_text("t.com"), RRType.TXT, RRClass.IN, 5, txt)
        msg = Message()
        msg.answers.append(rr)
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata.strings == (b"hello", b"world")

    def test_mx_round_trip(self):
        rr = ResourceRecord(
            Name.from_text("foo.com"), RRType.MX, RRClass.IN, 300,
            MX(10, Name.from_text("mail.foo.com")),
        )
        msg = Message()
        msg.answers.append(rr)
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata == MX(10, Name.from_text("mail.foo.com"))

    def test_cname_round_trip(self):
        rr = ResourceRecord(
            Name.from_text("alias.foo.com"), RRType.CNAME, RRClass.IN, 60,
            CNAME(Name.from_text("real.foo.com")),
        )
        msg = Message()
        msg.answers.append(rr)
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata == CNAME(Name.from_text("real.foo.com"))

    def test_unknown_type_preserved_as_opaque(self):
        rr = ResourceRecord(Name.from_text("x.com"), 999, RRClass.IN, 1, Opaque(b"\xde\xad"))
        msg = Message()
        msg.answers.append(rr)
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata == Opaque(b"\xde\xad")
        assert decoded.answers[0].rtype == 999


class TestTruncation:
    def _big_response(self) -> Message:
        query = make_query("big.example.com", RRType.TXT)
        response = make_response(query)
        for _ in range(10):
            response.answers.append(
                ResourceRecord(
                    Name.from_text("big.example.com"), RRType.TXT, RRClass.IN, 60,
                    TXT.single(b"x" * 200),
                )
            )
        return response

    def test_oversize_response_truncated(self):
        wire = self._big_response().encode(max_size=MAX_UDP_PAYLOAD)
        assert len(wire) <= MAX_UDP_PAYLOAD
        decoded = Message.decode(wire)
        assert decoded.header.tc
        assert decoded.answers == []
        assert decoded.question.qname == Name.from_text("big.example.com")

    def test_fitting_response_not_truncated(self):
        query = make_query("small.com")
        response = make_response(query)
        response.answers.append(a_record("small.com", "1.2.3.4"))
        decoded = Message.decode(response.encode(max_size=MAX_UDP_PAYLOAD))
        assert not decoded.header.tc
        assert len(decoded.answers) == 1

    def test_make_truncated_response_helper(self):
        query = make_query("www.foo.com", msg_id=77)
        tc = make_truncated_response(query)
        assert tc.header.tc and tc.header.qr
        assert tc.header.msg_id == 77
        assert tc.wire_size() <= query.wire_size() + 4  # no amplification to speak of


class TestMalformedInput:
    def test_rdata_overrun_rejected(self):
        msg = make_query("x.com")
        msg.answers.append(a_record("x.com", "1.2.3.4"))
        msg.header.qr = True
        wire = bytearray(msg.encode())
        wire = wire[:-2]  # chop the tail of the A rdata
        with pytest.raises(DecodeError):
            Message.decode(bytes(wire))

    def test_count_mismatch_rejected(self):
        query = make_query("x.com")
        wire = bytearray(query.encode())
        wire[5] = 2  # claim qdcount=2 while only one question present
        with pytest.raises(DecodeError):
            Message.decode(bytes(wire))

    def test_empty_message_rejected(self):
        with pytest.raises(DecodeError):
            Message.decode(b"")

    def test_question_accessor_requires_question(self):
        with pytest.raises(DecodeError):
            Message().question

    def test_bad_a_rdlength_rejected(self):
        query = make_query("x.com")
        response = make_response(query)
        response.answers.append(
            ResourceRecord(Name.from_text("x.com"), RRType.A, RRClass.IN, 1, Opaque(b"\x01\x02"))
        )
        with pytest.raises(DecodeError):
            Message.decode(response.encode())


class TestAccessors:
    def test_records_by_section_and_type(self):
        msg = Message()
        msg.answers.append(a_record("a.com", "1.1.1.1"))
        msg.answers.append(ns_record("a.com", "ns.a.com"))
        assert len(msg.records("answer")) == 2
        assert len(msg.records("answer", RRType.A)) == 1
        assert len(msg.records("authority")) == 0

    def test_is_query_response(self):
        query = make_query("a.com")
        assert query.is_query() and not query.is_response()
        response = make_response(query)
        assert response.is_response() and not response.is_query()

    def test_str_contains_question(self):
        assert "www.foo.com." in str(make_query("www.foo.com"))
