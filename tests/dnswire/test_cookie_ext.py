"""Unit tests for the modified-DNS cookie extension (Fig 3b)."""

import pytest

from repro.dnswire import (
    COOKIE_LENGTH,
    Message,
    Name,
    RRType,
    TXT,
    ZERO_COOKIE,
    attach_cookie,
    cookie_rr,
    extract_cookie,
    is_cookie_request,
    make_query,
    strip_cookie,
)
from repro.dnswire.message import ResourceRecord
from repro.dnswire.types import RRClass


COOKIE = bytes(range(16))


class TestCookieExtension:
    def test_attach_and_extract(self):
        query = make_query("www.foo.com")
        attach_cookie(query, COOKIE)
        assert extract_cookie(query) == COOKIE

    def test_survives_wire_round_trip(self):
        query = attach_cookie(make_query("www.foo.com", msg_id=3), COOKIE)
        decoded = Message.decode(query.encode())
        assert extract_cookie(decoded) == COOKIE

    def test_attach_replaces_existing(self):
        query = attach_cookie(make_query("a.com"), COOKIE)
        attach_cookie(query, b"\xff" * 16)
        assert extract_cookie(query) == b"\xff" * 16
        assert len(query.additionals) == 1

    def test_strip_removes_cookie(self):
        query = attach_cookie(make_query("a.com"), COOKIE)
        strip_cookie(query)
        assert extract_cookie(query) is None
        assert query.additionals == []

    def test_strip_preserves_other_additionals(self):
        query = make_query("a.com")
        other = ResourceRecord(
            Name.from_text("note.a.com"), RRType.TXT, RRClass.IN, 60, TXT.single(b"hello")
        )
        query.additionals.append(other)
        attach_cookie(query, COOKIE)
        strip_cookie(query)
        assert query.additionals == [other]

    def test_plain_query_is_not_cookie_capable(self):
        assert extract_cookie(make_query("a.com")) is None

    def test_zero_cookie_is_request(self):
        query = attach_cookie(make_query("a.com"), ZERO_COOKIE)
        assert is_cookie_request(query)

    def test_real_cookie_is_not_request(self):
        query = attach_cookie(make_query("a.com"), COOKIE)
        assert not is_cookie_request(query)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            cookie_rr(b"short")

    def test_cookie_rr_shape_matches_figure_3b(self):
        rr = cookie_rr(COOKIE)
        assert rr.name.is_root()
        assert rr.rtype == RRType.TXT
        assert rr.ttl == 0
        assert rr.rdata.payload == COOKIE

    def test_request_and_grant_same_size(self):
        """Message 2 and message 3 of Fig 3a must match in size (no amplification)."""
        request = attach_cookie(make_query("www.foo.com", msg_id=1), ZERO_COOKIE)
        grant = attach_cookie(make_query("www.foo.com", msg_id=1), COOKIE)
        grant.header.qr = True
        assert abs(request.wire_size() - grant.wire_size()) == 0

    def test_unrelated_long_txt_not_mistaken_for_cookie(self):
        query = make_query("a.com")
        query.additionals.append(
            ResourceRecord(Name.root(), RRType.TXT, RRClass.IN, 0, TXT.single(b"x" * 20))
        )
        assert extract_cookie(query) is None

    def test_cookie_length_constant(self):
        assert COOKIE_LENGTH == 16
        assert len(ZERO_COOKIE) == 16
