"""Unit tests for domain-name parsing, structure and wire codec."""

import pytest

from repro.dnswire import Name, NameError_, DecodeError


class TestConstruction:
    def test_from_text_simple(self):
        name = Name.from_text("www.foo.com")
        assert name.labels == (b"www", b"foo", b"com")

    def test_from_text_trailing_dot(self):
        assert Name.from_text("www.foo.com.") == Name.from_text("www.foo.com")

    def test_root_from_dot(self):
        assert Name.from_text(".").is_root()
        assert Name.from_text("").is_root()

    def test_str_round_trip(self):
        assert str(Name.from_text("a.b.c")) == "a.b.c."
        assert str(Name.root()) == "."

    def test_rejects_empty_label(self):
        with pytest.raises(NameError_):
            Name([b"a", b"", b"c"])

    def test_rejects_label_over_63_bytes(self):
        with pytest.raises(NameError_):
            Name([b"x" * 64])

    def test_accepts_label_at_63_bytes(self):
        assert len(Name([b"x" * 63]).labels[0]) == 63

    def test_rejects_name_over_255_wire_bytes(self):
        labels = [b"x" * 63] * 4  # 4*64 + 1 = 257 > 255
        with pytest.raises(NameError_):
            Name(labels)

    def test_case_insensitive_equality(self):
        assert Name.from_text("WWW.Foo.COM") == Name.from_text("www.foo.com")
        assert hash(Name.from_text("FOO.com")) == hash(Name.from_text("foo.COM"))

    def test_case_preserved_in_presentation(self):
        assert str(Name.from_text("WwW.foo.com")) == "WwW.foo.com."


class TestStructure:
    def test_parent(self):
        assert Name.from_text("www.foo.com").parent() == Name.from_text("foo.com")

    def test_parent_of_root_is_root(self):
        assert Name.root().parent().is_root()

    def test_child(self):
        assert Name.from_text("foo.com").child(b"www") == Name.from_text("www.foo.com")

    def test_subdomain_reflexive(self):
        n = Name.from_text("foo.com")
        assert n.is_subdomain_of(n)

    def test_subdomain_of_parent(self):
        assert Name.from_text("www.foo.com").is_subdomain_of(Name.from_text("com"))
        assert Name.from_text("www.foo.com").is_subdomain_of(Name.root())

    def test_not_subdomain_of_sibling(self):
        assert not Name.from_text("www.bar.com").is_subdomain_of(Name.from_text("foo.com"))

    def test_not_subdomain_partial_label(self):
        # "oofoo.com" must not match suffix "foo.com" at the byte level
        assert not Name.from_text("oofoo.com").is_subdomain_of(Name.from_text("foo.com"))

    def test_relativize(self):
        rel = Name.from_text("www.foo.com").relativize(Name.from_text("com"))
        assert rel == (b"www", b"foo")

    def test_relativize_rejects_non_subdomain(self):
        with pytest.raises(NameError_):
            Name.from_text("www.bar.org").relativize(Name.from_text("com"))

    def test_wire_length(self):
        # 3www3foo3com0 = 13 bytes
        assert Name.from_text("www.foo.com").wire_length() == 13
        assert Name.root().wire_length() == 1


class TestWireCodec:
    def test_uncompressed_round_trip(self):
        name = Name.from_text("ns1.example.org")
        wire = name.to_wire()
        decoded, end = Name.decode(wire, 0)
        assert decoded == name
        assert end == len(wire)

    def test_root_wire_form(self):
        assert Name.root().to_wire() == b"\x00"

    def test_compression_shares_suffix(self):
        buf = bytearray()
        offsets: dict[Name, int] = {}
        Name.from_text("www.foo.com").encode(buf, offsets)
        before = len(buf)
        Name.from_text("mail.foo.com").encode(buf, offsets)
        # second name should be 4mail + 2-byte pointer = 7 bytes
        assert len(buf) - before == 7

    def test_compressed_decode(self):
        buf = bytearray()
        offsets: dict[Name, int] = {}
        first = Name.from_text("www.foo.com")
        second = Name.from_text("mail.foo.com")
        first.encode(buf, offsets)
        start_second = len(buf)
        second.encode(buf, offsets)
        got1, end1 = Name.decode(bytes(buf), 0)
        got2, end2 = Name.decode(bytes(buf), start_second)
        assert got1 == first
        assert got2 == second
        assert end2 == len(buf)

    def test_pointer_loop_rejected(self):
        # pointer at offset 0 pointing to itself
        with pytest.raises(DecodeError):
            Name.decode(b"\xc0\x00", 0)

    def test_forward_pointer_rejected(self):
        # pointer to a later offset must be refused
        data = b"\xc0\x04\x00\x00\x03www\x00"
        with pytest.raises(DecodeError):
            Name.decode(data, 0)

    def test_truncated_label_rejected(self):
        with pytest.raises(DecodeError):
            Name.decode(b"\x05ab", 0)

    def test_truncated_pointer_rejected(self):
        with pytest.raises(DecodeError):
            Name.decode(b"\xc0", 0)

    def test_reserved_label_type_rejected(self):
        with pytest.raises(DecodeError):
            Name.decode(b"\x80abc", 0)

    def test_missing_terminator_rejected(self):
        with pytest.raises(DecodeError):
            Name.decode(b"\x03www", 0)

    def test_canonical_ordering_groups_siblings(self):
        names = sorted(
            [
                Name.from_text("b.com"),
                Name.from_text("a.b.com"),
                Name.from_text("a.com"),
            ]
        )
        assert names == [
            Name.from_text("a.com"),
            Name.from_text("b.com"),
            Name.from_text("a.b.com"),
        ]
