"""Multi-core CPU model: throughput scales, single jobs do not."""

import pytest

from repro.netsim import Cpu, Simulator


class TestMultiCore:
    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            Cpu(Simulator(), cores=0)

    def test_two_cores_double_throughput(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=10.0)
        done = []
        for _ in range(10):
            cpu.submit(0.1, lambda: done.append(sim.now))
        sim.run()
        # 10 jobs x 0.1s on 2 cores = 0.5 s wall clock
        assert sim.now == pytest.approx(0.5)
        assert len(done) == 10

    def test_single_job_still_takes_full_service_time(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        done = []
        cpu.submit(0.2, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.2)]

    def test_utilization_normalised_by_cores(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=10.0)
        busy0, t0 = cpu.completed_busy_seconds(), sim.now
        for _ in range(10):
            cpu.submit(0.1, None)  # 1 CPU-second over 2 cores
        sim.run(until=1.0)
        assert cpu.utilization(busy0, t0) == pytest.approx(0.5)

    def test_queue_limit_is_per_core(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=0.05)
        accepted = sum(cpu.submit(0.04, None) for _ in range(10))
        # each core takes ~2-3 jobs before its backlog exceeds 50 ms
        assert 4 <= accepted <= 6

    def test_completed_busy_seconds_excludes_pending_on_all_cores(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=100.0)
        cpu.submit(5.0, None)
        cpu.submit(5.0, None)
        sim.run(until=1.0)
        assert cpu.completed_busy_seconds() == pytest.approx(2.0)  # 1 s on each core


class TestGuardOnMoreCores:
    def test_dual_core_guard_moves_the_knee(self):
        """The Figure 6 knee scales with guard CPU capacity."""
        from repro.attack import SpoofingAttacker
        from repro.dns import LrsSimulator
        from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed

        def legit_at(attack_rate: float, cores: int) -> float:
            bed = GuardTestbed(ans="simulator", ans_mode="answer")
            bed.guard_node.cpu.cores = cores
            bed.guard_node.cpu._core_busy_until = [0.0] * cores
            client = bed.add_client("legit", via_local_guard=True)
            lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=128)
            attacker = SpoofingAttacker(
                bed.add_client("attacker"), ANS_ADDRESS,
                rate=attack_rate, carry_invalid_cookie=True,
            )
            lrs.start()
            attacker.start()
            bed.run(0.15)
            (rate,) = bed.measure([lrs.stats], 0.2)
            lrs.stop()
            attacker.stop()
            return rate

        single = legit_at(300_000, cores=1)
        dual = legit_at(300_000, cores=2)
        # a single-core guard is past its knee at 300K; a dual-core one
        # still holds the full ANS capacity
        assert single < 80_000
        assert dual == pytest.approx(110_000, rel=0.1)
