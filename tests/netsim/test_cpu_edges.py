"""Edge-case tests for the CPU model: queue boundary, drop-path burn,
multi-core utilisation windows and mid-service busy accounting."""

import pytest

from repro.netsim import Cpu, Simulator


class TestQueueBoundary:
    def test_backlog_exactly_at_limit_still_accepts(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01)
        assert cpu.submit(0.01, lambda: None)
        assert cpu.backlog == pytest.approx(0.01)
        # the drop condition is strictly *over* the limit
        assert cpu.submit(0.005, lambda: None)
        assert not cpu.submit(0.005, lambda: None)
        assert cpu.jobs_accepted == 2
        assert cpu.jobs_dropped == 1

    def test_dropped_callback_work_burns_nothing(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01)
        assert cpu.submit(0.02, lambda: None)
        backlog = cpu.backlog
        assert not cpu.submit(0.01, lambda: None)
        # a refused *service* job vanishes: no burn, no horizon extension
        assert cpu.work_dropped_seconds == 0.0
        assert cpu.backlog == pytest.approx(backlog)


class TestDropPathBurn:
    def test_pure_accounting_burns_at_the_limit(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01)
        assert cpu.submit(0.02, lambda: None)
        assert not cpu.charge(0.005)
        assert cpu.jobs_dropped == 1
        assert cpu.work_dropped_seconds == pytest.approx(0.005)
        # the burn extends the busy horizon: discarding still costs cycles
        assert cpu.backlog == pytest.approx(0.025)

    def test_burned_cost_is_scaled_by_speed(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01, speed=2.0)
        assert cpu.submit(0.04, lambda: None)  # 0.02 after speed scaling
        assert not cpu.charge(0.01)
        assert cpu.work_dropped_seconds == pytest.approx(0.005)

    def test_burned_work_counts_toward_busy_time(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01)
        cpu.submit(0.02, lambda: None)
        cpu.charge(0.01)  # burned
        sim.run(until=1.0)
        assert cpu.completed_busy_seconds() == pytest.approx(0.03)

    def test_reset_counters_clears_drop_accounting(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01)
        cpu.submit(0.02, lambda: None)
        cpu.charge(0.01)
        cpu.reset_counters()
        assert cpu.jobs_accepted == 0
        assert cpu.jobs_dropped == 0
        assert cpu.work_dropped_seconds == 0.0
        # executed-busy integration is measurement state, not a counter
        sim.run(until=1.0)
        assert cpu.completed_busy_seconds() == pytest.approx(0.03)


class TestMultiCoreUtilization:
    def test_both_cores_busy_reads_full_utilization(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=10.0)
        cpu.charge(0.5)
        cpu.charge(0.5)  # lands on the second (idle) core
        sim.run(until=0.5)
        assert cpu.utilization(0.0, 0.0) == pytest.approx(1.0)

    def test_one_busy_core_reads_half_utilization(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=10.0)
        cpu.charge(0.5)
        sim.run(until=0.5)
        assert cpu.utilization(0.0, 0.0) == pytest.approx(0.5)

    def test_idle_window_after_drain_reads_zero(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=10.0)
        cpu.charge(0.5)
        sim.run(until=0.5)
        busy = cpu.completed_busy_seconds()
        sim.run(until=1.0)
        assert cpu.utilization(busy, 0.5) == pytest.approx(0.0)

    def test_result_is_clamped_to_unit_interval(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2, queue_limit=10.0)
        cpu.charge(0.5)
        sim.run(until=0.5)
        # a bogus (negative) prior reading cannot push the ratio past 1
        assert cpu.utilization(-5.0, 0.4) == pytest.approx(1.0)
        # ...nor can a later one drive it below 0
        assert cpu.utilization(5.0, 0.4) == pytest.approx(0.0)

    def test_empty_window_reads_zero(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        assert cpu.utilization(0.0, sim.now) == 0.0


class TestMidServiceAccounting:
    def test_completed_busy_seconds_mid_service(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.submit(1.0, lambda: None)
        sim.run(until=0.4)
        # 0.4 s of the 1.0 s job has executed; the rest is still pending
        assert cpu.completed_busy_seconds() == pytest.approx(0.4)
        sim.run(until=2.0)
        assert cpu.completed_busy_seconds() == pytest.approx(1.0)

    def test_mid_service_utilization_window(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.submit(1.0, lambda: None)
        sim.run(until=0.25)
        busy = cpu.completed_busy_seconds()
        sim.run(until=0.75)
        assert cpu.utilization(busy, 0.25) == pytest.approx(1.0)
