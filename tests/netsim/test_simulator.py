"""Unit tests for the discrete-event core."""

import pytest

from repro.netsim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 2.0

    def test_same_time_fifo_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(0.5, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 1.5)]


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_run_until_not_overshot_by_cancelled_tombstones(self):
        """Cancelled events at the queue head must not let run(until=...)
        execute a live event beyond the deadline (regression test)."""
        sim = Simulator()
        fired = []
        early = sim.schedule(0.5, fired.append, "cancelled")
        early.cancel()
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=1.0)
        assert fired == []
        assert sim.now == 1.0
        sim.run()
        assert fired == ["late"]


class TestNonFiniteTimes:
    def test_schedule_at_nan_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-finite"):
            sim.schedule_at(float("nan"), lambda: None)

    def test_schedule_at_inf_rejected(self):
        sim = Simulator()
        for bad in (float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                sim.schedule_at(bad, lambda: None)

    def test_schedule_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_inf_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-finite"):
            sim.schedule(float("inf"), lambda: None)


class TestDeterminism:
    def test_same_seed_same_randoms(self):
        a, b = Simulator(seed=42), Simulator(seed=42)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_different_seed_different_randoms(self):
        a, b = Simulator(seed=1), Simulator(seed=2)
        assert [a.rng.random() for _ in range(5)] != [b.rng.random() for _ in range(5)]


class TestEventTrace:
    @staticmethod
    def _run(seed, delays):
        sim = Simulator(seed=seed, trace_hash=True)
        for delay in delays:
            sim.schedule(delay, lambda: None)
        sim.run()
        return sim

    def test_trace_disabled_by_default(self):
        assert Simulator().trace is None

    def test_identical_runs_identical_digests(self):
        a = self._run(0, [0.1, 0.2, 0.3])
        b = self._run(0, [0.1, 0.2, 0.3])
        assert a.trace.hexdigest() == b.trace.hexdigest()
        assert a.trace.count == 3

    def test_different_schedules_different_digests(self):
        a = self._run(0, [0.1, 0.2, 0.3])
        b = self._run(0, [0.1, 0.2, 0.4])
        assert a.trace.hexdigest() != b.trace.hexdigest()

    def test_cancelled_events_do_not_enter_trace(self):
        sim = Simulator(trace_hash=True)
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None).cancel()
        sim.run()
        assert sim.trace.count == 1


class _SpyHook:
    """Minimal tie hook: records groups, optionally reorders them."""

    def __init__(self, reorder=None):
        self.groups = []
        self.brackets = []
        self.reorder = reorder

    def register(self, sim):
        pass

    def on_group(self, sim, events):
        self.groups.append(list(events))
        if self.reorder is not None:
            return self.reorder(events)
        return None

    def before_event(self, sim, event):
        self.brackets.append(("before", event.seq))

    def after_event(self, sim, event):
        self.brackets.append(("after", event.seq))

    def end_group(self, sim):
        self.brackets.append(("end", None))


@pytest.fixture
def spy_hook():
    from repro.netsim import set_tie_hook

    hook = _SpyHook()
    previous = set_tie_hook(hook)
    yield hook
    set_tie_hook(previous)


class TestTieBreakContract:
    """The FIFO tie-break is load-bearing: the race rules reason about
    tie groups, so insertion order at equal (time, priority) is a pinned
    contract, not an implementation accident."""

    def test_interleaved_times_keep_per_instant_fifo(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b0")
        sim.schedule(1.0, fired.append, "a0")
        sim.schedule(2.0, fired.append, "b1")
        sim.schedule(1.0, fired.append, "a1")
        sim.run()
        assert fired == ["a0", "a1", "b0", "b1"]

    def test_boundary_lane_runs_before_default_lane(self):
        from repro.netsim import BOUNDARY_PRIORITY

        sim = Simulator()
        fired = []
        # scheduled *after* the default-lane event, still runs first
        sim.schedule(1.0, fired.append, "delivery")
        sim.schedule(1.0, fired.append, "fault", priority=BOUNDARY_PRIORITY)
        sim.run()
        assert fired == ["fault", "delivery"]

    def test_cancellation_inside_tie_group_fast_path(self):
        sim = Simulator()
        fired = []
        handles = {}
        sim.schedule(1.0, lambda: (fired.append("a"), handles["b"].cancel()))
        handles["b"] = sim.schedule(1.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a"]

    def test_cancellation_inside_tie_group_grouped_path(self, spy_hook):
        sim = Simulator()
        fired = []
        handles = {}
        sim.schedule(1.0, lambda: (fired.append("a"), handles["b"].cancel()))
        handles["b"] = sim.schedule(1.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a"]

    def test_max_events_counts_only_live_events(self):
        sim = Simulator()
        fired = []
        for i in range(6):
            handle = sim.schedule(float(i + 1), fired.append, i)
            if i % 2 == 0:
                handle.cancel()
        sim.run(max_events=2)
        assert fired == [1, 3]


class TestTieHook:
    def test_groups_batch_equal_time_and_priority(self, spy_hook):
        from repro.netsim import BOUNDARY_PRIORITY

        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None, priority=BOUNDARY_PRIORITY)
        sim.schedule(2.0, lambda: None)
        sim.run()
        shapes = [
            (group[0].time, group[0].priority, len(group))
            for group in spy_hook.groups
        ]
        assert shapes == [(1.0, BOUNDARY_PRIORITY, 1), (1.0, 0, 2), (2.0, 0, 1)]

    def test_hook_brackets_every_event_and_closes_group(self, spy_hook):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        kinds = [kind for kind, _ in spy_hook.brackets]
        assert kinds == ["before", "after", "before", "after", "end"]

    def test_hook_reordering_changes_execution_order(self):
        from repro.netsim import set_tie_hook

        hook = _SpyHook(reorder=lambda events: list(reversed(events)))
        previous = set_tie_hook(hook)
        try:
            sim = Simulator()
            fired = []
            for i in range(3):
                sim.schedule(1.0, fired.append, i)
            sim.run()
        finally:
            set_tie_hook(previous)
        assert fired == [2, 1, 0]

    def test_grouped_and_fast_paths_execute_identically(self, spy_hook):
        def build(sim, fired):
            for i in range(4):
                sim.schedule(1.0, fired.append, i)
            sim.schedule(2.0, fired.append, "late")

        grouped_sim, grouped = Simulator(), []
        build(grouped_sim, grouped)
        grouped_sim.run()

        from repro.netsim import set_tie_hook

        hook = set_tie_hook(None)  # temporarily back to the fast path
        try:
            fast_sim, fast = Simulator(), []
            build(fast_sim, fast)
            fast_sim.run()
        finally:
            set_tie_hook(hook)
        assert grouped == fast


class TestHeapHygiene:
    def test_live_pending_events_excludes_tombstones(self):
        sim = Simulator()
        keep = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        drop = [sim.schedule(2.0, lambda: None) for _ in range(2)]
        for handle in drop:
            handle.cancel()
        assert sim.pending_events == 5
        assert sim.live_pending_events == 3
        assert keep  # silence unused warning

    def test_compaction_purges_dominating_tombstones(self):
        from repro.netsim.simulator import _COMPACT_MIN_TOMBSTONES

        sim = Simulator()
        total = 3 * _COMPACT_MIN_TOMBSTONES
        handles = [sim.schedule(1.0, lambda: None) for _ in range(total)]
        survivors = set(handles[::3])
        for handle in handles:
            if handle not in survivors:
                handle.cancel()
        # tombstones (2/3 of the heap) crossed both thresholds: at least one
        # compaction ran, and the residual tombstone debt stays bounded
        assert sim.live_pending_events == len(survivors)
        assert sim.pending_events < total
        debt = sim.pending_events - sim.live_pending_events
        assert (
            debt <= _COMPACT_MIN_TOMBSTONES or debt * 2 <= sim.pending_events
        )

    def test_compaction_below_threshold_is_deferred(self):
        from repro.netsim.simulator import _COMPACT_MIN_TOMBSTONES

        sim = Simulator()
        live = [
            sim.schedule(1.0, lambda: None)
            for _ in range(3 * _COMPACT_MIN_TOMBSTONES)
        ]
        sim.schedule(1.0, lambda: None).cancel()
        assert sim.pending_events == len(live) + 1  # tombstone still queued
        assert sim.live_pending_events == len(live)

    def test_compacted_run_fires_survivors_in_order(self):
        from repro.netsim.simulator import _COMPACT_MIN_TOMBSTONES

        sim = Simulator()
        fired = []
        total = 3 * _COMPACT_MIN_TOMBSTONES
        handles = [sim.schedule(1.0, fired.append, i) for i in range(total)]
        for i, handle in enumerate(handles):
            if i % 3:
                handle.cancel()
        sim.run()
        assert fired == [i for i in range(total) if i % 3 == 0]
