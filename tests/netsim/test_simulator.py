"""Unit tests for the discrete-event core."""

import pytest

from repro.netsim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 2.0

    def test_same_time_fifo_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(0.5, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 1.5)]


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_run_until_not_overshot_by_cancelled_tombstones(self):
        """Cancelled events at the queue head must not let run(until=...)
        execute a live event beyond the deadline (regression test)."""
        sim = Simulator()
        fired = []
        early = sim.schedule(0.5, fired.append, "cancelled")
        early.cancel()
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=1.0)
        assert fired == []
        assert sim.now == 1.0
        sim.run()
        assert fired == ["late"]


class TestNonFiniteTimes:
    def test_schedule_at_nan_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-finite"):
            sim.schedule_at(float("nan"), lambda: None)

    def test_schedule_at_inf_rejected(self):
        sim = Simulator()
        for bad in (float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                sim.schedule_at(bad, lambda: None)

    def test_schedule_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_inf_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-finite"):
            sim.schedule(float("inf"), lambda: None)


class TestDeterminism:
    def test_same_seed_same_randoms(self):
        a, b = Simulator(seed=42), Simulator(seed=42)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_different_seed_different_randoms(self):
        a, b = Simulator(seed=1), Simulator(seed=2)
        assert [a.rng.random() for _ in range(5)] != [b.rng.random() for _ in range(5)]


class TestEventTrace:
    @staticmethod
    def _run(seed, delays):
        sim = Simulator(seed=seed, trace_hash=True)
        for delay in delays:
            sim.schedule(delay, lambda: None)
        sim.run()
        return sim

    def test_trace_disabled_by_default(self):
        assert Simulator().trace is None

    def test_identical_runs_identical_digests(self):
        a = self._run(0, [0.1, 0.2, 0.3])
        b = self._run(0, [0.1, 0.2, 0.3])
        assert a.trace.hexdigest() == b.trace.hexdigest()
        assert a.trace.count == 3

    def test_different_schedules_different_digests(self):
        a = self._run(0, [0.1, 0.2, 0.3])
        b = self._run(0, [0.1, 0.2, 0.4])
        assert a.trace.hexdigest() != b.trace.hexdigest()

    def test_cancelled_events_do_not_enter_trace(self):
        sim = Simulator(trace_hash=True)
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None).cancel()
        sim.run()
        assert sim.trace.count == 1
