"""Node internals: multi-homing, interception, routing fallbacks."""

from ipaddress import IPv4Address

import pytest

from repro.netsim import Link, Node, RoutingError, Simulator


class TestAddressing:
    def test_primary_address_is_first(self):
        sim = Simulator()
        node = Node(sim, "n")
        node.add_address("10.0.0.1")
        node.add_address("10.0.0.2")
        assert node.address == IPv4Address("10.0.0.1")

    def test_address_without_any_raises(self):
        sim = Simulator()
        with pytest.raises(RoutingError):
            Node(sim, "empty").address

    def test_owns_own_addresses_and_intercepts(self):
        sim = Simulator()
        node = Node(sim, "n")
        node.add_address("10.0.0.1")
        node.intercept("198.18.0.0/24")
        assert node.owns(IPv4Address("10.0.0.1"))
        assert node.owns(IPv4Address("198.18.0.7"))
        assert not node.owns(IPv4Address("192.0.2.1"))


class TestRoutingFallbacks:
    def test_single_homed_host_uses_only_link(self):
        sim = Simulator()
        a = Node(sim, "a")
        a.add_address("10.0.0.1")
        b = Node(sim, "b")
        b.add_address("10.0.0.2")
        link = Link(sim, a, b)
        # no default route set: the sole link is used implicitly
        assert a.route_for(IPv4Address("203.0.113.1")) is link

    def test_multi_homed_without_routes_has_no_route(self):
        sim = Simulator()
        hub = Node(sim, "hub")
        hub.add_address("10.0.0.254")
        x = Node(sim, "x")
        x.add_address("10.0.1.1")
        y = Node(sim, "y")
        y.add_address("10.0.2.1")
        Link(sim, hub, x)
        Link(sim, hub, y)
        assert hub.route_for(IPv4Address("203.0.113.1")) is None

    def test_default_route_beats_only_link_heuristic(self):
        sim = Simulator()
        hub = Node(sim, "hub")
        hub.add_address("10.0.0.254")
        x = Node(sim, "x")
        x.add_address("10.0.1.1")
        y = Node(sim, "y")
        y.add_address("10.0.2.1")
        Link(sim, hub, x)
        l2 = Link(sim, hub, y)
        hub.set_default_route(l2)
        assert hub.route_for(IPv4Address("203.0.113.1")) is l2

    def test_ttl_expiry_drops_in_transit(self):
        sim = Simulator()
        nodes = [Node(sim, f"r{i}") for i in range(4)]
        for i, node in enumerate(nodes):
            node.add_address(f"10.0.{i}.1")
        links = [Link(sim, nodes[i], nodes[i + 1]) for i in range(3)]
        for i in range(3):
            nodes[i].set_default_route(links[i])
            if i > 0:
                nodes[i].add_route(f"10.0.3.0/24", links[i])
        got = []
        nodes[3].udp.bind(53, lambda p, s, sp, d: got.append(p))
        from repro.netsim import DnsPayload, Packet, UdpDatagram
        from repro.dnswire import make_query

        # TTL 1: dies at the first router
        packet = Packet(
            src=IPv4Address("10.0.0.1"),
            dst=IPv4Address("10.0.3.1"),
            segment=UdpDatagram(1000, 53, DnsPayload(make_query("x.com"))),
            ttl=1,
        )
        nodes[0].send(packet)
        sim.run(until=1.0)
        assert got == []

    def test_counters(self):
        sim = Simulator()
        a = Node(sim, "a")
        a.add_address("10.0.0.1")
        b = Node(sim, "b")
        b.add_address("10.0.0.2")
        Link(sim, a, b)
        b.udp.bind(53, lambda *args: None)
        a.udp.bind_ephemeral(lambda *args: None).send(b"x", IPv4Address("10.0.0.2"), 53)
        sim.run(until=1.0)
        assert b.packets_delivered == 1
        assert b.packets_forwarded == 0
