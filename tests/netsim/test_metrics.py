"""Unit tests for the measurement collectors."""

import math

import pytest

from repro.metrics import CpuSeries, LatencyStats, ThroughputSeries
from repro.netsim import Cpu, Node, Simulator


class _FakeStats:
    def __init__(self):
        self.completed = 0


class TestThroughputSeries:
    def test_samples_completed_deltas(self):
        sim = Simulator()
        stats = _FakeStats()
        series = ThroughputSeries(sim, stats, interval=0.1)
        series.start()
        # 10 completions every 0.01 s => 1000/sec, spread over 0.3 s
        for i in range(30):
            sim.schedule(i * 0.01, lambda: setattr(stats, "completed", stats.completed + 10))
        sim.run(until=0.35)
        series.stop()
        assert len(series.samples) == 3
        assert series.mean() == pytest.approx(1000.0, rel=0.15)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        series = ThroughputSeries(sim, _FakeStats(), interval=0.1)
        series.start()
        sim.run(until=0.25)
        series.stop()
        sim.run(until=1.0)
        assert len(series.samples) <= 3


class TestCpuSeries:
    def test_utilization_sampling(self):
        sim = Simulator()
        node = Node(sim, "n")
        node.cpu.queue_limit = 10.0
        series = CpuSeries(node, interval=0.1)
        series.start()
        for _ in range(5):
            node.cpu.submit(0.1, None)  # 0.5 s of work in a 1 s window
        sim.run(until=1.05)
        series.stop()
        assert series.mean() == pytest.approx(0.5, abs=0.1)

    def test_idle_node_reads_zero(self):
        sim = Simulator()
        node = Node(sim, "n")
        series = CpuSeries(node, interval=0.1)
        series.start()
        sim.run(until=0.55)
        series.stop()
        assert series.mean() == 0.0


class TestLatencyStats:
    def test_summary_statistics(self):
        stats = LatencyStats([0.001 * i for i in range(1, 101)])
        assert stats.count == 100
        assert stats.mean == pytest.approx(0.0505)
        assert stats.median == pytest.approx(0.051)
        assert stats.p99 == pytest.approx(0.1)
        assert stats.mean_ms() == pytest.approx(50.5)

    def test_empty_is_nan(self):
        stats = LatencyStats([])
        assert math.isnan(stats.mean)
        assert math.isnan(stats.median)

    def test_percentile_bounds(self):
        stats = LatencyStats([1.0, 2.0, 3.0])
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 3.0
