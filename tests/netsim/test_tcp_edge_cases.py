"""TCP corner cases: RSTs, half-close, retransmission exhaustion, windows."""

from ipaddress import IPv4Address

import pytest

from repro.netsim import (
    Link,
    MAX_RETRANSMITS,
    MSS,
    Node,
    Packet,
    Simulator,
    TcpFlags,
    TcpSegment,
    TcpState,
)
from repro.netsim.tcp import SEND_WINDOW_SEGMENTS

SERVER_IP = IPv4Address("10.0.0.2")


def pair(seed=0, **link_kwargs):
    sim = Simulator(seed=seed)
    client = Node(sim, "client")
    client.add_address("10.0.0.1")
    server = Node(sim, "server")
    server.add_address(SERVER_IP)
    Link(sim, client, server, delay=0.001, **link_kwargs)
    return sim, client, server


class TestRstHandling:
    def test_rst_during_handshake_kills_client(self):
        sim, client, server = pair()
        closes = []
        conn = client.tcp.connect(SERVER_IP, 53, on_close=lambda c, e: closes.append(e))
        # forge a RST from the server before any listener exists
        rst = TcpSegment(sport=53, dport=conn.local_port, seq=0, ack=0, flags=TcpFlags.RST)
        server.send(Packet(src=SERVER_IP, dst=IPv4Address("10.0.0.1"), segment=rst))
        sim.run(until=1.0)
        assert conn.state is TcpState.CLOSED
        assert closes == [True]

    def test_rst_mid_stream(self):
        sim, client, server = pair()
        server_conns = []
        server.tcp.listen(53, server_conns.append)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=0.1)
        assert conn.state is TcpState.ESTABLISHED
        server_conns[0].abort()
        sim.run(until=0.5)
        assert conn.state is TcpState.CLOSED
        assert client.tcp.open_connections == 0


class TestRetransmissionExhaustion:
    def test_connection_aborts_after_max_retries(self):
        sim, client, server = pair()
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=0.1)
        # the server vanishes: all data segments will be lost
        link = client.links[0]
        link.loss = 1.0
        conn.send(b"doomed")
        sim.run(until=120.0)
        assert conn.state is TcpState.CLOSED
        assert conn._retransmits == 0 or conn.state is TcpState.CLOSED

    def test_retransmit_counter_resets_on_progress(self):
        sim, client, server = pair(seed=8, loss=0.3)
        received = []

        def on_connection(conn):
            conn.on_data = lambda c, data: received.append(data)

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(
            SERVER_IP, 53, on_established=lambda c: c.send(b"z" * 8000)
        )
        sim.run(until=60.0)
        assert b"".join(received) == b"z" * 8000


class TestHalfClose:
    def test_client_close_then_server_keeps_sending(self):
        """Passive side may keep sending after receiving FIN (CLOSE_WAIT)."""
        sim, client, server = pair()
        got = []

        def on_connection(conn):
            def on_data(c, data):
                if data == b"":  # client's FIN (EOF)
                    c.send(b"parting-gift")
                    c.close()

            conn.on_data = on_data

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(
            SERVER_IP, 53,
            on_established=lambda c: c.close(),
            on_data=lambda c, data: got.append(data),
        )
        sim.run(until=5.0)
        assert b"".join(got).replace(b"", b"") == b"parting-gift"
        assert client.tcp.open_connections == 0
        assert server.tcp.open_connections == 0


class TestWindowing:
    def test_send_window_bounds_inflight(self):
        sim, client, server = pair()
        # a black-hole server: accept the handshake then drop all data ACKs
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=0.1)
        client.links[0].loss = 1.0  # nothing gets through any more
        conn.send(b"q" * (MSS * (SEND_WINDOW_SEGMENTS + 10)))
        # only a window's worth was put in flight
        assert len(conn._inflight) <= SEND_WINDOW_SEGMENTS

    def test_window_refills_as_acks_arrive(self):
        sim, client, server = pair()
        received = []

        def on_connection(conn):
            conn.on_data = lambda c, data: received.append(len(data))

        server.tcp.listen(53, on_connection)
        total = MSS * (SEND_WINDOW_SEGMENTS + 8)
        client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.send(b"w" * total))
        sim.run(until=10.0)
        assert sum(received) == total


class TestDuplicateDelivery:
    def test_duplicate_segment_not_delivered_twice(self):
        sim, client, server = pair()
        chunks = []
        server_conns = []

        def on_connection(conn):
            server_conns.append(conn)
            conn.on_data = lambda c, data: chunks.append(data)

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.send(b"once"))
        sim.run(until=0.5)
        # replay the exact data segment
        dup = TcpSegment(
            sport=conn.local_port, dport=53,
            seq=conn.iss + 1, ack=server_conns[0].snd_nxt,
            flags=TcpFlags.ACK, data=b"once",
        )
        client.send(Packet(src=IPv4Address("10.0.0.1"), dst=SERVER_IP, segment=dup))
        sim.run(until=1.0)
        assert b"".join(chunks) == b"once"
