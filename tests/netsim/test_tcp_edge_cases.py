"""TCP corner cases: RSTs, half-close, retransmission exhaustion, windows."""

from ipaddress import IPv4Address

import pytest

from repro.netsim import (
    Link,
    MAX_RETRANSMITS,
    MSS,
    Node,
    Packet,
    Simulator,
    TcpFlags,
    TcpSegment,
    TcpState,
)
from repro.netsim.tcp import SEND_WINDOW_SEGMENTS

SERVER_IP = IPv4Address("10.0.0.2")


def pair(seed=0, **link_kwargs):
    sim = Simulator(seed=seed)
    client = Node(sim, "client")
    client.add_address("10.0.0.1")
    server = Node(sim, "server")
    server.add_address(SERVER_IP)
    Link(sim, client, server, delay=0.001, **link_kwargs)
    return sim, client, server


class TestRstHandling:
    def test_rst_during_handshake_kills_client(self):
        sim, client, server = pair()
        closes = []
        conn = client.tcp.connect(SERVER_IP, 53, on_close=lambda c, e: closes.append(e))
        # forge a RST from the server before any listener exists
        rst = TcpSegment(sport=53, dport=conn.local_port, seq=0, ack=0, flags=TcpFlags.RST)
        server.send(Packet(src=SERVER_IP, dst=IPv4Address("10.0.0.1"), segment=rst))
        sim.run(until=1.0)
        assert conn.state is TcpState.CLOSED
        assert closes == [True]

    def test_rst_mid_stream(self):
        sim, client, server = pair()
        server_conns = []
        server.tcp.listen(53, server_conns.append)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=0.1)
        assert conn.state is TcpState.ESTABLISHED
        server_conns[0].abort()
        sim.run(until=0.5)
        assert conn.state is TcpState.CLOSED
        assert client.tcp.open_connections == 0


class TestRetransmissionExhaustion:
    def test_connection_aborts_after_max_retries(self):
        sim, client, server = pair()
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=0.1)
        # the server vanishes: all data segments will be lost
        link = client.links[0]
        link.loss = 1.0
        conn.send(b"doomed")
        sim.run(until=120.0)
        assert conn.state is TcpState.CLOSED
        assert conn._retransmits == 0 or conn.state is TcpState.CLOSED

    def test_retransmit_counter_resets_on_progress(self):
        sim, client, server = pair(seed=8, loss=0.3)
        received = []

        def on_connection(conn):
            conn.on_data = lambda c, data: received.append(data)

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(
            SERVER_IP, 53, on_established=lambda c: c.send(b"z" * 8000)
        )
        sim.run(until=60.0)
        assert b"".join(received) == b"z" * 8000


class TestHalfClose:
    def test_client_close_then_server_keeps_sending(self):
        """Passive side may keep sending after receiving FIN (CLOSE_WAIT)."""
        sim, client, server = pair()
        got = []

        def on_connection(conn):
            def on_data(c, data):
                if data == b"":  # client's FIN (EOF)
                    c.send(b"parting-gift")
                    c.close()

            conn.on_data = on_data

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(
            SERVER_IP, 53,
            on_established=lambda c: c.close(),
            on_data=lambda c, data: got.append(data),
        )
        sim.run(until=5.0)
        assert b"".join(got).replace(b"", b"") == b"parting-gift"
        assert client.tcp.open_connections == 0
        assert server.tcp.open_connections == 0


class TestWindowing:
    def test_send_window_bounds_inflight(self):
        sim, client, server = pair()
        # a black-hole server: accept the handshake then drop all data ACKs
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=0.1)
        client.links[0].loss = 1.0  # nothing gets through any more
        conn.send(b"q" * (MSS * (SEND_WINDOW_SEGMENTS + 10)))
        # only a window's worth was put in flight
        assert len(conn._inflight) <= SEND_WINDOW_SEGMENTS

    def test_window_refills_as_acks_arrive(self):
        sim, client, server = pair()
        received = []

        def on_connection(conn):
            conn.on_data = lambda c, data: received.append(len(data))

        server.tcp.listen(53, on_connection)
        total = MSS * (SEND_WINDOW_SEGMENTS + 8)
        client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.send(b"w" * total))
        sim.run(until=10.0)
        assert sum(received) == total


class TestDuplicateDelivery:
    def test_duplicate_segment_not_delivered_twice(self):
        sim, client, server = pair()
        chunks = []
        server_conns = []

        def on_connection(conn):
            server_conns.append(conn)
            conn.on_data = lambda c, data: chunks.append(data)

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.send(b"once"))
        sim.run(until=0.5)
        # replay the exact data segment
        dup = TcpSegment(
            sport=conn.local_port, dport=53,
            seq=conn.iss + 1, ack=server_conns[0].snd_nxt,
            flags=TcpFlags.ACK, data=b"once",
        )
        client.send(Packet(src=IPv4Address("10.0.0.1"), dst=SERVER_IP, segment=dup))
        sim.run(until=1.0)
        assert b"".join(chunks) == b"once"


class TestBoundedRetransmission:
    def test_per_connection_budget_overrides_stack_default(self):
        sim, client, server = pair()
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53, max_retransmits=2)
        sim.run(until=0.1)
        client.links[0].loss = 1.0  # blackhole from here on
        conn.send(b"doomed")
        sim.run(until=10.0)
        assert conn.state is TcpState.CLOSED
        assert conn.aborted_by_retries
        assert client.tcp.retry_exhaustions == 1

    def test_tight_budget_aborts_much_faster(self):
        def abort_time(budget):
            sim, client, server = pair()
            server.tcp.listen(53, lambda conn: None)
            closed = []
            conn = client.tcp.connect(
                SERVER_IP, 53, max_retransmits=budget,
                on_close=lambda c, e: closed.append(sim.now),
            )
            sim.run(until=0.1)
            client.links[0].loss = 1.0
            conn.send(b"x")
            sim.run(until=120.0)
            return closed[0]

        assert abort_time(2) < abort_time(MAX_RETRANSMITS) / 3

    def test_transfer_survives_bursty_loss(self):
        """A Gilbert-Elliott channel loses bursts; retransmission recovers."""
        import random

        from repro.netsim import GilbertElliottLoss

        sim, client, server = pair(seed=11)
        link = client.links[0]
        link.loss_model = GilbertElliottLoss(
            random.Random(99),
            p_good_to_bad=0.1,
            p_bad_to_good=0.3,
            loss_bad=1.0,
            start_bad=True,
        )
        received = []

        def on_connection(conn):
            conn.on_data = lambda c, data: received.append(data)

        server.tcp.listen(53, on_connection)
        client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.send(b"b" * 6000))
        sim.run(until=60.0)
        assert b"".join(received) == b"b" * 6000
        assert link.loss_model.drops > 0


class TestResetAll:
    def test_silent_reset_leaves_peer_guessing(self):
        sim, client, server = pair()
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=0.1)
        server.tcp.reset_all(send_rst=False)
        assert server.tcp.open_connections == 0
        # the client heard nothing: still established until its own timers fire
        assert conn.state is TcpState.ESTABLISHED

    def test_rst_reset_notifies_peer(self):
        sim, client, server = pair()
        server.tcp.listen(53, lambda conn: None)
        errors = []
        conn = client.tcp.connect(SERVER_IP, 53, on_close=lambda c, e: errors.append(e))
        sim.run(until=0.1)
        server.tcp.reset_all(send_rst=True)
        sim.run(until=0.5)
        assert server.tcp.open_connections == 0
        assert conn.state is TcpState.CLOSED
        assert errors == [True]


class TestTimeWaitLinger:
    def exchange(self, sim, client, server, syn_cookies=True):
        """One complete request/response conversation, cleanly closed."""

        def on_connection(conn):
            def on_data(c, data):
                if data:
                    c.send(b"resp")
                    c.close()

            conn.on_data = on_data

        try:
            server.tcp.listen(53, on_connection, syn_cookies=syn_cookies)
        except Exception:
            pass  # already listening from a previous call
        conn = client.tcp.connect(
            SERVER_IP, 53,
            on_established=lambda c: c.send(b"req"),
            on_data=lambda c, data: c.close() if data else None,
        )
        sim.run(until=sim.now + 1.0)
        assert client.tcp.open_connections == 0
        assert server.tcp.open_connections == 0
        return conn

    def test_stale_duplicate_swallowed_not_cookie_failure(self):
        sim, client, server = pair()
        conn = self.exchange(sim, client, server)
        # replay the client's final pure ACK after full teardown
        stale = TcpSegment(
            sport=conn.local_port, dport=53,
            seq=conn.snd_nxt, ack=conn.rcv_nxt, flags=TcpFlags.ACK,
        )
        client.send(Packet(src=IPv4Address("10.0.0.1"), dst=SERVER_IP, segment=stale))
        sim.run(until=sim.now + 0.5)
        assert server.tcp.cookie_failures == 0
        assert server.tcp.stale_segments >= 1
        assert server.tcp.open_connections == 0

    def test_fresh_syn_clears_linger_entry(self):
        """A new connect reusing the same 4-tuple must not be blackholed."""
        from repro.netsim.tcp import TIME_WAIT_LINGER

        sim, client, server = pair()
        conn = self.exchange(sim, client, server)
        key = (SERVER_IP, 53, IPv4Address("10.0.0.1"), conn.local_port)
        assert key in server.tcp._time_wait
        established = []
        # reconnect from the very same ephemeral port, inside the linger
        reconn = client.tcp.connect(
            SERVER_IP, 53, src=IPv4Address("10.0.0.1"),
            on_established=lambda c: established.append(c),
        )
        reconn.local_port = conn.local_port
        client.tcp.connections.pop(reconn.key, None)
        client.tcp.connections[reconn.key] = reconn
        sim.run(until=sim.now + min(0.5, TIME_WAIT_LINGER / 2))
        assert established

    def test_rst_to_listener_ignored(self):
        sim, client, server = pair()
        server.tcp.listen(53, lambda conn: None, syn_cookies=True)
        rst = TcpSegment(sport=4444, dport=53, seq=9, ack=7, flags=TcpFlags.RST | TcpFlags.ACK)
        client.send(Packet(src=IPv4Address("10.0.0.1"), dst=SERVER_IP, segment=rst))
        sim.run(until=0.5)
        assert server.tcp.cookie_failures == 0
        assert server.tcp.open_connections == 0

    def test_stale_data_segment_not_counted_as_forged_cookie(self):
        sim, client, server = pair()
        self.exchange(sim, client, server)
        server.tcp._time_wait.clear()  # pretend the linger already expired
        stale = TcpSegment(
            sport=50000, dport=53, seq=123456, ack=987654,
            flags=TcpFlags.ACK, data=b"old-request",
        )
        client.send(Packet(src=IPv4Address("10.0.0.1"), dst=SERVER_IP, segment=stale))
        sim.run(until=sim.now + 0.5)
        assert server.tcp.cookie_failures == 0
        assert server.tcp.stale_segments >= 1
