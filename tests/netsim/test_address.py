"""Unit tests for the subnet allocator."""

from ipaddress import IPv4Address, IPv4Network

import pytest

from repro.netsim import AddressError, SubnetAllocator


class TestSubnetAllocator:
    def test_allocates_in_order(self):
        alloc = SubnetAllocator("10.0.0.0/29")
        assert alloc.allocate() == IPv4Address("10.0.0.1")
        assert alloc.allocate() == IPv4Address("10.0.0.2")

    def test_exhaustion_raises(self):
        alloc = SubnetAllocator("10.0.0.0/30")  # 2 usable hosts
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(AddressError):
            alloc.allocate()

    def test_claim_specific(self):
        alloc = SubnetAllocator("10.0.0.0/24")
        assert alloc.claim("10.0.0.53") == IPv4Address("10.0.0.53")

    def test_claim_outside_subnet_rejected(self):
        alloc = SubnetAllocator("10.0.0.0/24")
        with pytest.raises(AddressError):
            alloc.claim("192.168.1.1")

    def test_double_claim_rejected(self):
        alloc = SubnetAllocator("10.0.0.0/24")
        alloc.claim("10.0.0.53")
        with pytest.raises(AddressError):
            alloc.claim("10.0.0.53")

    def test_host_range_is_r_y(self):
        assert SubnetAllocator("10.0.0.0/24").host_range() == 254
        assert SubnetAllocator("10.0.0.0/28").host_range() == 14

    def test_contains(self):
        alloc = SubnetAllocator("10.0.0.0/24")
        assert IPv4Address("10.0.0.7") in alloc
        assert IPv4Address("10.0.1.7") not in alloc

    def test_network_object_accepted(self):
        alloc = SubnetAllocator(IPv4Network("172.16.0.0/30"))
        assert alloc.allocate() in IPv4Network("172.16.0.0/30")
