"""Unit tests for the CPU service-queue model."""

import pytest

from repro.netsim import Cpu, Simulator


class TestService:
    def test_work_completes_after_cost(self):
        sim = Simulator()
        cpu = Cpu(sim)
        done = []
        cpu.submit(0.5, done.append, "job")
        sim.run()
        assert done == ["job"]
        assert sim.now == 0.5

    def test_fifo_queueing_serialises_jobs(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=10.0)
        completions = []
        cpu.submit(0.3, lambda: completions.append(sim.now))
        cpu.submit(0.3, lambda: completions.append(sim.now))
        sim.run()
        assert completions == [pytest.approx(0.3), pytest.approx(0.6)]

    def test_speed_scales_cost(self):
        sim = Simulator()
        cpu = Cpu(sim, speed=2.0)
        done = []
        cpu.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            Cpu(Simulator(), speed=0)

    def test_overload_drops_work(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01)
        accepted = sum(cpu.submit(0.005, None) for _ in range(10))
        assert accepted < 10
        assert cpu.jobs_dropped == 10 - accepted
        assert cpu.jobs_accepted == accepted

    def test_queue_drains_then_accepts_again(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=0.01)
        while cpu.submit(0.005, None):
            pass
        sim.run(until=1.0)  # let virtual time pass so the backlog drains
        assert cpu.submit(0.005, None)

    def test_charge_is_submit_without_callback(self):
        sim = Simulator()
        cpu = Cpu(sim)
        assert cpu.charge(0.2)
        assert cpu.backlog == pytest.approx(0.2)


class TestUtilization:
    def test_idle_cpu_reports_zero(self):
        sim = Simulator()
        cpu = Cpu(sim)
        start_busy, start_time = cpu.completed_busy_seconds(), sim.now
        sim.run(until=1.0)
        assert cpu.utilization(start_busy, start_time) == 0.0

    def test_fully_busy_cpu_reports_one(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=10.0)
        start_busy, start_time = cpu.completed_busy_seconds(), sim.now
        for _ in range(10):
            cpu.submit(0.1, None)
        sim.run(until=1.0)
        assert cpu.utilization(start_busy, start_time) == pytest.approx(1.0)

    def test_half_busy_cpu(self):
        sim = Simulator()
        cpu = Cpu(sim)
        start_busy, start_time = cpu.completed_busy_seconds(), sim.now
        cpu.submit(0.5, None)
        sim.run(until=1.0)
        assert cpu.utilization(start_busy, start_time) == pytest.approx(0.5)

    def test_pending_work_not_counted(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=100.0)
        cpu.submit(5.0, None)
        sim.run(until=1.0)
        # only 1 second of the 5-second job has executed
        assert cpu.completed_busy_seconds() == pytest.approx(1.0)

    def test_backlog_reflects_queued_work(self):
        sim = Simulator()
        cpu = Cpu(sim, queue_limit=100.0)
        cpu.submit(2.0, None)
        assert cpu.backlog == pytest.approx(2.0)
        sim.run(until=1.0)
        assert cpu.backlog == pytest.approx(1.0)

    def test_reset_counters(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.submit(0.1, None)
        cpu.reset_counters()
        assert cpu.jobs_accepted == 0 and cpu.jobs_dropped == 0
