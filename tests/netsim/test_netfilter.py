"""Unit tests for the netfilter-style packet filter."""

from ipaddress import IPv4Address

import pytest

from repro.netsim import Hook, Link, Node, Rule, Simulator, Verdict
from repro.netsim.netfilter import (
    conjunction,
    dst_is,
    match_all,
    rate_limit_target,
    src_in,
    src_not_in,
    udp_dport,
)


def chainlet(seed=0):
    """client -- fw (router) -- server, for transit filtering tests."""
    sim = Simulator(seed=seed)
    client = Node(sim, "client")
    client.add_address("10.0.0.1")
    fw = Node(sim, "fw")
    fw.add_address("10.0.0.254")
    server = Node(sim, "server")
    server.add_address("203.0.113.53")
    l1 = Link(sim, client, fw, delay=0.0001)
    l2 = Link(sim, fw, server, delay=0.0001)
    client.set_default_route(l1)
    server.set_default_route(l2)
    fw.add_route("10.0.0.0/24", l1)
    fw.add_route("203.0.113.0/24", l2)
    return sim, client, fw, server


class TestRules:
    def test_rule_requires_exactly_one_action(self):
        with pytest.raises(ValueError):
            Rule(match=match_all)
        with pytest.raises(ValueError):
            Rule(match=match_all, verdict=Verdict.DROP, target=lambda p: Verdict.DROP)

    def test_counters_track_matches(self):
        sim, client, fw, server = chainlet()
        rule = fw.filters.append(Hook.FORWARD, udp_dport(53), Verdict.ACCEPT)
        sock = client.udp.bind_ephemeral(lambda *a: None)
        for i in range(5):
            sock.send(b"q", IPv4Address("203.0.113.53"), 53)
        sock.send(b"q", IPv4Address("203.0.113.53"), 9999)  # not matched
        sim.run(until=1.0)
        assert rule.packets == 5
        assert rule.bytes > 0

    def test_first_match_wins(self):
        sim, client, fw, server = chainlet()
        fw.filters.append(Hook.FORWARD, udp_dport(53), Verdict.DROP, comment="block dns")
        fw.filters.append(Hook.FORWARD, match_all, Verdict.ACCEPT)
        got = []
        server.udp.bind(53, lambda p, s, sp, d: got.append(p))
        server.udp.bind(80, lambda p, s, sp, d: got.append(p))
        sock = client.udp.bind_ephemeral(lambda *a: None)
        sock.send(b"dns", IPv4Address("203.0.113.53"), 53)
        sock.send(b"web", IPv4Address("203.0.113.53"), 80)
        sim.run(until=1.0)
        assert got == [b"web"]


class TestChainsAndHooks:
    def test_forward_drop_blocks_transit(self):
        sim, client, fw, server = chainlet()
        fw.filters.append(Hook.FORWARD, match_all, Verdict.DROP)
        got = []
        server.udp.bind(53, lambda p, s, sp, d: got.append(p))
        client.udp.bind_ephemeral(lambda *a: None).send(b"x", IPv4Address("203.0.113.53"), 53)
        sim.run(until=1.0)
        assert got == []
        assert fw.packets_dropped == 1

    def test_local_in_protects_node_itself(self):
        sim, client, fw, server = chainlet()
        server.filters.append(Hook.LOCAL_IN, udp_dport(53), Verdict.DROP)
        got = []
        server.udp.bind(53, lambda p, s, sp, d: got.append(p))
        client.udp.bind_ephemeral(lambda *a: None).send(b"x", IPv4Address("203.0.113.53"), 53)
        sim.run(until=1.0)
        assert got == []

    def test_local_out_blocks_origination(self):
        sim, client, fw, server = chainlet()
        client.filters.append(Hook.LOCAL_OUT, dst_is("203.0.113.53"), Verdict.DROP)
        got = []
        server.udp.bind(53, lambda p, s, sp, d: got.append(p))
        sock = client.udp.bind_ephemeral(lambda *a: None)
        assert sock.send(b"x", IPv4Address("203.0.113.53"), 53) is False
        sim.run(until=1.0)
        assert got == []

    def test_prerouting_applies_to_delivered_and_forwarded(self):
        sim, client, fw, server = chainlet()
        fw.filters.append(Hook.PREROUTING, src_in("10.0.0.0/24"), Verdict.DROP)
        got = []
        server.udp.bind(53, lambda p, s, sp, d: got.append(p))
        fw.udp.bind(53, lambda p, s, sp, d: got.append(p))
        sock = client.udp.bind_ephemeral(lambda *a: None)
        sock.send(b"transit", IPv4Address("203.0.113.53"), 53)
        sock.send(b"local", IPv4Address("10.0.0.254"), 53)
        sim.run(until=1.0)
        assert got == []

    def test_chain_policy_drop(self):
        sim, client, fw, server = chainlet()
        chain = fw.filters.chain(Hook.FORWARD)
        chain.policy = Verdict.DROP
        chain.append(Rule(match=udp_dport(53), verdict=Verdict.ACCEPT))
        got = []
        server.udp.bind(53, lambda p, s, sp, d: got.append(p))
        server.udp.bind(80, lambda p, s, sp, d: got.append(p))
        sock = client.udp.bind_ephemeral(lambda *a: None)
        sock.send(b"dns", IPv4Address("203.0.113.53"), 53)
        sock.send(b"web", IPv4Address("203.0.113.53"), 80)
        sim.run(until=1.0)
        assert got == [b"dns"]
        assert chain.policy_packets == 1

    def test_nodes_without_filters_pay_nothing(self):
        sim, client, fw, server = chainlet()
        assert fw._filters is None  # lazily created only on use


class TestIngressFiltering:
    def test_rfc2827_blocks_spoofing_at_the_edge(self):
        """An edge router dropping out-of-subnet sources stops spoofing."""
        sim, client, edge, server = chainlet()
        edge.filters.append(
            Hook.FORWARD, src_not_in("10.0.0.0/24"), Verdict.DROP,
            comment="RFC 2827 ingress filter",
        )
        seen = []
        server.udp.bind(53, lambda p, s, sp, d: seen.append(s))
        sock = client.udp.bind_ephemeral(lambda *a: None)
        sock.send(b"honest", IPv4Address("203.0.113.53"), 53)
        sock.send(b"spoof", IPv4Address("203.0.113.53"), 53, src=IPv4Address("8.8.8.8"))
        sim.run(until=1.0)
        assert seen == [IPv4Address("10.0.0.1")]


class TestRateLimitTarget:
    def test_limit_target_throttles(self):
        sim, client, fw, server = chainlet()
        fw.filters.append(
            Hook.FORWARD,
            conjunction(udp_dport(53), src_in("10.0.0.0/24")),
            target=rate_limit_target(10.0, 5.0, clock=lambda: sim.now),
        )
        got = []
        server.udp.bind(53, lambda p, s, sp, d: got.append(p))
        sock = client.udp.bind_ephemeral(lambda *a: None)
        for i in range(50):
            sim.schedule(i * 0.001, sock.send, b"q", IPv4Address("203.0.113.53"), 53)
        sim.run(until=1.0)
        assert 5 <= len(got) <= 7  # burst of 5 plus ~10/sec for 50 ms
