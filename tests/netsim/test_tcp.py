"""Unit tests for the TCP implementation: handshake, stream, SYN cookies."""

from ipaddress import IPv4Address

import pytest

from repro.netsim import (
    Link,
    MSS,
    Node,
    Simulator,
    TcpFlags,
    TcpSegment,
    TcpState,
    Packet,
)


def tcp_pair(seed=0, **link_kwargs):
    sim = Simulator(seed=seed)
    client = Node(sim, "client")
    server = Node(sim, "server")
    client.add_address("10.0.0.1")
    server.add_address("10.0.0.2")
    Link(sim, client, server, delay=0.001, **link_kwargs)
    return sim, client, server


SERVER_IP = IPv4Address("10.0.0.2")


class TestHandshake:
    def test_three_way_handshake(self):
        sim, client, server = tcp_pair()
        accepted = []
        established = []
        server.tcp.listen(53, accepted.append)
        client.tcp.connect(SERVER_IP, 53, on_established=established.append)
        sim.run()
        assert len(accepted) == 1 and len(established) == 1
        assert accepted[0].state is TcpState.ESTABLISHED
        assert established[0].state is TcpState.ESTABLISHED

    def test_rtt_measured(self):
        sim, client, server = tcp_pair()
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run()
        assert conn.rtt == pytest.approx(0.002, abs=1e-6)

    def test_syn_to_closed_port_ignored(self):
        sim, client, server = tcp_pair()
        conn = client.tcp.connect(SERVER_IP, 9999)
        sim.run(until=30.0)
        # retransmits exhausted -> aborted
        assert conn.state is TcpState.CLOSED

    def test_syn_retransmission_on_loss(self):
        sim, client, server = tcp_pair(seed=3, loss=0.3)
        accepted = []
        server.tcp.listen(53, accepted.append)
        client.tcp.connect(SERVER_IP, 53)
        sim.run(until=20.0)
        assert len(accepted) == 1


class TestSynCookies:
    def test_handshake_with_cookies(self):
        sim, client, server = tcp_pair()
        accepted = []
        server.tcp.listen(53, accepted.append, syn_cookies=True)
        established = []
        client.tcp.connect(SERVER_IP, 53, on_established=established.append)
        sim.run()
        assert len(accepted) == 1 and len(established) == 1

    def test_no_state_for_half_open(self):
        """SYN flood with spoofed sources leaves the cookie listener stateless."""
        sim, client, server = tcp_pair()
        server.tcp.listen(53, lambda conn: None, syn_cookies=True)
        for i in range(100):
            syn = TcpSegment(sport=10000 + i, dport=53, seq=i, ack=0, flags=TcpFlags.SYN)
            client.send(Packet(src=IPv4Address(f"9.9.{i % 250}.{i % 250 + 1}"),
                               dst=SERVER_IP, segment=syn))
        sim.run(until=1.0)
        assert server.tcp.open_connections == 0

    def test_stateful_listener_accumulates_half_open(self):
        sim, client, server = tcp_pair()
        server.tcp.listen(53, lambda conn: None, syn_cookies=False)
        for i in range(50):
            syn = TcpSegment(sport=20000 + i, dport=53, seq=i, ack=0, flags=TcpFlags.SYN)
            client.send(Packet(src=IPv4Address("9.9.9.9"), dst=SERVER_IP, segment=syn))
        sim.run(until=0.01)
        assert server.tcp.open_connections == 50

    def test_forged_ack_rejected(self):
        """An ACK with a guessed cookie must not create a connection."""
        sim, client, server = tcp_pair()
        listener = server.tcp.listen(53, lambda conn: None, syn_cookies=True)
        forged = TcpSegment(sport=12345, dport=53, seq=1, ack=424242, flags=TcpFlags.ACK)
        client.send(Packet(src=IPv4Address("6.6.6.6"), dst=SERVER_IP, segment=forged))
        sim.run()
        assert server.tcp.open_connections == 0
        assert listener.cookies_rejected == 1

    def test_spoofed_syn_gets_no_connection(self):
        """The spoofer never sees the SYN-ACK, so it cannot complete."""
        sim, client, server = tcp_pair()
        accepted = []
        server.tcp.listen(53, accepted.append, syn_cookies=True)
        syn = TcpSegment(sport=5555, dport=53, seq=77, ack=0, flags=TcpFlags.SYN)
        client.send(Packet(src=IPv4Address("44.44.44.44"), dst=SERVER_IP, segment=syn))
        sim.run(until=5.0)
        assert accepted == []


class TestDataTransfer:
    def echo_server(self, server, port=53, **listen_kwargs):
        def on_connection(conn):
            conn.on_data = lambda c, data: c.send(data) if data else None

        server.tcp.listen(port, on_connection, **listen_kwargs)

    def test_small_payload_echo(self):
        sim, client, server = tcp_pair()
        self.echo_server(server)
        received = []

        def on_established(conn):
            conn.send(b"hello dns")

        conn = client.tcp.connect(
            SERVER_IP, 53,
            on_established=on_established,
            on_data=lambda c, data: received.append(data),
        )
        sim.run(until=2.0)
        assert b"".join(received) == b"hello dns"

    def test_multi_segment_transfer(self):
        sim, client, server = tcp_pair()
        blob = bytes(range(256)) * 20  # 5120 bytes > 3 segments
        received = []

        def on_connection(conn):
            conn.on_data = lambda c, data: received.append(data)

        server.tcp.listen(53, on_connection)
        client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.send(blob))
        sim.run(until=2.0)
        assert b"".join(received) == blob
        assert len(received) >= len(blob) // MSS

    def test_transfer_survives_loss(self):
        sim, client, server = tcp_pair(seed=11, loss=0.15)
        blob = b"q" * 4000
        received = []

        def on_connection(conn):
            conn.on_data = lambda c, data: received.append(data)

        server.tcp.listen(53, on_connection)
        client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.send(blob))
        sim.run(until=30.0)
        assert b"".join(received) == blob

    def test_graceful_close_both_ways(self):
        sim, client, server = tcp_pair()
        closes = []

        def on_connection(conn):
            conn.on_data = lambda c, data: c.close() if data == b"" else None
            conn.on_close = lambda c, err: closes.append(("server", err))

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(SERVER_IP, 53, on_close=lambda c, e: closes.append(("client", e)))
        conn.on_established = lambda c: c.close()
        sim.run(until=5.0)
        assert ("client", False) in closes
        assert client.tcp.open_connections == 0
        assert server.tcp.open_connections == 0

    def test_abort_sends_rst(self):
        sim, client, server = tcp_pair()
        server_conns = []
        closes = []

        def on_connection(conn):
            server_conns.append(conn)
            conn.on_close = lambda c, err: closes.append(err)

        server.tcp.listen(53, on_connection)
        conn = client.tcp.connect(SERVER_IP, 53, on_established=lambda c: c.abort())
        sim.run(until=2.0)
        assert closes == [True]
        assert server.tcp.open_connections == 0

    def test_send_after_close_raises(self):
        sim, client, server = tcp_pair()
        self.echo_server(server)
        errors = []

        def on_established(conn):
            conn.close()
            try:
                conn.send(b"late")
            except Exception as exc:  # noqa: BLE001 - asserting type below
                errors.append(type(exc).__name__)

        client.tcp.connect(SERVER_IP, 53, on_established=on_established)
        sim.run(until=2.0)
        assert errors == ["ConnectionError_"]

    def test_duration_tracks_age(self):
        sim, client, server = tcp_pair()
        server.tcp.listen(53, lambda conn: None)
        conn = client.tcp.connect(SERVER_IP, 53)
        sim.run(until=3.0)
        assert conn.duration == pytest.approx(3.0)


class TestSegmentCost:
    def test_cpu_cost_charged_per_segment(self):
        sim, client, server = tcp_pair()
        server.tcp.segment_cost_fn = lambda stack: 0.001
        self_done = []
        server.tcp.listen(53, self_done.append)
        client.tcp.connect(SERVER_IP, 53)
        sim.run(until=2.0)
        assert server.cpu.completed_busy_seconds() > 0

    def test_overloaded_cpu_drops_segments(self):
        sim, client, server = tcp_pair()
        server.tcp.segment_cost_fn = lambda stack: 0.5
        server.cpu.queue_limit = 0.4
        server.tcp.listen(53, lambda conn: None)
        for i in range(20):
            syn = TcpSegment(sport=30000 + i, dport=53, seq=1, ack=0, flags=TcpFlags.SYN)
            client.send(Packet(src=IPv4Address("7.7.7.7"), dst=SERVER_IP, segment=syn))
        sim.run(until=1.0)
        assert server.tcp.segments_dropped_cpu > 0
