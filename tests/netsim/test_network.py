"""Unit tests for links, nodes, routing and UDP."""

from ipaddress import IPv4Address

import pytest

from repro.dnswire import Message, make_query
from repro.netsim import Link, Node, RoutingError, Simulator, SocketError


def two_hosts(sim, **link_kwargs):
    a = Node(sim, "a")
    b = Node(sim, "b")
    a.add_address("10.0.0.1")
    b.add_address("10.0.0.2")
    link = Link(sim, a, b, **link_kwargs)
    return a, b, link


class TestLink:
    def test_propagation_delay(self):
        sim = Simulator()
        a, b, _ = two_hosts(sim, delay=0.005)
        arrivals = []
        b.udp.bind(53, lambda payload, src, sport, dst: arrivals.append(sim.now))
        sock = a.udp.bind_ephemeral(lambda *args: None)
        sock.send(b"hello", IPv4Address("10.0.0.2"), 53)
        sim.run()
        assert arrivals == [pytest.approx(0.005)]

    def test_bandwidth_serialisation(self):
        sim = Simulator()
        a, b, _ = two_hosts(sim, delay=0.0, bandwidth=1000.0)  # 1000 B/s
        arrivals = []
        b.udp.bind(53, lambda payload, src, sport, dst: arrivals.append(sim.now))
        sock = a.udp.bind_ephemeral(lambda *args: None)
        # packet = 20 IP + 8 UDP + 72 payload = 100 bytes -> 0.1 s each
        sock.send(b"x" * 72, IPv4Address("10.0.0.2"), 53)
        sock.send(b"x" * 72, IPv4Address("10.0.0.2"), 53)
        sim.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_queue_overflow_drops(self):
        sim = Simulator()
        a, b, link = two_hosts(sim, bandwidth=1000.0, queue_limit=0.15)
        received = []
        b.udp.bind(53, lambda payload, src, sport, dst: received.append(payload))
        sock = a.udp.bind_ephemeral(lambda *args: None)
        for _ in range(10):
            sock.send(b"x" * 72, IPv4Address("10.0.0.2"), 53)  # 0.1 s each
        sim.run()
        sent, dropped, _ = link.stats(a)
        assert dropped > 0
        assert sent + dropped == 10
        assert len(received) == sent

    def test_lossy_link_drops_probabilistically(self):
        sim = Simulator(seed=7)
        a, b, link = two_hosts(sim, loss=0.5)
        received = []
        b.udp.bind(53, lambda payload, src, sport, dst: received.append(payload))
        sock = a.udp.bind_ephemeral(lambda *args: None)
        for _ in range(200):
            sock.send(b"p", IPv4Address("10.0.0.2"), 53)
        sim.run()
        assert 60 < len(received) < 140  # ~100 expected

    def test_loss_probability_validated(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, loss=1.5)

    def test_other_end_lookup(self):
        sim = Simulator()
        a, b, link = two_hosts(sim)
        assert link.other(a) is b
        assert link.other(b) is a
        with pytest.raises(ValueError):
            link.other(Node(sim, "c"))


class TestRouting:
    def build_chain(self, sim):
        """lrs -- router -- ans, with the router forwarding both ways."""
        lrs = Node(sim, "lrs")
        router = Node(sim, "router")
        ans = Node(sim, "ans")
        lrs.add_address("10.1.0.1")
        router.add_address("10.1.0.254")
        router.add_address("10.2.0.254")
        ans.add_address("10.2.0.1")
        left = Link(sim, lrs, router, delay=0.001)
        right = Link(sim, router, ans, delay=0.001)
        lrs.set_default_route(left)
        ans.set_default_route(right)
        router.add_route("10.1.0.0/16", left)
        router.add_route("10.2.0.0/16", right)
        return lrs, router, ans

    def test_transit_forwarding(self):
        sim = Simulator()
        lrs, router, ans = self.build_chain(sim)
        got = []
        ans.udp.bind(53, lambda payload, src, sport, dst: got.append((payload, src)))
        sock = lrs.udp.bind_ephemeral(lambda *args: None)
        sock.send(b"query", IPv4Address("10.2.0.1"), 53)
        sim.run()
        assert got == [(b"query", IPv4Address("10.1.0.1"))]
        assert router.packets_forwarded == 1

    def test_transit_filter_drop(self):
        sim = Simulator()
        lrs, router, ans = self.build_chain(sim)
        router.transit_filter = lambda packet, link: "drop"
        got = []
        ans.udp.bind(53, lambda payload, src, sport, dst: got.append(payload))
        lrs.udp.bind_ephemeral(lambda *args: None).send(b"x", IPv4Address("10.2.0.1"), 53)
        sim.run()
        assert got == []
        assert router.packets_dropped == 1

    def test_transit_filter_deliver_hijacks_packet(self):
        sim = Simulator()
        lrs, router, ans = self.build_chain(sim)
        router.transit_filter = lambda packet, link: "deliver"
        hijacked = []
        router.udp.bind(53, lambda payload, src, sport, dst: hijacked.append(dst))
        lrs.udp.bind_ephemeral(lambda *args: None).send(b"x", IPv4Address("10.2.0.1"), 53)
        sim.run()
        # delivered locally even though dst is the ANS address
        assert hijacked == [IPv4Address("10.2.0.1")]

    def test_intercept_subnet(self):
        sim = Simulator()
        lrs, router, ans = self.build_chain(sim)
        router.intercept("10.99.0.0/24")
        got = []
        router.udp.bind(53, lambda payload, src, sport, dst: got.append(dst))
        lrs.udp.bind_ephemeral(lambda *args: None).send(b"x", IPv4Address("10.99.0.7"), 53)
        sim.run()
        assert got == [IPv4Address("10.99.0.7")]

    def test_no_route_drops(self):
        sim = Simulator()
        lrs, router, ans = self.build_chain(sim)
        router.routes = []  # strip routing table; router is multi-homed
        lrs.udp.bind_ephemeral(lambda *args: None).send(b"x", IPv4Address("10.2.0.1"), 53)
        sim.run()
        assert router.packets_dropped == 1

    def test_send_without_route_raises(self):
        sim = Simulator()
        lonely = Node(sim, "lonely")
        lonely.add_address("10.0.0.9")
        with pytest.raises(RoutingError):
            lonely.udp.bind_ephemeral(lambda *args: None).send(b"x", IPv4Address("1.1.1.1"), 1)

    def test_longest_prefix_match(self):
        sim = Simulator()
        hub = Node(sim, "hub")
        hub.add_address("10.0.0.254")
        near = Node(sim, "near")
        near.add_address("10.0.1.1")
        far = Node(sim, "far")
        far.add_address("10.0.1.129")
        l1 = Link(sim, hub, near)
        l2 = Link(sim, hub, far)
        hub.add_route("10.0.1.0/24", l1)
        hub.add_route("10.0.1.128/25", l2)
        assert hub.route_for(IPv4Address("10.0.1.5")) is l1
        assert hub.route_for(IPv4Address("10.0.1.200")) is l2


class TestUdp:
    def test_spoofed_source_goes_unchecked(self):
        """The core vulnerability: UDP src is whatever the sender claims."""
        sim = Simulator()
        a, b, _ = two_hosts(sim)
        seen = []
        b.udp.bind(53, lambda payload, src, sport, dst: seen.append(src))
        sock = a.udp.bind_ephemeral(lambda *args: None)
        sock.send(b"evil", IPv4Address("10.0.0.2"), 53, src=IPv4Address("8.8.8.8"))
        sim.run()
        assert seen == [IPv4Address("8.8.8.8")]

    def test_dns_message_payload_round_trip(self):
        sim = Simulator()
        a, b, _ = two_hosts(sim)
        seen = []
        b.udp.bind(53, lambda payload, src, sport, dst: seen.append(payload))
        a.udp.bind_ephemeral(lambda *args: None).send(
            make_query("www.foo.com", msg_id=5), IPv4Address("10.0.0.2"), 53
        )
        sim.run()
        assert isinstance(seen[0], Message)
        assert seen[0].header.msg_id == 5

    def test_double_bind_rejected(self):
        sim = Simulator()
        a, _, _ = two_hosts(sim)
        a.udp.bind(53, lambda *args: None)
        with pytest.raises(SocketError):
            a.udp.bind(53, lambda *args: None)

    def test_specific_bind_preferred_over_wildcard(self):
        sim = Simulator()
        a, b, _ = two_hosts(sim)
        b.add_address("10.0.0.3")
        hits = []
        b.udp.bind(53, lambda p, s, sp, d: hits.append("wildcard"))
        b.udp.bind(53, lambda p, s, sp, d: hits.append("specific"), ip=IPv4Address("10.0.0.3"))
        sock = a.udp.bind_ephemeral(lambda *args: None)
        sock.send(b"1", IPv4Address("10.0.0.3"), 53)
        sock.send(b"2", IPv4Address("10.0.0.2"), 53)
        sim.run()
        assert sorted(hits) == ["specific", "wildcard"]

    def test_unmatched_port_counted(self):
        sim = Simulator()
        a, b, _ = two_hosts(sim)
        a.udp.bind_ephemeral(lambda *args: None).send(b"x", IPv4Address("10.0.0.2"), 9999)
        sim.run()
        assert b.udp.datagrams_unmatched == 1

    def test_closed_socket_stops_receiving_and_sending(self):
        sim = Simulator()
        a, b, _ = two_hosts(sim)
        got = []
        sock_b = b.udp.bind(53, lambda p, s, sp, d: got.append(p))
        sock_b.close()
        sock_a = a.udp.bind_ephemeral(lambda *args: None)
        sock_a.send(b"x", IPv4Address("10.0.0.2"), 53)
        sim.run()
        assert got == []
        sock_a.close()
        with pytest.raises(SocketError):
            sock_a.send(b"x", IPv4Address("10.0.0.2"), 53)

    def test_reply_uses_observed_source(self):
        sim = Simulator()
        a, b, _ = two_hosts(sim)

        def echo(payload, src, sport, dst):
            server_sock.send(payload, src, sport)

        server_sock = b.udp.bind(53, echo)
        replies = []
        client = a.udp.bind_ephemeral(lambda p, s, sp, d: replies.append(p))
        client.send(b"ping", IPv4Address("10.0.0.2"), 53)
        sim.run()
        assert replies == [b"ping"]
