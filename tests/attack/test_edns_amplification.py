"""EDNS-boosted amplification: bigger reflections, same guard answer."""

from ipaddress import IPv4Address

import pytest

from repro.attack import ReflectionAttacker, VictimMeter
from repro.dns import AuthoritativeServer, Zone
from repro.dnswire import Name, ResourceRecord, RRClass, RRType, TXT, soa_record
from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed
from repro.guard import UnverifiedResponseLimiter


def huge_zone() -> Zone:
    """~1.5 KB of TXT data: only reachable over EDNS (or TCP)."""
    zone = Zone("foo.com.")
    zone.add(soa_record("foo.com."))
    big = Name.from_text("huge.foo.com")
    for _ in range(6):
        zone.add(ResourceRecord(big, RRType.TXT, RRClass.IN, 3600, TXT.single(b"x" * 240)))
    return zone


def run(guarded: bool, edns_payload: int | None):
    bed = GuardTestbed(
        ans="bind", zone_origin="foo.com.", guard_enabled=guarded,
        rl1=UnverifiedResponseLimiter(per_source_rate=50.0, per_source_burst=50.0)
        if guarded
        else None,
    )
    bed.ans.zones = [huge_zone()]
    attacker_node = bed.add_client("attacker")
    victim_node = bed.add_client("victim")
    meter = VictimMeter(victim_node)
    attacker = ReflectionAttacker(
        attacker_node, ANS_ADDRESS, victim_node.address,
        rate=1000.0, qname="huge.foo.com", qtype=RRType.TXT,
        edns_payload=edns_payload,
    )
    attacker.start()
    bed.run(0.5)
    attacker.stop()
    return meter.amplification_ratio(attacker)


class TestEdnsAmplification:
    def test_edns_raises_unguarded_amplification(self):
        classic = run(guarded=False, edns_payload=None)
        edns = run(guarded=False, edns_payload=4096)
        # classic caps at 512B responses (truncated); EDNS unlocks ~1.5KB
        assert classic < 8
        assert edns > 15
        assert edns > classic * 2

    def test_guard_bounds_edns_amplification_too(self):
        ratio = run(guarded=True, edns_payload=4096)
        assert ratio < 1.0
