"""Unit tests for the attack framework."""

from ipaddress import IPv4Address

import pytest

from repro.attack import (
    HopCountFilter,
    ReflectionAttacker,
    SpoofingAttacker,
    VictimMeter,
    ZombieFlood,
    infer_hop_count,
    random_source,
)
from repro.dnswire import extract_cookie
from repro.netsim import Link, Node, Simulator, UdpDatagram

TARGET = IPv4Address("203.0.113.53")


def attacker_and_sink(seed=0):
    sim = Simulator(seed=seed)
    attacker = Node(sim, "attacker")
    attacker.add_address("10.9.0.1")
    sink = Node(sim, "sink")
    sink.add_address(TARGET)
    Link(sim, attacker, sink, delay=0.0001)
    return sim, attacker, sink


class TestSpoofingAttacker:
    def test_rate_is_respected(self):
        sim, attacker_node, sink = attacker_and_sink()
        received = []
        sink.udp.bind(53, lambda p, s, sp, d: received.append(s))
        attack = SpoofingAttacker(attacker_node, TARGET, rate=10_000)
        attack.start()
        sim.run(until=0.5)
        attack.stop()
        sim.run(until=0.6)  # drain in-flight packets
        assert attack.packets_sent == pytest.approx(5000, rel=0.05)
        assert len(received) == attack.packets_sent

    def test_sources_are_spoofed_and_diverse(self):
        sim, attacker_node, sink = attacker_and_sink()
        sources = set()
        sink.udp.bind(53, lambda p, s, sp, d: sources.add(s))
        attack = SpoofingAttacker(attacker_node, TARGET, rate=20_000)
        attack.start()
        sim.run(until=0.1)
        attack.stop()
        assert len(sources) > 1000
        assert attacker_node.address not in sources

    def test_fixed_source_pins_every_packet(self):
        sim, attacker_node, sink = attacker_and_sink()
        victim = IPv4Address("198.51.100.99")
        sources = set()
        sink.udp.bind(53, lambda p, s, sp, d: sources.add(s))
        attack = SpoofingAttacker(attacker_node, TARGET, rate=5_000, fixed_source=victim)
        attack.start()
        sim.run(until=0.05)
        attack.stop()
        assert sources == {victim}

    def test_invalid_cookie_option(self):
        sim, attacker_node, sink = attacker_and_sink()
        payloads = []
        sink.udp.bind(53, lambda p, s, sp, d: payloads.append(p))
        attack = SpoofingAttacker(
            attacker_node, TARGET, rate=5_000, carry_invalid_cookie=True
        )
        attack.start()
        sim.run(until=0.01)
        attack.stop()
        assert payloads
        assert all(extract_cookie(p) is not None for p in payloads)

    def test_invalid_rate_rejected(self):
        sim, attacker_node, _ = attacker_and_sink()
        with pytest.raises(ValueError):
            SpoofingAttacker(attacker_node, TARGET, rate=0)

    def test_random_source_avoids_reserved_zero_net(self):
        import random

        rng = random.Random(1)
        for _ in range(1000):
            assert int(random_source(rng)) >= 0x01000000


class TestReflectionAttacker:
    def test_victim_meter_counts_reflected_traffic(self):
        sim = Simulator()
        attacker_node = Node(sim, "attacker")
        attacker_node.add_address("10.9.0.1")
        victim_node = Node(sim, "victim")
        victim_node.add_address("10.8.0.1")
        server = Node(sim, "server")
        server.add_address(TARGET)
        hub = Node(sim, "hub")
        hub.add_address("10.255.0.1")
        for node, ip in ((attacker_node, "10.9.0.1"), (victim_node, "10.8.0.1"),
                         (server, str(TARGET))):
            link = Link(sim, node, hub, delay=0.0001)
            node.set_default_route(link)
            hub.add_route(f"{ip}/32", link)

        # the server echoes every query back (a crude reflector)
        def echo(payload, src, sport, dst):
            server_sock.send(payload, src, sport, src=dst)

        server_sock = server.udp.bind(53, echo)
        meter = VictimMeter(victim_node)
        attack = ReflectionAttacker(
            attacker_node, TARGET, victim_node.address, rate=1_000
        )
        attack.start()
        sim.run(until=0.2)
        attack.stop()
        assert meter.packets_received == pytest.approx(attack.packets_sent, abs=2)
        assert meter.bytes_received > 0
        assert meter.amplification_ratio(attack) == pytest.approx(1.0, rel=0.05)


class TestZombieFlood:
    def test_acquires_cookie_then_floods(self):
        from repro.experiments.testbed import ANS_ADDRESS, GuardTestbed

        bed = GuardTestbed(ans="simulator", ans_mode="answer")
        zombie_node = bed.add_client("zombie")
        zombie = ZombieFlood(zombie_node, ANS_ADDRESS, rate=20_000)
        zombie.start()
        bed.run(0.2)
        zombie.stop()
        assert zombie.cookie is not None
        assert zombie.packets_sent > 1000
        # with the limiters open, the flood's valid cookies all verify
        assert bed.guard.valid_cookies >= zombie.packets_sent * 0.9


class TestHopCountFilter:
    def test_infer_common_initial_ttls(self):
        assert infer_hop_count(64 - 2) == 2
        assert infer_hop_count(128 - 17) == 17
        assert infer_hop_count(255 - 30) == 30

    def test_inference_ambiguity_between_60_and_64(self):
        # a sender 10 hops away using initial TTL 64 looks like 6 hops from
        # an initial TTL of 60 — HCF's inherent blind spot; the filter only
        # needs learn/check consistency, which holds
        assert infer_hop_count(64 - 10) == 6

    def test_learning_then_filtering(self):
        hcf = HopCountFilter()
        client = IPv4Address("10.1.0.1")
        hcf.learn(client, 64 - 12)
        hcf.filtering = True
        assert hcf.check(client, 64 - 12)
        assert not hcf.check(client, 64 - 3)  # attacker at 3 hops

    def test_unknown_sources_pass(self):
        hcf = HopCountFilter()
        hcf.filtering = True
        assert hcf.check(IPv4Address("10.2.0.1"), 50)
        assert hcf.unknown_passed == 1

    def test_tolerance_window(self):
        hcf = HopCountFilter(tolerance=2)
        client = IPv4Address("10.1.0.1")
        hcf.learn(client, 64 - 12)
        hcf.filtering = True
        assert hcf.check(client, 64 - 14)
        assert not hcf.check(client, 64 - 16)

    def test_false_negative_rate(self):
        hcf = HopCountFilter()
        # initial TTL 128 keeps the inference unambiguous for these hops
        for i, hops in enumerate((10, 10, 12, 14)):
            hcf.learn(IPv4Address(0x0A000000 + i), 128 - hops)
        assert hcf.false_negative_rate(10) == pytest.approx(0.5)
        assert hcf.false_negative_rate(12) == pytest.approx(0.25)
        assert hcf.false_negative_rate(30) == 0.0
