PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test sanitize

# the CI entrypoint: determinism lint + tier-1 tests
check: lint test

lint:
	$(PYTHON) -m repro.analysis --flow --races --perf --memory --layers --baseline scripts/flow_baseline.json --baseline scripts/perf_baseline.json --baseline scripts/memory_baseline.json --fail-on warning src
	$(PYTHON) -m repro.analysis --rules-md-check README.md

test:
	$(PYTHON) -m pytest -x -q

# dual-run trace-hash comparison of a representative experiment (slow ones
# are exercised manually: `python -m repro fig5 --fast --sanitize`)
sanitize:
	$(PYTHON) -m repro table2 --sanitize
	$(PYTHON) -m repro table2 --sanitize --seed 7
