"""Figure 6: guard throughput and CPU under spoofed attack (modified DNS).

Paper setup (§IV.E): one legitimate LRS that already holds a valid cookie
saturates the ANS simulator; a spoofing attacker sweeps 0-250K req/s.

Expected shapes:

* protection disabled — legitimate throughput decays roughly linearly,
  reaching ~0 near the ANS capacity (110K) because attack requests steal
  ANS CPU and each legitimate loss stalls its loop for 10 ms;
* protection enabled — throughput holds ≈110K until the *guard's* CPU
  saturates (paper ≈200K attack), then degrades gracefully to ≈80K at
  250K attack;
* guard CPU (enabled) rises ~linearly to 100%; disabled it rises more
  slowly (forwarding is cheaper than checking), the 15-25% gap being the
  spoof-detection overhead.
"""

from __future__ import annotations

import dataclasses

from ..dns import LrsSimulator
from ..attack import SpoofingAttacker
from .testbed import ANS_ADDRESS, GuardTestbed

#: Attack rates swept in the paper's Figure 6 (requests/sec).
DEFAULT_ATTACK_RATES = (0, 50_000, 100_000, 150_000, 200_000, 250_000)


@dataclasses.dataclass(slots=True)
class Fig6Point:
    attack_rate: float
    protection: bool
    legit_throughput: float
    guard_cpu: float
    ans_cpu: float


def run_point(
    attack_rate: float,
    protection: bool,
    *,
    seed: int = 0,
    warmup: float = 0.25,
    duration: float = 0.3,
    concurrency: int = 192,
) -> Fig6Point:
    """One (attack rate, protection) sample of Figure 6."""
    bed = GuardTestbed(
        seed=seed, ans="simulator", ans_mode="answer", guard_enabled=protection
    )
    legit_node = bed.add_client("legit", via_local_guard=True)
    lrs = LrsSimulator(legit_node, ANS_ADDRESS, workload="plain", concurrency=concurrency)
    attacker_node = bed.add_client("attacker")
    attacker = None
    if attack_rate > 0:
        # §IV.E: the attacker "spoofs requests and does not have the right
        # cookie" — its forged cookies fail verification and drop cheaply
        attacker = SpoofingAttacker(
            attacker_node, ANS_ADDRESS, rate=attack_rate, carry_invalid_cookie=True
        )
        attacker.start()
    lrs.start()
    bed.run(warmup)
    lrs.stats.begin_window(bed.sim.now)
    guard_busy0 = bed.guard_node.cpu.completed_busy_seconds()
    ans_busy0 = bed.ans_node.cpu.completed_busy_seconds()
    t0 = bed.sim.now
    bed.run(duration)
    legit = lrs.stats.throughput(bed.sim.now)
    guard_cpu = bed.guard_node.cpu.utilization(guard_busy0, t0)
    ans_cpu = bed.ans_node.cpu.utilization(ans_busy0, t0)
    lrs.stop()
    if attacker is not None:
        attacker.stop()
    return Fig6Point(attack_rate, protection, legit, guard_cpu, ans_cpu)


def run_hybrid_fig6_point(
    attack_rate: float, protection: bool, *, seed: int = 0, fast: bool = False
) -> Fig6Point:
    """One Figure 6 sample via the farm's hybrid fluid/packet mode.

    The saturating legitimate population runs as a fluid of 10⁶ modeled
    stub clients instead of one high-concurrency packet loop; the curves
    land on the same axes, a few thousand events per point.
    """
    from ..farm.hybrid import run_hybrid_point

    kwargs = {"warmup": 0.1, "duration": 0.2} if fast else {}
    point = run_hybrid_point(
        attack_rate, protection, seed=seed, clients=1_000_000, **kwargs
    )
    return Fig6Point(
        attack_rate=point.attack_rate,
        protection=point.protection,
        legit_throughput=point.fluid_served_rate,
        guard_cpu=point.guard_cpu,
        ans_cpu=point.ans_cpu,
    )


def run_fig6(
    attack_rates=DEFAULT_ATTACK_RATES,
    *,
    seed: int = 0,
    fast: bool = False,
    hybrid: bool = False,
) -> list[Fig6Point]:
    kwargs = {"warmup": 0.15, "duration": 0.2, "concurrency": 128} if fast else {}
    points = []
    for protection in (True, False):
        for rate in attack_rates:
            if hybrid:
                points.append(
                    run_hybrid_fig6_point(rate, protection, seed=seed, fast=fast)
                )
            else:
                points.append(run_point(rate, protection, seed=seed, **kwargs))
    return points


def format_fig6(points: list[Fig6Point]) -> str:
    lines = [
        "Figure 6: legitimate throughput and guard CPU vs attack rate (modified DNS)",
        f"{'attack (K/s)':>12} {'protection':>11} {'legit (K/s)':>12} "
        f"{'guard CPU %':>12} {'ANS CPU %':>10}",
    ]
    for p in sorted(points, key=lambda p: (not p.protection, p.attack_rate)):
        lines.append(
            f"{p.attack_rate / 1000:>12.0f} {'on' if p.protection else 'off':>11} "
            f"{p.legit_throughput / 1000:>12.1f} {p.guard_cpu * 100:>12.0f} "
            f"{p.ans_cpu * 100:>10.0f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_fig6(run_fig6()))
