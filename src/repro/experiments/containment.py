"""Containment timeline: how fast the guard contains a sudden attack.

The paper's deployment claim (§I): the guard "can even be deployed only
when a DoS attack arises and contains the DoS attack without lengthy
training or tuning."  This extension experiment measures that statement as
a time series: a legitimate workload runs; a 200K req/s spoofed flood
switches on mid-run; the guard's activation threshold trips within one
rate-estimator window and legitimate throughput recovers to its pre-attack
level while the flood is still running.
"""

from __future__ import annotations

import dataclasses

from ..attack import SpoofingAttacker
from ..dns import LrsSimulator
from ..metrics import CpuSeries, Sample, ThroughputSeries
from .testbed import ANS_ADDRESS, GuardTestbed


@dataclasses.dataclass(slots=True)
class ContainmentResult:
    """Time series around an attack that starts at ``attack_start``."""

    attack_start: float
    attack_rate: float
    threshold: float
    throughput: list[Sample]
    ans_cpu: list[Sample]
    baseline_throughput: float
    recovery_time: float | None  # seconds after attack start, None if never

    @property
    def contained(self) -> bool:
        return self.recovery_time is not None


def run_containment(
    *,
    attack_rate: float = 200_000.0,
    threshold: float = 120_000.0,
    seed: int = 0,
    sample_interval: float = 0.05,
    baseline_duration: float = 0.5,
    attack_duration: float = 1.0,
) -> ContainmentResult:
    """Run the timeline and find the post-attack recovery point."""
    bed = GuardTestbed(
        seed=seed,
        ans="simulator",
        ans_mode="answer",
        activation_threshold=threshold,
    )
    legit_node = bed.add_client("legit", via_local_guard=True)
    lrs = LrsSimulator(legit_node, ANS_ADDRESS, workload="plain", concurrency=128)
    attacker_node = bed.add_client("attacker")
    attacker = SpoofingAttacker(
        attacker_node, ANS_ADDRESS, rate=attack_rate, carry_invalid_cookie=True
    )

    throughput = ThroughputSeries(bed.sim, lrs.stats, interval=sample_interval)
    ans_cpu = CpuSeries(bed.ans_node, interval=sample_interval)
    lrs.start()
    throughput.start()
    ans_cpu.start()

    bed.run(baseline_duration)
    attack_start = bed.sim.now
    attacker.start()
    bed.run(attack_duration)
    attacker.stop()
    lrs.stop()
    throughput.stop()
    ans_cpu.stop()

    baseline_samples = [s.value for s in throughput.samples if s.time <= attack_start]
    baseline = sum(baseline_samples) / len(baseline_samples) if baseline_samples else 0.0

    recovery_time = None
    for sample in throughput.samples:
        if sample.time <= attack_start + sample_interval:
            continue
        if sample.value >= 0.9 * baseline:
            recovery_time = sample.time - attack_start
            break

    return ContainmentResult(
        attack_start=attack_start,
        attack_rate=attack_rate,
        threshold=threshold,
        throughput=throughput.samples,
        ans_cpu=ans_cpu.samples,
        baseline_throughput=baseline,
        recovery_time=recovery_time,
    )


def format_containment(result: ContainmentResult) -> str:
    lines = [
        "Containment timeline: spoofed flood starts at "
        f"t={result.attack_start:.2f}s ({result.attack_rate / 1000:.0f}K req/s, "
        f"threshold {result.threshold / 1000:.0f}K)",
        f"{'t (s)':>8} {'legit (K/s)':>12} {'ANS CPU %':>10}",
    ]
    cpu_by_time = {s.time: s.value for s in result.ans_cpu}
    for sample in result.throughput:
        marker = "  <- attack starts" if abs(
            sample.time - result.attack_start - 0.05
        ) < 1e-9 else ""
        cpu = cpu_by_time.get(sample.time)
        cpu_text = f"{cpu * 100:>10.0f}" if cpu is not None else f"{'':>10}"
        lines.append(
            f"{sample.time:>8.2f} {sample.value / 1000:>12.1f} {cpu_text}{marker}"
        )
    if result.contained:
        lines.append(
            f"legitimate throughput recovered to >=90% of baseline "
            f"{result.recovery_time * 1000:.0f} ms after the attack began"
        )
    else:
        lines.append("legitimate throughput never recovered (NOT contained)")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_containment(run_containment()))
