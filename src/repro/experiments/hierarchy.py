"""A realistic guarded DNS hierarchy: root, com, foo.com and a real resolver.

Unlike :class:`~repro.experiments.testbed.GuardTestbed` (which pairs load
generators with a single protected server for throughput work), this builds
the *full* name-resolution picture of the paper's Figure 1: a three-level
delegation chain served by real authoritative servers, resolved by the real
caching iterative resolver, with DNS guards optionally in front of the root
(the NS-name referral scheme) and/or the leaf (the fabricated-NS/IP
scheme).  Used by the transparency integration tests and the cookie-storage
measurements of Table I.
"""

from __future__ import annotations

from ipaddress import IPv4Address

from ..dns import AuthoritativeServer, DnsCache, LocalRecursiveServer, Zone
from ..dnswire import Name, RRType, soa_record
from ..guard import CookieFactory, RemoteDnsGuard, random_key
from ..netsim import Link, Node, Simulator

ROOT_IP = IPv4Address("198.41.0.4")
COM_IP = IPv4Address("192.5.6.30")
FOO_IP = IPv4Address("203.0.113.53")
LRS_IP = IPv4Address("10.0.0.53")
WWW_IP = IPv4Address("198.51.100.80")
FOO_COOKIE_SUBNET = "198.18.0.0/24"


class GuardedHierarchy:
    """root (optionally guarded), com, foo.com (optionally guarded) + LRS."""

    def __init__(
        self,
        *,
        guard_root: bool = True,
        guard_foo: bool = False,
        seed: int = 0,
        link_delay: float = 0.0002,
        extra_names: int = 0,
    ):
        """``extra_names`` adds ``hostN.foo.com`` records for storage and
        workload experiments."""
        self.sim = Simulator(seed=seed)
        self.hub = Node(self.sim, "hub")
        self.hub.add_address("10.255.255.1")
        self._delay = link_delay

        # plain servers and the resolver
        self.com_node = self._attach(Node(self.sim, "com"), COM_IP)
        self.foo_node = Node(self.sim, "foo")
        self.lrs_node = self._attach(Node(self.sim, "lrs"), LRS_IP)

        root_zone = Zone(".")
        root_zone.add(soa_record("."))
        root_zone.delegate("com.", "a.gtld-servers.net.", COM_IP)
        com_zone = Zone("com.")
        com_zone.add(soa_record("com."))
        com_zone.delegate("foo.com.", "ns1.foo.com.", FOO_IP)
        foo_zone = Zone("foo.com.")
        foo_zone.add(soa_record("foo.com."))
        foo_zone.add_a("www.foo.com.", WWW_IP)
        foo_zone.add_a("mail.foo.com.", "198.51.100.25")
        foo_zone.add_a("ns1.foo.com.", FOO_IP)
        for index in range(extra_names):
            foo_zone.add_a(f"host{index}.foo.com.", f"198.51.{index // 250}.{index % 250 + 1}")

        self.root_node = Node(self.sim, "root")
        self.root_guard = (
            self._guard_inline(self.root_node, ROOT_IP, origin=".", cookie_subnet=None)
            if guard_root
            else None
        )
        if not guard_root:
            self._attach(self.root_node, ROOT_IP)

        self.foo_guard = (
            self._guard_inline(
                self.foo_node, FOO_IP, origin="foo.com.", cookie_subnet=FOO_COOKIE_SUBNET
            )
            if guard_foo
            else None
        )
        if not guard_foo:
            self._attach(self.foo_node, FOO_IP)

        self.root = AuthoritativeServer(self.root_node, [root_zone])
        self.com = AuthoritativeServer(self.com_node, [com_zone])
        self.foo = AuthoritativeServer(self.foo_node, [foo_zone])
        self.lrs = LocalRecursiveServer(self.lrs_node, [ROOT_IP], timeout=1.0)

    # -- construction helpers ----------------------------------------------------

    def _attach(self, node: Node, ip: IPv4Address | str, delay: float | None = None) -> Node:
        node.add_address(ip)
        link = Link(self.sim, node, self.hub, delay=delay or self._delay)
        node.set_default_route(link)
        self.hub.add_route(f"{ip}/32", link)
        return node

    def _guard_inline(
        self, server_node: Node, server_ip: IPv4Address, *, origin: str,
        cookie_subnet: str | None,
    ) -> RemoteDnsGuard:
        """Insert a guard node between the hub and ``server_node``."""
        guard_node = Node(self.sim, f"guard-{origin}")
        guard_node.add_address(IPv4Address(int(server_ip) - 1))
        uplink = Link(self.sim, guard_node, self.hub, delay=self._delay)
        guard_node.set_default_route(uplink)
        self.hub.add_route(f"{server_ip}/32", uplink)
        if cookie_subnet is not None:
            self.hub.add_route(cookie_subnet, uplink)
        server_node.add_address(server_ip)
        inner = Link(self.sim, guard_node, server_node, delay=0.00001)
        guard_node.add_route(f"{server_ip}/32", inner)
        server_node.set_default_route(inner)
        return RemoteDnsGuard(
            guard_node,
            server_ip,
            origin=origin,
            cookie_factory=CookieFactory(random_key(self.sim.rng)),
            cookie_subnet=cookie_subnet,
            policy="dns",
        )

    # -- operation -----------------------------------------------------------------

    def resolve(self, name: str, qtype: int = RRType.A, run_for: float = 30.0):
        """Resolve synchronously on the virtual clock; returns the result."""
        results = []
        self.lrs.resolve(name, qtype, results.append)
        self.sim.run(until=self.sim.now + run_for)
        if not results:
            raise RuntimeError(f"resolution of {name} never completed")
        return results[0]

    # -- measurements ---------------------------------------------------------------

    def fabricated_cache_entries(self) -> int:
        """Resolver-cache entries referring to the guards' fabricated
        namespace — the 'Cookie Storage' column of Table I, measured.

        Counts both records *named* by a cookie label (the fabricated A
        records) and NS rrsets whose target is a cookie name.
        """
        from ..dnswire import NS

        def has_cookie_label(name: Name) -> bool:
            # case-insensitive: DNS-0x20 resolvers cache mixed-case names
            return any(label[:2].upper() == b"PR" for label in name.labels)

        count = 0
        for (name, rtype), entry in list(self.lrs.cache._entries.items()):
            if has_cookie_label(name):
                count += 1
                continue
            if rtype == RRType.NS and any(
                isinstance(rr.rdata, NS) and has_cookie_label(rr.rdata.target)
                for rr in entry.records
            ):
                count += 1
        return count
