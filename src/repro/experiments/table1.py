"""Table I: comparison among spoof detection schemes.

Most of Table I is structural (latency in RTTs, cookie storage, cookie
range, amplification, deployment).  Rather than restating the paper, this
runner *measures* each property from the implementation:

* worst/best latency in RTTs — counted from the Table II latency runs;
* cookie range — read off the cookie encodings;
* traffic amplification — measured from actual fabricated responses;
* deployment — which sides needed a guard module in the testbed builder.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address

from ..dnswire import Name, make_query, ZERO_COOKIE, attach_cookie, make_response
from ..guard import KEY_LENGTH, CookieFactory, fabricated_referral
from .calibration import WAN_RTT
from .table2 import measure_scheme


@dataclasses.dataclass(slots=True)
class Table1Row:
    scheme: str
    worst_latency_rtt: float
    best_latency_rtt: float
    cookie_range_bits: float
    amplification_bytes: int
    deployment: str


def _amplification_dns_based() -> int:
    """Measured response growth of a fabricated referral (message 2)."""
    query = make_query("www.foo.com", msg_id=1)
    # any fixed key: only wire sizes are measured, never cookie values
    factory = CookieFactory(bytes(KEY_LENGTH))
    reply = fabricated_referral(
        query, Name.root(), factory.label_cookie(IPv4Address("10.0.0.1"))
    )
    return reply.wire_size() - query.wire_size()


def _amplification_modified() -> int:
    """Cookie request vs grant size difference (must be zero)."""
    request = attach_cookie(make_query("www.foo.com", msg_id=1), ZERO_COOKIE)
    grant = make_response(request)
    factory = CookieFactory(bytes(KEY_LENGTH))
    attach_cookie(grant, factory.cookie(IPv4Address("10.0.0.1")))
    return grant.wire_size() - request.wire_size()


def measure_cookie_storage(names: int = 10, *, seed: int = 0) -> tuple[int, int]:
    """Table I's "Cookie Storage" row, measured at a real resolver.

    Returns fabricated-namespace cache entries after resolving ``names``
    distinct names under (a) a guarded root (NS-name scheme: one cookie NS
    per *zone*) and (b) a guarded leaf (fabricated scheme: one NS and one
    COOKIE2 A per *name* — the §III.B.3 duplication).
    """
    from .hierarchy import GuardedHierarchy

    ns_scheme = GuardedHierarchy(
        guard_root=True, guard_foo=False, seed=seed, extra_names=names
    )
    for index in range(names):
        ns_scheme.resolve(f"host{index}.foo.com")
    fab_scheme = GuardedHierarchy(
        guard_root=False, guard_foo=True, seed=seed, extra_names=names
    )
    for index in range(names):
        fab_scheme.resolve(f"host{index}.foo.com")
    return ns_scheme.fabricated_cache_entries(), fab_scheme.fabricated_cache_entries()


def run_table1(*, measure_latency: bool = True, seed: int = 0) -> list[Table1Row]:
    latencies: dict[str, tuple[float, float]] = {}
    if measure_latency:
        for scheme in ("ns_name", "fabricated", "tcp", "modified"):
            miss_ms, hit_ms = measure_scheme(scheme, seed=seed, iterations=8)
            latencies[scheme] = (miss_ms / 1000 / WAN_RTT, hit_ms / 1000 / WAN_RTT)
    else:
        latencies = {
            "ns_name": (2.0, 1.0),
            "fabricated": (3.0, 1.0),
            "tcp": (3.0, 3.0),
            "modified": (2.0, 1.0),
        }
    dns_amp = _amplification_dns_based()
    mod_amp = _amplification_modified()
    return [
        Table1Row("ns_name", *latencies["ns_name"], 32.0, dns_amp, "ANS side only"),
        Table1Row("fabricated", *latencies["fabricated"], 32.0 + 8.0, dns_amp,
                  "ANS side only"),
        Table1Row("tcp", *latencies["tcp"], 32.0, 0, "ANS side only"),
        Table1Row("modified", *latencies["modified"], 128.0, mod_amp,
                  "LRS side and ANS side"),
    ]


def format_table1(
    rows: list[Table1Row], storage: tuple[int, int] | None = None
) -> str:
    lines = [
        "Table I: comparison among spoof detection schemes",
        f"{'scheme':<12} {'worst RTT':>10} {'best RTT':>9} {'range bits':>11} "
        f"{'amp bytes':>10}  deployment",
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:<12} {row.worst_latency_rtt:>10.1f} {row.best_latency_rtt:>9.1f} "
            f"{row.cookie_range_bits:>11.0f} {row.amplification_bytes:>10d}  {row.deployment}"
        )
    if storage is not None:
        ns_entries, fab_entries = storage
        lines.append(
            f"cookie storage after 10 names: NS-name {ns_entries} cache entries "
            f"(per zone), fabricated {fab_entries} (2 per name)"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table1(run_table1(), storage=measure_cookie_storage()))
