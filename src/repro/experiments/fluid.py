"""Analytical (fluid) model of the guard's throughput and CPU curves.

Mirrors the paper's §IV.D back-of-envelope checks ("theoretically, their
throughput should be between 3/2 and 8/6 times ...").  Every prediction is
a closed-form function of :class:`repro.guard.GuardCosts` and the server
service rates, so the discrete-event results can be validated against them
(and vice versa) — see ``benchmarks/bench_fluid.py``.
"""

from __future__ import annotations

import dataclasses

from ..dns import ANS_SIMULATOR_COST
from ..guard import GuardCosts


@dataclasses.dataclass(frozen=True, slots=True)
class FluidModel:
    """Closed-form throughput/CPU predictions."""

    costs: GuardCosts = GuardCosts()
    ans_cost: float = ANS_SIMULATOR_COST

    # -- per-request guard costs per scheme and cache state -------------------

    def request_cost(self, scheme: str, cache_hit: bool) -> float:
        """Guard CPU-seconds consumed by one completed request."""
        c = self.costs
        hit = c.validate_and_forward + c.transform_response
        if scheme == "ns_name":
            if cache_hit:
                return hit
            return c.fabricate_response + hit
        if scheme == "fabricated":
            served = c.serve_cached_answer
            if cache_hit:
                return c.validate_and_forward + c.transform_response
            return (
                c.fabricate_response  # message 2
                + c.validate_and_forward  # messages 3 -> 4
                + (2 * c.per_packet + c.fabricate)  # message 5 -> 6 (COOKIE2)
                + served  # messages 7 -> 10 via the answer cache
            )
        if scheme == "modified":
            flow = c.validate_and_forward + c.forward  # query in, response back
            if cache_hit:
                return flow
            return c.fabricate_response + flow
        if scheme == "tcp":
            # ~11 proxied segments plus the UDP leg to the ANS
            return 11 * self.costs.tcp_segment_cost(50) + 2 * c.per_packet
        raise ValueError(f"unknown scheme {scheme!r}")

    # -- Table III ---------------------------------------------------------------

    def throughput(self, scheme: str, cache_hit: bool) -> float:
        """Saturated requests/sec: min(guard limit, ANS limit)."""
        guard_limit = 1.0 / self.request_cost(scheme, cache_hit)
        if scheme == "tcp":
            return guard_limit
        ans_limit = 1.0 / self.ans_cost
        return min(guard_limit, ans_limit)

    # -- Figure 6 -----------------------------------------------------------------

    def attack_drop_cost(self) -> float:
        return self.costs.drop_invalid

    def legit_throughput_under_attack(self, attack_rate: float) -> float:
        """Protected legitimate throughput at a given spoofed attack rate."""
        budget = 1.0 - attack_rate * self.attack_drop_cost()
        if budget <= 0:
            return 0.0
        guard_limit = budget / self.request_cost("modified", cache_hit=True)
        return min(guard_limit, 1.0 / self.ans_cost)

    def guard_saturation_attack_rate(self) -> float:
        """The attack rate where the guard's CPU first hits 100% while the
        ANS is saturated with legitimate traffic (Figure 6's knee)."""
        legit = 1.0 / self.ans_cost
        legit_cpu = legit * self.request_cost("modified", cache_hit=True)
        return max(0.0, (1.0 - legit_cpu) / self.attack_drop_cost())

    def unprotected_legit_throughput(self, attack_rate: float) -> float:
        """Without the guard, legitimate requests get the leftover ANS CPU."""
        capacity = 1.0 / self.ans_cost
        return max(0.0, capacity - attack_rate)

    # -- Hybrid fluid/packet mode (repro.farm.hybrid) -----------------------------
    #
    # These closed forms are the calibration reference for the farm's
    # hybrid client mode: a hybrid cell's measured guard/ANS utilisation
    # and bulk served rate must stay within a stated tolerance of them
    # (cross-validated in tests/farm/test_hybrid.py).

    def hybrid_guard_cpu(
        self, legit_rate: float, attack_rate: float, *, protection: bool = True
    ) -> float:
        """Expected guard utilisation under mixed fluid load."""
        if protection:
            load = legit_rate * self.request_cost(
                "modified", cache_hit=True
            ) + attack_rate * self.attack_drop_cost()
        else:
            load = (legit_rate + attack_rate) * self.costs.forward
        return min(1.0, max(0.0, load))

    def hybrid_ans_cpu(
        self, legit_served_rate: float, attack_rate: float, *, protection: bool = True
    ) -> float:
        """Expected ANS utilisation given the bulk load actually served."""
        rate = legit_served_rate + (0.0 if protection else attack_rate)
        return min(1.0, max(0.0, rate * self.ans_cost))

    def hybrid_served_rate(
        self, legit_rate: float, attack_rate: float, *, protection: bool = True
    ) -> float:
        """Expected bulk legitimate served rate under a spoofed flood."""
        if protection:
            budget = 1.0 - attack_rate * self.attack_drop_cost()
            if budget <= 0:
                return 0.0
            guard_limit = budget / self.request_cost("modified", cache_hit=True)
            return min(legit_rate, guard_limit, 1.0 / self.ans_cost)
        # unprotected: the guard merely forwards, and the flood competes
        # for the ANS's CPU at full service cost
        ans_left = max(0.0, 1.0 / self.ans_cost - attack_rate)
        return min(legit_rate, ans_left)

    # -- Figure 7 ------------------------------------------------------------------

    def tcp_proxy_throughput(self, concurrency: int) -> float:
        per_request = 11 * self.costs.tcp_segment_cost(concurrency) + 2 * self.costs.per_packet
        return 1.0 / per_request

    def tcp_proxy_under_attack(self, attack_rate: float, concurrency: int = 50) -> float:
        budget = 1.0 - attack_rate * self.attack_drop_cost()
        if budget <= 0:
            return 0.0
        return budget * self.tcp_proxy_throughput(concurrency)


def format_predictions(model: FluidModel | None = None) -> str:
    model = model or FluidModel()
    lines = ["Fluid-model predictions (requests/sec)"]
    for scheme in ("ns_name", "fabricated", "tcp", "modified"):
        miss = model.throughput(scheme, cache_hit=False)
        hit = model.throughput(scheme, cache_hit=True)
        lines.append(f"  {scheme:<12} miss {miss / 1000:>7.1f}K   hit {hit / 1000:>7.1f}K")
    lines.append(
        f"  guard saturates at attack rate "
        f"{model.guard_saturation_attack_rate() / 1000:.0f}K req/s"
    )
    lines.append(
        f"  legit throughput at 250K attack: "
        f"{model.legit_throughput_under_attack(250_000) / 1000:.1f}K req/s"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_predictions())
