"""Figure 5: a BIND-based ANS under attack, with and without the guard.

Paper setup (§IV.C): BIND ANS (14K req/s UDP capacity), answer TTL 0, two
legitimate LRSs at 1K req/s each (the first using UDP cookies, the second
redirected to TCP whose LRS-side capacity is only ~0.5K req/s), and an
attacker sweeping 0-16K req/s.  The guard's spoof detection activates when
the offered rate crosses the 14K threshold.

Expected shapes:

* protection disabled — legitimate throughput collapses once the attack
  rate passes ~12K (total load > 14K capacity) because BIND drops
  indiscriminately and the LRS's 2-second retry timer amplifies every loss;
  ANS CPU climbs to 100%;
* protection enabled — once the threshold trips, the guard filters all
  attack traffic: ANS CPU falls and legitimate throughput holds at
  ~1.5K req/s (1K UDP + ~0.5K TCP-capped).
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address

from ..attack import SpoofingAttacker
from ..dns import LrsSimulator
from .calibration import FIG5_ACTIVATION_THRESHOLD
from .testbed import ANS_ADDRESS, GuardTestbed

DEFAULT_ATTACK_RATES = (0, 4_000, 8_000, 12_000, 14_000, 16_000)

LRS1_IP = IPv4Address("10.0.1.1")
LRS2_IP = IPv4Address("10.0.1.2")

#: LRS2's TCP stack costs ~0.2 ms/segment, capping it near the paper's
#: observed 0.5K req/s DNS-over-TCP client throughput.
LRS2_TCP_SEGMENT_COST = 2.0e-4


@dataclasses.dataclass(slots=True)
class Fig5Point:
    attack_rate: float
    protection: bool
    legit_throughput: float
    ans_cpu: float


def run_point(
    attack_rate: float,
    protection: bool,
    *,
    seed: int = 0,
    warmup: float = 4.0,
    duration: float = 4.0,
) -> Fig5Point:
    def policy(source: IPv4Address) -> str:
        return "tcp" if source == LRS2_IP else "dns"

    bed = GuardTestbed(
        seed=seed,
        ans="bind",
        answer_ttl=0,
        zone_origin="foo.com.",
        guard_enabled=protection,
        guard_policy=policy,
        activation_threshold=FIG5_ACTIVATION_THRESHOLD if protection else None,
    )
    lrs1_node = bed.add_client("lrs1", address=LRS1_IP)
    lrs2_node = bed.add_client("lrs2", address=LRS2_IP)
    lrs2_node.tcp.segment_cost_fn = lambda stack: LRS2_TCP_SEGMENT_COST
    # BIND answers www.foo.com non-referentially -> fabricated NS/IP cookies
    lrs1 = LrsSimulator(
        lrs1_node, ANS_ADDRESS, workload="nonreferral",
        concurrency=64, timeout=2.0, target_rate=1000.0,
    )
    lrs2 = LrsSimulator(
        lrs2_node, ANS_ADDRESS, workload="plain",
        concurrency=64, timeout=2.0, target_rate=1000.0,
    )
    attacker = None
    if attack_rate > 0:
        attacker_node = bed.add_client("attacker")
        attacker = SpoofingAttacker(attacker_node, ANS_ADDRESS, rate=attack_rate)
        attacker.start()
    lrs1.start()
    lrs2.start()
    bed.run(warmup)
    lrs1.stats.begin_window(bed.sim.now)
    lrs2.stats.begin_window(bed.sim.now)
    busy0, t0 = bed.ans_node.cpu.completed_busy_seconds(), bed.sim.now
    bed.run(duration)
    legit = lrs1.stats.throughput(bed.sim.now) + lrs2.stats.throughput(bed.sim.now)
    ans_cpu = bed.ans_node.cpu.utilization(busy0, t0)
    for gen in (lrs1, lrs2):
        gen.stop()
    if attacker is not None:
        attacker.stop()
    return Fig5Point(attack_rate, protection, legit, ans_cpu)


def run_fig5(
    attack_rates=DEFAULT_ATTACK_RATES, *, seed: int = 0, fast: bool = False
) -> list[Fig5Point]:
    kwargs = {"warmup": 2.5, "duration": 2.5} if fast else {}
    points = []
    for protection in (True, False):
        for rate in attack_rates:
            points.append(run_point(rate, protection, seed=seed, **kwargs))
    return points


def format_fig5(points: list[Fig5Point]) -> str:
    lines = [
        "Figure 5: BIND throughput and CPU vs attack rate (threshold 14K req/s)",
        f"{'attack (K/s)':>12} {'protection':>11} {'legit (req/s)':>14} {'ANS CPU %':>10}",
    ]
    for p in sorted(points, key=lambda p: (not p.protection, p.attack_rate)):
        lines.append(
            f"{p.attack_rate / 1000:>12.0f} {'on' if p.protection else 'off':>11} "
            f"{p.legit_throughput:>14.0f} {p.ans_cpu * 100:>10.0f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_fig5(run_fig5()))
