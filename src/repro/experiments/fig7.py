"""Figure 7: the kernel-level TCP proxy's throughput.

(a) Throughput vs number of concurrent DNS-over-TCP requests: ~22K req/s
    around 20 concurrent, degrading to ~11K near 6000 because every proxied
    segment pays a per-open-connection management scan.
(b) Throughput vs UDP attack rate at 50 concurrent requests: the UDP flood
    competes for the guard's CPU, so TCP throughput falls roughly linearly
    to ~10K req/s at 250K attack.  Plain UDP queries are dropped (after the
    cookie checks that prove them plain) in this configuration.
"""

from __future__ import annotations

import dataclasses

from ..attack import SpoofingAttacker
from ..dns import TcpLoadClient
from .testbed import ANS_ADDRESS, GuardTestbed

DEFAULT_CONCURRENCIES = (1, 10, 20, 50, 100, 500, 1000, 3000, 6000)
DEFAULT_ATTACK_RATES = (0, 50_000, 100_000, 150_000, 200_000, 250_000)


@dataclasses.dataclass(slots=True)
class Fig7aPoint:
    concurrency: int
    throughput: float


@dataclasses.dataclass(slots=True)
class Fig7bPoint:
    attack_rate: float
    throughput: float


def run_fig7a_point(
    concurrency: int, *, seed: int = 0, warmup: float = 0.3, duration: float = 0.4
) -> Fig7aPoint:
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer", guard_policy="tcp")
    client = bed.add_client("lrs")
    tcp = TcpLoadClient(client, ANS_ADDRESS, concurrency=concurrency)
    tcp.start()
    (rate,) = bed.measure([tcp.stats], duration, warmup=warmup)
    tcp.stop()
    return Fig7aPoint(concurrency, rate)


def run_fig7b_point(
    attack_rate: float, *, seed: int = 0, warmup: float = 0.3, duration: float = 0.4
) -> Fig7bPoint:
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer", guard_policy="drop")
    client = bed.add_client("lrs")
    tcp = TcpLoadClient(client, ANS_ADDRESS, concurrency=50)
    attacker = None
    if attack_rate > 0:
        attacker_node = bed.add_client("attacker")
        attacker = SpoofingAttacker(attacker_node, ANS_ADDRESS, rate=attack_rate)
        attacker.start()
    tcp.start()
    (rate,) = bed.measure([tcp.stats], duration, warmup=warmup)
    tcp.stop()
    if attacker is not None:
        attacker.stop()
    return Fig7bPoint(attack_rate, rate)


def run_fig7(
    concurrencies=DEFAULT_CONCURRENCIES,
    attack_rates=DEFAULT_ATTACK_RATES,
    *,
    seed: int = 0,
    fast: bool = False,
) -> tuple[list[Fig7aPoint], list[Fig7bPoint]]:
    kwargs = {"warmup": 0.2, "duration": 0.25} if fast else {}
    series_a = [run_fig7a_point(c, seed=seed, **kwargs) for c in concurrencies]
    series_b = [run_fig7b_point(r, seed=seed, **kwargs) for r in attack_rates]
    return series_a, series_b


def format_fig7(series_a: list[Fig7aPoint], series_b: list[Fig7bPoint]) -> str:
    lines = ["Figure 7(a): TCP proxy throughput vs concurrent requests"]
    lines.append(f"{'concurrent':>11} {'throughput (K/s)':>17}")
    for p in series_a:
        lines.append(f"{p.concurrency:>11} {p.throughput / 1000:>17.1f}")
    lines.append("")
    lines.append("Figure 7(b): TCP proxy throughput vs UDP attack rate (50 concurrent)")
    lines.append(f"{'attack (K/s)':>13} {'throughput (K/s)':>17}")
    for p in series_b:
        lines.append(f"{p.attack_rate / 1000:>13.0f} {p.throughput / 1000:>17.1f}")
    return "\n".join(lines)


if __name__ == "__main__":
    series_a, series_b = run_fig7()
    print(format_fig7(series_a, series_b))
