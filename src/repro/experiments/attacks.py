"""§III.G attack-analysis micro-experiments.

Quantifies the claims of the attack analysis section:

* **amplification** — an unguarded ANS reflects large TXT answers toward a
  spoofed victim (the paper's ~10x); the guard caps reflection at its small
  fabricated referral, and Rate-Limiter1 clamps even that;
* **guessing** — spraying the COOKIE2 range succeeds for exactly 1/R_y of
  packets; guessed NS-label cookies succeed for ~2^-32;
* **zombie floods** — a host with a valid cookie is throttled to
  Rate-Limiter2's nominal per-host rate.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address

from ..attack import ReflectionAttacker, SpoofingAttacker, VictimMeter, ZombieFlood
from ..dns import AuthoritativeServer, Zone
from ..dnswire import Name, ResourceRecord, RRClass, RRType, TXT, soa_record
from ..guard import UnverifiedResponseLimiter, VerifiedRequestLimiter
from .testbed import ANS_ADDRESS, GuardTestbed


@dataclasses.dataclass(slots=True)
class AmplificationResult:
    guarded: bool
    attacker_bytes: int
    victim_bytes: int

    @property
    def ratio(self) -> float:
        return self.victim_bytes / self.attacker_bytes if self.attacker_bytes else 0.0


def _big_zone() -> Zone:
    """A zone whose TXT answer is ~9x the query — reflection bait.

    The answer is sized to stay just under the 512-byte UDP ceiling, i.e.
    the worst legally-amplifying classic-DNS response.
    """
    zone = Zone("foo.com.")
    zone.add(soa_record("foo.com."))
    zone.add_a("www.foo.com.", "198.51.100.80")
    big = Name.from_text("big.foo.com")
    for _ in range(3):
        zone.add(ResourceRecord(big, RRType.TXT, RRClass.IN, 3600, TXT.single(b"x" * 140)))
    return zone


def run_amplification(
    *, guarded: bool, rate: float = 2000.0, duration: float = 0.5, seed: int = 0,
    rl1: UnverifiedResponseLimiter | None = None,
) -> AmplificationResult:
    bed = GuardTestbed(
        seed=seed, ans="bind", zone_origin="foo.com.", guard_enabled=guarded, rl1=rl1
    )
    bed.ans.zones = [_big_zone()]
    attacker_node = bed.add_client("attacker")
    victim_node = bed.add_client("victim")
    meter = VictimMeter(victim_node)
    attacker = ReflectionAttacker(
        attacker_node, ANS_ADDRESS, victim_node.address,
        rate=rate, qname="big.foo.com", qtype=RRType.TXT,
    )
    attacker.start()
    bed.run(duration)
    attacker.stop()
    return AmplificationResult(guarded, attacker.bytes_sent, meter.bytes_received)


@dataclasses.dataclass(slots=True)
class GuessingResult:
    packets_sent: int
    cookies_accepted: int
    expected_success_rate: float

    @property
    def observed_success_rate(self) -> float:
        return self.cookies_accepted / self.packets_sent if self.packets_sent else 0.0


def run_cookie2_guessing(
    *, packets: int = 2540, seed: int = 0
) -> GuessingResult:
    """Spray the whole COOKIE2 /24 repeatedly from a spoofed victim address."""
    from ..dnswire import make_query
    from ..netsim import DnsPayload, Packet, UdpDatagram

    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
    attacker_node = bed.add_client("attacker")
    victim = IPv4Address("10.0.0.10")
    r_y = bed.guard.cookie_host_range
    base = int(bed.guard.cookie_subnet.network_address)
    sent = 0
    for i in range(packets):
        target = IPv4Address(base + 1 + (i % r_y))
        packet = Packet(
            src=victim,
            dst=target,
            segment=UdpDatagram(43000, 53, DnsPayload(make_query("www.foo.com", msg_id=i & 0xFFFF))),
        )
        attacker_node.send(packet)
        sent += 1
    bed.run(1.0)
    return GuessingResult(sent, bed.guard.valid_cookies, 1.0 / r_y)


@dataclasses.dataclass(slots=True)
class StarvationResult:
    """Outcome of the §I bandwidth-starvation (reflection) attack."""

    guarded: bool
    attacker_bandwidth: float  # bytes/sec actually spent by the attacker
    victim_link_capacity: float  # bytes/sec
    legit_sent: int
    legit_delivered: int

    @property
    def legit_delivery_rate(self) -> float:
        return self.legit_delivered / self.legit_sent if self.legit_sent else 0.0


def run_bandwidth_starvation(
    *, guarded: bool, seed: int = 0, duration: float = 1.0
) -> StarvationResult:
    """§I: "an attacker can starve the bandwidth of its victims even if his
    bandwidth is 10 times smaller", by reflecting amplified responses.

    The victim sits behind a 1 Mb/s link; a legitimate peer sends it a
    steady trickle; the attacker reflects big TXT answers off the ANS with
    the victim's address forged.  Unguarded, the ~9x amplification fills the
    victim's downlink and the legitimate traffic drowns; behind the guard,
    the reflection never materialises.
    """
    bed = GuardTestbed(
        seed=seed, ans="bind", zone_origin="foo.com.", guard_enabled=guarded,
        rl1=UnverifiedResponseLimiter(per_source_rate=100.0, per_source_burst=100.0)
        if guarded
        else None,
    )
    bed.ans.zones = [_big_zone()]
    victim_capacity = 125_000.0  # 1 Mb/s in bytes/sec
    victim = bed.add_client("victim")
    victim_link = victim.links[0]
    victim_link.bandwidth = victim_capacity
    victim_link.queue_limit = 0.02

    attacker_node = bed.add_client("attacker")
    # the attacker spends ~25 KB/s — five times less than the victim's
    # 125 KB/s link — which the ~9x amplification turns into ~230 KB/s of
    # reflected responses, nearly twice the victim's downlink
    attacker = ReflectionAttacker(
        attacker_node, ANS_ADDRESS, victim.address,
        rate=450.0, qname="big.foo.com", qtype=RRType.TXT,
    )

    # a legitimate peer sends the victim a steady 250-byte datagram stream
    peer = bed.add_client("peer")
    delivered = [0]
    victim.udp.bind(7000, lambda p, s, sp, d: delivered.__setitem__(0, delivered[0] + 1))
    sent = [0]
    peer_sock = peer.udp.bind_ephemeral(lambda *a: None)

    def send_legit() -> None:
        peer_sock.send(b"x" * 250, victim.address, 7000)
        sent[0] += 1
        bed.sim.schedule(0.01, send_legit)  # 100 datagrams/sec = 25 KB/s

    bed.sim.schedule(0.0, send_legit)
    attacker.start()
    bed.run(duration)
    attacker.stop()
    return StarvationResult(
        guarded=guarded,
        attacker_bandwidth=attacker.bytes_sent / duration,
        victim_link_capacity=victim_capacity,
        legit_sent=sent[0],
        legit_delivered=delivered[0],
    )


@dataclasses.dataclass(slots=True)
class ProbingResult:
    """Outcome of the §III.G guess-then-probe attack on the COOKIE2 range."""

    true_y: int
    identified: list[int]
    rl2_enabled: bool

    @property
    def attacker_succeeded(self) -> bool:
        return self.identified == [self.true_y]


def run_probing_attack(*, rl2_enabled: bool, seed: int = 0) -> ProbingResult:
    """§III.G: flood each guessed COOKIE2 address while probing ANS health.

    The attacker sweeps every y in a small R_y, flooding the candidate
    address with requests spoofed from the victim while measuring the ANS's
    responsiveness with its *own* legitimate queries.  A correct guess lets
    the flood through and saturates the ANS — unless Rate-Limiter2 clamps
    the per-host (victim-address) rate, in which case every candidate looks
    identical and the probe learns nothing.
    """
    from ..attack import SpoofingAttacker
    from ..guard import VerifiedRequestLimiter

    rl2 = (
        VerifiedRequestLimiter(per_host_rate=500.0, per_host_burst=500.0)
        if rl2_enabled
        else None
    )
    bed = GuardTestbed(
        seed=seed,
        ans="simulator",
        ans_mode="answer",
        cookie_subnet="198.18.0.240/28",  # R_y = 14: a small, sweepable range
        rl2=rl2,
    )
    attacker_node = bed.add_client("attacker")
    victim = IPv4Address("10.0.0.200")
    bed.add_client("victim", address=victim)  # the impersonated host exists
    r_y = bed.guard.cookie_host_range
    true_y = bed.guard.cookies.ip_cookie(victim, r_y)
    base = int(bed.guard.cookie_subnet.network_address)

    # the probe: the attacker's own legitimate queries through the guard.
    # Cookie caching is off so every probe exercises a fresh exchange that
    # must reach the ANS — a cached answer would hide the server's health.
    from ..dns import LrsSimulator

    probe = LrsSimulator(
        attacker_node, ANS_ADDRESS, workload="nonreferral", timeout=0.005,
        cache_cookies=False, concurrency=2, target_rate=300.0,
    )
    probe.start()
    bed.run(0.05)  # reach steady state

    identified: list[int] = []
    for y in range(r_y):
        flood = SpoofingAttacker(
            attacker_node,
            IPv4Address(base + 1 + y),
            rate=200_000.0,
            fixed_source=victim,
            qname="flood.foo.com",  # not in the guard's answer cache
        )
        flood.start()
        bed.run(0.01)  # ramp
        timeouts_before = probe.stats.timeouts
        completed_before = probe.stats.completed
        bed.run(0.06)
        flood.stop()
        bed.run(0.01)  # drain
        window_timeouts = probe.stats.timeouts - timeouts_before
        window_completed = probe.stats.completed - completed_before
        total = window_timeouts + window_completed
        # a wrong guess never saturates the ANS, so any substantial probe
        # loss marks the candidate
        if total and window_timeouts / total > 0.25:
            identified.append(y)
    probe.stop()
    return ProbingResult(true_y, identified, rl2_enabled)


@dataclasses.dataclass(slots=True)
class ZombieResult:
    offered_rate: float
    admitted_rate: float
    limiter_rate: float


def run_zombie_flood(
    *, offered_rate: float = 50_000.0, limiter_rate: float = 500.0,
    duration: float = 1.0, seed: int = 0,
) -> ZombieResult:
    """A real-source flood with a valid cookie, against Rate-Limiter2."""
    rl2 = VerifiedRequestLimiter(per_host_rate=limiter_rate, per_host_burst=limiter_rate)
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer", rl2=rl2)
    zombie_node = bed.add_client("zombie")
    zombie = ZombieFlood(zombie_node, ANS_ADDRESS, rate=offered_rate)
    zombie.start()
    bed.run(0.1)  # cookie acquisition
    served0 = bed.ans.requests_served
    t0 = bed.sim.now
    bed.run(duration)
    admitted = (bed.ans.requests_served - served0) / (bed.sim.now - t0)
    zombie.stop()
    return ZombieResult(offered_rate, admitted, limiter_rate)


def format_attack_report(
    unguarded: AmplificationResult,
    guarded: AmplificationResult,
    guessing: GuessingResult,
    zombie: ZombieResult,
    probing_open: ProbingResult | None = None,
    probing_limited: ProbingResult | None = None,
) -> str:
    lines = [
        "Attack analysis (paper §III.G)",
        f"  amplification, no guard:   {unguarded.ratio:>5.2f}x "
        f"({unguarded.victim_bytes} B reflected)",
        f"  amplification, guarded:    {guarded.ratio:>5.2f}x "
        f"({guarded.victim_bytes} B reflected)",
        f"  COOKIE2 guessing: observed {guessing.observed_success_rate:.4%} "
        f"vs expected {guessing.expected_success_rate:.4%}",
        f"  zombie flood: offered {zombie.offered_rate:.0f} req/s, "
        f"ANS saw {zombie.admitted_rate:.0f} req/s "
        f"(Rate-Limiter2 at {zombie.limiter_rate:.0f}/s)",
    ]
    if probing_open is not None and probing_limited is not None:
        lines.append(
            f"  probe-while-flooding: without RL2 the attacker pinpoints "
            f"y={probing_open.identified} (true y={probing_open.true_y}); "
            f"with RL2 it identifies {probing_limited.identified or 'nothing'}"
        )
    return "\n".join(lines)


def format_starvation(unguarded: StarvationResult, guarded: StarvationResult) -> str:
    return "\n".join(
        [
            "Bandwidth starvation (paper §I): reflection at a 1 Mb/s victim",
            f"  attacker spends {unguarded.attacker_bandwidth / 1000:.0f} KB/s "
            f"({unguarded.victim_link_capacity / unguarded.attacker_bandwidth:.1f}x "
            f"smaller than the victim's link)",
            f"  legitimate delivery, unguarded ANS: "
            f"{unguarded.legit_delivery_rate:.0%}",
            f"  legitimate delivery, guarded ANS:   "
            f"{guarded.legit_delivery_rate:.0%}",
        ]
    )


if __name__ == "__main__":
    unguarded = run_amplification(guarded=False)
    guarded = run_amplification(
        guarded=True,
        rl1=UnverifiedResponseLimiter(per_source_rate=100.0, per_source_burst=100.0),
    )
    guessing = run_cookie2_guessing()
    zombie = run_zombie_flood()
    probing_open = run_probing_attack(rl2_enabled=False)
    probing_limited = run_probing_attack(rl2_enabled=True)
    print(
        format_attack_report(
            unguarded, guarded, guessing, zombie, probing_open, probing_limited
        )
    )
