"""Fault-injection suite: each fault scenario against all three schemes.

The paper argues the guard keeps *legitimate* clients served while spoofed
floods are dropped.  This experiment stresses the other half of that
promise — infrastructure faults rather than attacks: link blackouts and
flaps, bursty (Gilbert–Elliott) loss, wire chaos (duplication / reordering
/ corruption), a guard crash-and-restart with cookie-key rotation, and
failover of the protected ANS to a secondary server.

For every (scenario, scheme) cell a fresh testbed runs one legitimate LRS
loop; we report availability (completed / attempted iterations over the
measurement window), mean latency plus the latency added over the same
scheme's fault-free baseline, and the guard's false-reject count — packets
from the legitimate client the guard dropped as *invalid* (bad cookie /
bad label / bad SYN-cookie ACK).  Loss-induced timeouts are availability
failures, not false rejects; the false-reject column is the paper's
correctness claim and must stay 0, including across a guard restart that
rotates the cookie key (pre-crash cookies verify via the key-generation
bit).

All fault randomness draws from the ``"faults"`` child RNG stream, so a
scenario's faults never perturb the core event sequence and the whole
suite is bit-identical under ``--sanitize``.
"""

from __future__ import annotations

import dataclasses

from ..dns import AnsSimulator, LrsSimulator
from ..faults import (
    BurstyLoss,
    Corrupt,
    Duplicate,
    FaultPlan,
    GuardCrash,
    LinkDown,
    LinkFlap,
    Reorder,
    RouteFailover,
)
from ..netsim import Link, Node
from .calibration import ANS_LINK_DELAY
from .testbed import ANS_ADDRESS, GuardTestbed

SCHEMES = ("modified", "ns_name", "tcp")

SCENARIOS = (
    "baseline",
    "uplink-blackout",
    "uplink-flap",
    "bursty-loss",
    "wire-chaos",
    "guard-restart",
    "ans-failover",
)


@dataclasses.dataclass(slots=True)
class FaultCell:
    """One (scenario, scheme) measurement."""

    scenario: str
    scheme: str
    sent: int
    completed: int
    timeouts: int
    availability: float
    mean_latency_ms: float
    added_latency_ms: float
    false_rejects: int


@dataclasses.dataclass(slots=True)
class _Env:
    bed: GuardTestbed
    lrs: LrsSimulator
    uplink: Link
    ans2_link: Link


def _build(scheme: str, seed: int) -> _Env:
    """A fresh testbed for ``scheme`` with a hot-standby secondary ANS.

    The standby is built for every scenario (not just failover) so all
    cells of a scheme consume the seeded RNG identically.
    """
    ans_mode = "referral" if scheme == "ns_name" else "answer"
    if scheme == "modified":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode=ans_mode)
        client = bed.add_client("lrs", via_local_guard=True)
        workload = "plain"
    elif scheme == "ns_name":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode=ans_mode)
        client = bed.add_client("lrs")
        workload = "referral"
    elif scheme == "tcp":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode=ans_mode, guard_policy="tcp")
        client = bed.add_client("lrs")
        workload = "plain"
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    lrs = LrsSimulator(client, ANS_ADDRESS, workload=workload, concurrency=4, timeout=0.02)
    lrs.record_latencies = True

    # The faulted segment is the client's path to the guard; behind a local
    # guard that is the outer (local-guard <-> remote-guard) link.
    if scheme == "modified":
        lg_node = client.links[0].other(client)
        uplink = next(link for link in lg_node.links if link.other(lg_node) is bed.guard_node)
    else:
        uplink = client.links[0]

    # Hot-standby ANS owning the same service address (VIP / anycast-style
    # failover): repointing the guard's route is the whole switchover.
    ans2_node = Node(bed.sim, "ans2")
    ans2_node.add_address(ANS_ADDRESS)
    ans2_link = Link(bed.sim, bed.guard_node, ans2_node, delay=ANS_LINK_DELAY)
    ans2_node.set_default_route(ans2_link)
    AnsSimulator(ans2_node, mode=ans_mode)

    return _Env(bed=bed, lrs=lrs, uplink=uplink, ans2_link=ans2_link)


def _plan_for(scenario: str, env: _Env, t0: float, window: float) -> FaultPlan:
    """The scenario's fault script, timed inside [t0, t0 + window]."""
    w = window
    plan = FaultPlan()
    if scenario == "baseline":
        pass
    elif scenario == "uplink-blackout":
        plan.add(t0 + 0.30 * w, LinkDown(env.uplink, duration=0.15 * w))
    elif scenario == "uplink-flap":
        plan.add(
            t0 + 0.25 * w,
            LinkFlap(env.uplink, down_for=0.03 * w, up_for=0.07 * w, count=3),
        )
    elif scenario == "bursty-loss":
        plan.add(
            t0 + 0.20 * w,
            BurstyLoss(
                env.uplink,
                duration=0.5 * w,
                p_good_to_bad=0.05,
                p_bad_to_good=0.3,
            ),
        )
    elif scenario == "wire-chaos":
        plan.add(t0 + 0.20 * w, Duplicate(env.uplink, 0.05, duration=0.5 * w))
        plan.add(
            t0 + 0.20 * w,
            Reorder(env.uplink, 0.10, extra_delay=0.002, duration=0.5 * w),
        )
        plan.add(t0 + 0.20 * w, Corrupt(env.uplink, 0.02, duration=0.5 * w))
    elif scenario == "guard-restart":
        plan.add(
            t0 + 0.30 * w,
            GuardCrash(env.bed.guard, downtime=0.05 * w, rotate_key=True),
        )
    elif scenario == "ans-failover":
        plan.add(t0 + 0.30 * w, LinkDown(env.bed.ans_link))
        plan.add(
            t0 + 0.35 * w,
            RouteFailover(env.bed.guard_node, f"{ANS_ADDRESS}/32", env.ans2_link),
        )
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    return plan


def _false_rejects(env: _Env) -> int:
    count = env.bed.guard.invalid_drops
    if env.bed.guard.tcp_proxy is not None:
        count += env.bed.guard_node.tcp.cookie_failures
    return count


def _run_cell(
    scheme: str, scenario: str, *, seed: int, warmup: float, window: float
) -> FaultCell:
    env = _build(scheme, seed)
    _plan_for(scenario, env, warmup, window).schedule(env.bed.sim)
    env.lrs.start()
    env.bed.run(warmup)

    stats = env.lrs.stats
    completed0, timeouts0 = stats.completed, stats.timeouts
    latency_mark = len(env.lrs.latencies)
    rejects0 = _false_rejects(env)
    env.bed.run(window)
    env.lrs.stop()
    # drain in-flight iterations so every attempt resolves to ok/timeout
    env.bed.run(1.0)

    completed = stats.completed - completed0
    timeouts = stats.timeouts - timeouts0
    attempts = completed + timeouts
    window_latencies = env.lrs.latencies[latency_mark:]
    mean_latency = (
        sum(window_latencies) / len(window_latencies) if window_latencies else 0.0
    )
    return FaultCell(
        scenario=scenario,
        scheme=scheme,
        sent=attempts,
        completed=completed,
        timeouts=timeouts,
        availability=completed / attempts if attempts else 0.0,
        mean_latency_ms=mean_latency * 1000.0,
        added_latency_ms=0.0,  # filled in against the scheme baseline
        false_rejects=_false_rejects(env) - rejects0,
    )


def _windows(fast: bool) -> tuple[float, float]:
    return (0.15, 0.4) if fast else (0.25, 1.0)


def plan_cells(
    seed: int = 0,
    *,
    fast: bool = False,
    scenarios: tuple[str, ...] = SCENARIOS,
    schemes: tuple[str, ...] = SCHEMES,
    matrix: str = "faults",
) -> list:
    """The faults matrix as farm cells, in canonical (scenario, scheme) order.

    This is the single source of cell definitions: the serial experiment
    (:func:`run_faults`) and the sharded farm both expand the matrix here,
    so a cell's identity — and its derived per-cell seed — is the same
    whether it runs in-process, on shard k of n, or after a resume.
    """
    from ..farm.planner import expand

    return expand(
        matrix,
        [("scenario", scenarios), ("scheme", schemes)],
        base_seed=seed,
        fast=fast,
    )


def run_matrix_cell(params: dict[str, str], seed: int, fast: bool) -> dict:
    """Run one planned cell; the farm worker entry point for this matrix.

    ``added_latency_ms`` stays 0 here — it is a cross-cell quantity filled
    in by :func:`reduce_matrix` against the same scheme's baseline cell.
    """
    warmup, window = _windows(fast)
    cell = _run_cell(
        params["scheme"], params["scenario"], seed=seed, warmup=warmup, window=window
    )
    return dataclasses.asdict(cell)


def reduce_matrix(cells: list, results: list[dict]) -> list[FaultCell]:
    """Deterministic merge: results in canonical plan order -> FaultCells.

    Baseline cells come first in plan order, so each scheme's fault-free
    latency is known before any faulted cell of that scheme is reduced.
    """
    merged: list[FaultCell] = []
    baseline_latency: dict[str, float] = {}
    for result in results:
        cell = FaultCell(**result)
        if cell.scenario == "baseline":
            baseline_latency[cell.scheme] = cell.mean_latency_ms
        else:
            cell.added_latency_ms = cell.mean_latency_ms - baseline_latency[cell.scheme]
        merged.append(cell)
    return merged


def run_faults(seed: int = 0, *, fast: bool = False) -> list[FaultCell]:
    """Every scenario x scheme cell, serially, through the farm planner.

    Each cell runs under its own derived seed (see
    :func:`repro.farm.planner.derive_cell_seed`), so this serial loop and
    a sharded ``python -m repro faults --shards N`` produce byte-identical
    per-cell results.
    """
    cells = plan_cells(seed, fast=fast)
    results = [run_matrix_cell(cell.param_dict(), cell.seed, fast) for cell in cells]
    return reduce_matrix(cells, results)


def format_faults(cells: list[FaultCell]) -> str:
    lines = [
        "Fault injection: availability / latency / false rejects per scheme",
        f"{'scenario':<16} {'scheme':<9} {'sent':>6} {'ok':>6} {'avail%':>7} "
        f"{'lat ms':>7} {'+lat ms':>8} {'false-rej':>9}",
    ]
    previous = None
    for cell in cells:
        if previous is not None and cell.scenario != previous:
            lines.append("")
        previous = cell.scenario
        lines.append(
            f"{cell.scenario:<16} {cell.scheme:<9} {cell.sent:>6} {cell.completed:>6} "
            f"{cell.availability * 100:>7.2f} {cell.mean_latency_ms:>7.3f} "
            f"{cell.added_latency_ms:>+8.3f} {cell.false_rejects:>9}"
        )
    worst = min(cells, key=lambda c: c.availability)
    rejects = sum(c.false_rejects for c in cells)
    lines.append("")
    lines.append(
        f"worst availability: {worst.availability * 100:.2f}% "
        f"({worst.scenario} / {worst.scheme}); "
        f"total false rejects: {rejects}"
    )
    return "\n".join(lines)
