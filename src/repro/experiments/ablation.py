"""Ablations and baselines beyond the paper's own evaluation.

1. **Hop-count filtering (HCF)** vs cookies — the §II related-work defence.
   HCF's structural false negatives: an attacker sitting N hops from the
   server can impersonate every learned client at distance N.  Cookie
   verification has no such blind spot.
2. **Key rotation**: the paper's generation-bit scheme vs naive rotation.
   Naive rotation invalidates every outstanding cookie at the instant the
   key changes; the generation bit keeps them valid for one period.
3. **Modified-DNS vs RFC 7873**: the paper's scheme against its
   standardised descendant, measured on identical workloads.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address

from ..attack import HopCountFilter
from ..dns import AnsSimulator, LrsSimulator
from ..guard import CookieFactory, EdnsCookieClientShim, EdnsCookieGuard, random_key
from ..netsim import Link, Node, Simulator
from .testbed import ANS_ADDRESS, GuardTestbed


# ---------------------------------------------------------------------------
# 1. HCF false negatives
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class HcfResult:
    clients_learned: int
    attacker_hops: int
    hcf_false_negative_rate: float
    cookie_false_negative_rate: float


def run_hcf_ablation(
    *, clients: int = 500, attacker_hops: int = 12, seed: int = 7
) -> HcfResult:
    """Learn a realistic hop-count table, then measure impersonation room."""
    # draw from the testbed's seeded RNG plumbing, not the random module
    rng = Simulator(seed=seed).rng
    hcf = HopCountFilter()
    # clients at internet-like distances (roughly normal around 12 hops)
    for i in range(clients):
        hops = max(1, min(30, round(rng.gauss(12, 4))))
        client_ip = IPv4Address(0x0B000000 + i)
        hcf.learn(client_ip, 64 - hops)
    hcf.filtering = True
    hcf_fn = hcf.false_negative_rate(attacker_hops)

    # cookies: the attacker must guess the label cookie -> 2^-32 per packet
    cookie_fn = 1.0 / 2**32
    return HcfResult(clients, attacker_hops, hcf_fn, cookie_fn)


# ---------------------------------------------------------------------------
# 1b. Ingress filtering (RFC 2827) vs deployment fraction
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class IngressResult:
    deployment_fraction: float
    spoofed_sent: int
    spoofed_delivered: int

    @property
    def leak_rate(self) -> float:
        return self.spoofed_delivered / self.spoofed_sent if self.spoofed_sent else 0.0


def run_ingress_deployment(
    deploy_fraction: float, *, edges: int = 10, packets_per_edge: int = 100, seed: int = 0
) -> IngressResult:
    """§II: "[ingress filtering's] effectiveness depends on the universal
    deployment."  ``edges`` stub networks each host an attacker; a fraction
    of their edge routers deploy RFC 2827 filters.  Spoofed traffic leaks
    exactly through the non-deploying edges — the guard, by contrast,
    filters at the victim side no matter where the attacker sits.
    """
    from ..dnswire import make_query
    from ..netsim import Hook, Link, Node, Simulator, Verdict
    from ..netsim.netfilter import src_not_in

    sim = Simulator(seed=seed)
    hub = Node(sim, "hub")
    hub.add_address("10.255.255.1")
    ans_node = Node(sim, "ans")
    ans_node.add_address("203.0.113.53")
    uplink = Link(sim, ans_node, hub, delay=0.0001)
    ans_node.set_default_route(uplink)
    hub.add_route("203.0.113.53/32", uplink)
    delivered = [0]
    ans_node.udp.bind(53, lambda p, s, sp, d: delivered.__setitem__(0, delivered[0] + 1))

    deploying = int(round(deploy_fraction * edges))
    sent = 0
    for edge_index in range(edges):
        subnet = f"10.{edge_index + 1}.0.0/24"
        edge_router = Node(sim, f"edge{edge_index}")
        edge_router.add_address(f"10.{edge_index + 1}.0.254")
        up = Link(sim, edge_router, hub, delay=0.0001)
        edge_router.set_default_route(up)
        hub.add_route(subnet, up)
        attacker = Node(sim, f"attacker{edge_index}")
        attacker.add_address(f"10.{edge_index + 1}.0.66")
        down = Link(sim, attacker, edge_router, delay=0.00001)
        attacker.set_default_route(down)
        edge_router.add_route(f"10.{edge_index + 1}.0.66/32", down)
        if edge_index < deploying:
            edge_router.filters.append(
                Hook.FORWARD, src_not_in(subnet), Verdict.DROP, comment="RFC 2827"
            )
        sock = attacker.udp.bind_ephemeral(lambda *a: None)
        for i in range(packets_per_edge):
            sock.send(
                make_query(f"v{i}.example", msg_id=i),
                ans_node.address,
                53,
                src=IPv4Address(f"172.30.{edge_index}.{i % 250 + 1}"),
            )
            sent += 1
    sim.run(until=1.0)
    return IngressResult(deploy_fraction, sent, delivered[0])


# ---------------------------------------------------------------------------
# 2. Key rotation: generation bit vs naive
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class RotationResult:
    cookies_issued: int
    survivors_with_generation_bit: int
    survivors_naive: int


def run_rotation_ablation(*, cookies: int = 1000, seed: int = 0) -> RotationResult:
    """How many outstanding cookies survive a key change, per design."""
    rng = Simulator(seed=seed).rng
    with_bit = CookieFactory(random_key(rng))
    naive = CookieFactory(random_key(rng))
    sources = [IPv4Address(0x0C000000 + i) for i in range(cookies)]
    bit_cookies = [with_bit.cookie(ip) for ip in sources]
    naive_cookies = [naive.cookie(ip) for ip in sources]

    with_bit.rotate(random_key(rng))
    naive.rotate(random_key(rng))
    naive._previous_key = None  # naive rotation forgets the old key

    survivors_bit = sum(with_bit.verify(c, ip) for c, ip in zip(bit_cookies, sources))
    survivors_naive = sum(naive.verify(c, ip) for c, ip in zip(naive_cookies, sources))
    return RotationResult(cookies, survivors_bit, survivors_naive)


# ---------------------------------------------------------------------------
# 3. Modified-DNS vs RFC 7873 throughput
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class SchemeComparison:
    modified_dns_rps: float
    rfc7873_rps: float


def _run_rfc7873_throughput(*, seed: int, warmup: float, duration: float,
                            concurrency: int) -> float:
    sim = Simulator(seed=seed)
    client = Node(sim, "client")
    client.add_address("10.0.0.10")
    shim_node = Node(sim, "shim")
    shim_node.add_address("10.0.0.1")
    guard_node = Node(sim, "guard")
    guard_node.add_address("203.0.113.1")
    ans_node = Node(sim, "ans")
    ans_node.add_address(ANS_ADDRESS)
    l1 = Link(sim, client, shim_node, delay=0.00001)
    l2 = Link(sim, shim_node, guard_node, delay=0.00019)
    l3 = Link(sim, guard_node, ans_node, delay=0.00001)
    client.set_default_route(l1)
    shim_node.add_route("10.0.0.10/32", l1)
    shim_node.set_default_route(l2)
    guard_node.add_route("10.0.0.10/32", l2)
    guard_node.add_route(f"{ANS_ADDRESS}/32", l3)
    ans_node.set_default_route(l3)
    AnsSimulator(ans_node, mode="answer")
    EdnsCookieGuard(guard_node, ANS_ADDRESS)
    EdnsCookieClientShim(shim_node)
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=concurrency)
    lrs.start()
    sim.run(until=warmup)
    lrs.stats.begin_window(sim.now)
    sim.run(until=warmup + duration)
    rate = lrs.stats.throughput(sim.now)
    lrs.stop()
    return rate


def run_scheme_comparison(
    *, seed: int = 0, warmup: float = 0.15, duration: float = 0.25, concurrency: int = 192
) -> SchemeComparison:
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
    client = bed.add_client("lrs", via_local_guard=True)
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=concurrency)
    lrs.start()
    (modified_rate,) = bed.measure([lrs.stats], duration, warmup=warmup)
    lrs.stop()
    rfc_rate = _run_rfc7873_throughput(
        seed=seed, warmup=warmup, duration=duration, concurrency=concurrency
    )
    return SchemeComparison(modified_rate, rfc_rate)


def format_ablation(
    hcf: HcfResult,
    rotation: RotationResult,
    schemes: SchemeComparison,
    ingress: list[IngressResult] | None = None,
) -> str:
    lines = [
        "Ablations",
        f"  HCF false negatives at {hcf.attacker_hops} hops: "
        f"{hcf.hcf_false_negative_rate:.1%} of {hcf.clients_learned} clients "
        f"(cookie guessing: {hcf.cookie_false_negative_rate:.2e})",
        f"  key rotation survivors: generation bit "
        f"{rotation.survivors_with_generation_bit}/{rotation.cookies_issued}, "
        f"naive {rotation.survivors_naive}/{rotation.cookies_issued}",
        f"  throughput: modified DNS {schemes.modified_dns_rps / 1000:.1f}K req/s, "
        f"RFC 7873 {schemes.rfc7873_rps / 1000:.1f}K req/s",
    ]
    if ingress:
        leak = ", ".join(
            f"{r.deployment_fraction:.0%}->{r.leak_rate:.0%}" for r in ingress
        )
        lines.append(
            f"  ingress filtering leak rate by deployment: {leak} "
            f"(the guard: 0% at any deployment)"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(
        format_ablation(
            run_hcf_ablation(),
            run_rotation_ablation(),
            run_scheme_comparison(),
            [run_ingress_deployment(f) for f in (0.0, 0.5, 0.9, 1.0)],
        )
    )
