"""Calibration constants tying the CPU model to the paper's testbed (§IV.A).

The paper's hardware:

* DNS guards: DELL 600SC, P4 2.4 GHz — the guard costs live in
  :class:`repro.guard.GuardCosts` (see that module for the derivations);
* ANS / LRSs: DELL 400SC, P4 2.26 GHz running BIND 9.3.1 or the simulators;
* LAN RTT between LRS and ANS: 0.4 ms; the WAN latency experiment used a
  cable-modem path with RTT 10.9 ms.

Measured capacities reproduced here:

=====================  ===========  ==========================
quantity               paper        model constant
=====================  ===========  ==========================
BIND UDP capacity      14K req/s    ``BIND_UDP_COST`` = 1/14000
BIND TCP capacity      2.2K req/s   ``BIND_TCP_COST`` = 1/2200
ANS simulator          110K req/s   ``ANS_SIMULATOR_COST`` = 1/110000
LRS BIND retry timer   2 s          ``BIND_TIMEOUT``
LRS simulator wait     10 ms        ``LRS_SIMULATOR_TIMEOUT``
root-server peak load  5K req/s     ``ROOT_SERVER_PEAK_RATE`` [22]
=====================  ===========  ==========================
"""

from __future__ import annotations

from ..dns import (
    ANS_SIMULATOR_COST,
    BIND_TCP_COST,
    BIND_TIMEOUT,
    BIND_UDP_COST,
    LRS_SIMULATOR_TIMEOUT,
)
from ..guard import GuardCosts

#: The guard sits directly in front of the ANS, so that hop is negligible;
#: the client <-> guard link carries essentially the whole 0.4 ms LAN RTT.
ANS_LINK_DELAY = 0.00001
LAN_LINK_DELAY = 0.00019

#: One-way client-side delay for the WAN latency experiment (Table II):
#: 10.9 ms RTT = 2 x (5.44 ms WAN + 0.01 ms guard-ANS hop).
WAN_LINK_DELAY = 0.00544

#: The paper's measured WAN RTT for Table II.
WAN_RTT = 0.0109

#: Peak request rate observed at a root server (paper ref [22], CAIDA).
ROOT_SERVER_PEAK_RATE = 5000.0

#: Figure 5's spoof-detection activation threshold (the ANS's capacity).
FIG5_ACTIVATION_THRESHOLD = 14000.0

DEFAULT_GUARD_COSTS = GuardCosts()

__all__ = [
    "ANS_LINK_DELAY",
    "ANS_SIMULATOR_COST",
    "BIND_TCP_COST",
    "BIND_TIMEOUT",
    "BIND_UDP_COST",
    "DEFAULT_GUARD_COSTS",
    "FIG5_ACTIVATION_THRESHOLD",
    "LAN_LINK_DELAY",
    "LRS_SIMULATOR_TIMEOUT",
    "ROOT_SERVER_PEAK_RATE",
    "WAN_LINK_DELAY",
    "WAN_RTT",
]
