"""Sensitivity analysis: are the paper's claims robust to our calibration?

Absolute throughputs in this reproduction come from the CPU cost model
(:class:`repro.guard.GuardCosts`), calibrated to the paper's anchors.  This
experiment perturbs every cost constant and re-derives the paper's
*qualitative* claims from the fluid model, checking that none of them is an
artifact of the particular constants chosen:

1. scheme ordering: NS-name ≈ modified > fabricated > TCP (Table III);
2. cache hits outrun cache misses for every UDP scheme;
3. the guard protects: legitimate throughput under a 250K attack stays a
   large multiple of the unprotected server's;
4. the guard's saturation knee sits well above the ANS's own capacity.
"""

from __future__ import annotations

import dataclasses
import itertools

from ..guard import GuardCosts
from .fluid import FluidModel

#: Multiplicative perturbations applied to each cost constant.
DEFAULT_FACTORS = (0.5, 1.0, 2.0)

_FIELDS = ("per_packet", "cookie", "fabricate", "rewrite", "tcp_segment")


@dataclasses.dataclass(slots=True)
class SensitivityResult:
    """Outcome of one perturbed configuration."""

    factors: dict[str, float]
    ordering_holds: bool
    hits_beat_misses: bool
    guard_keeps_up: bool  # can this guard hardware sustain the ANS at all?
    protected_at_15x: float  # legit req/s at attack = 1.5x ANS capacity
    knee_over_ans_capacity: float


def _check(model: FluidModel) -> tuple[bool, bool, bool, float, float]:
    miss = {s: model.throughput(s, cache_hit=False) for s in
            ("ns_name", "fabricated", "tcp", "modified")}
    hit = {s: model.throughput(s, cache_hit=True) for s in
           ("ns_name", "fabricated", "modified")}
    ordering = (
        miss["ns_name"] > miss["fabricated"] > miss["tcp"]
        and miss["modified"] > miss["fabricated"]
    )
    hits_beat = all(hit[s] >= miss[s] for s in hit)
    ans_capacity = 1.0 / model.ans_cost
    keeps_up = model.throughput("modified", cache_hit=True) >= ans_capacity
    protected = model.legit_throughput_under_attack(1.5 * ans_capacity)
    knee = model.guard_saturation_attack_rate() / ans_capacity
    return ordering, hits_beat, keeps_up, protected, knee


def run_sensitivity(factors=DEFAULT_FACTORS) -> list[SensitivityResult]:
    """Perturb each cost constant over ``factors``, one at a time and in a
    full-factorial sweep over {min, max} corners."""
    results: list[SensitivityResult] = []
    base = GuardCosts()

    def evaluate(multipliers: dict[str, float]) -> SensitivityResult:
        costs = GuardCosts(
            **{
                field: getattr(base, field) * multipliers.get(field, 1.0)
                for field in _FIELDS
            },
            tcp_conn_scan=base.tcp_conn_scan,
        )
        model = FluidModel(costs=costs)
        ordering, hits_beat, keeps_up, protected, knee = _check(model)
        return SensitivityResult(
            multipliers, ordering, hits_beat, keeps_up, protected, knee
        )

    # one-at-a-time
    for field in _FIELDS:
        for factor in factors:
            results.append(evaluate({field: factor}))
    # corners of the hypercube over the extreme factors
    low, high = min(factors), max(factors)
    for corner in itertools.product((low, high), repeat=len(_FIELDS)):
        results.append(evaluate(dict(zip(_FIELDS, corner))))
    return results


def summarize(results: list[SensitivityResult]) -> dict[str, float]:
    total = len(results)
    feasible = [r for r in results if r.guard_keeps_up]
    return {
        "configurations": total,
        "ordering_holds": sum(r.ordering_holds for r in results) / total,
        "hits_beat_misses": sum(r.hits_beat_misses for r in results) / total,
        "feasible_fraction": len(feasible) / total,
        # within feasible configs: the guard still delivers at an attack
        # rate 1.5x the ANS's capacity, where the unprotected server is dead
        "min_protected_at_15x": min(r.protected_at_15x for r in feasible),
        "median_knee_over_ans": sorted(r.knee_over_ans_capacity for r in feasible)[
            len(feasible) // 2
        ],
    }


def format_sensitivity(results: list[SensitivityResult]) -> str:
    summary = summarize(results)
    return "\n".join(
        [
            "Sensitivity of the paper's qualitative claims to the cost model",
            f"  configurations tested: {summary['configurations']:.0f} "
            f"(each cost x0.5..x2, one-at-a-time and all corners)",
            f"  scheme ordering holds:          {summary['ordering_holds']:.0%}",
            f"  cache hits beat misses:         {summary['hits_beat_misses']:.0%}",
            f"  guard hardware keeps up:        {summary['feasible_fraction']:.0%} "
            f"of configurations",
            "  within those, at attack = 1.5x ANS capacity (unprotected: 0 req/s):",
            f"    worst-case protected rate:    "
            f"{summary['min_protected_at_15x'] / 1000:.0f}K req/s",
            f"    median saturation knee:       {summary['median_knee_over_ans']:.1f}x "
            f"the ANS's capacity",
        ]
    )


if __name__ == "__main__":
    print(format_sensitivity(run_sensitivity()))
