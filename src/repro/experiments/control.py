"""Adaptive overload control vs. static schemes, across attacks × faults.

The paper's §IV.C contrast — an overloaded server dropping requests
blindly vs. a guard shedding *spoofed* load — is here pushed one step
further: a closed-loop :class:`~repro.control.GuardController` that
escalates the cheapest sufficient defence is raced against each static
scheme under every (attack mix × fault plan) cell.

Per cell one paced legitimate LRS runs against the guard while an
attacker floods it (or doesn't), optionally with a mid-window guard
crash-and-restart (key rotation included).  We report availability over
the measurement window, mean and added latency, and *measured* false
rejects: the guard marks the legitimate client's address as watched, so
every drop/shed/limit decision against it is counted directly instead of
being inferred from aggregate counters an attacker also inflates.

Guard CPU costs are uniformly inflated by :data:`COST_SCALE` so the
saturation knee sits at event rates a discrete-event run can afford
(tens of kilopackets/sec instead of hundreds); every scheme is measured
under the same scaled costs, so cross-scheme comparisons are unaffected.
"""

from __future__ import annotations

import dataclasses
import json
import time

from ..attack import SpoofingAttacker
from ..control import ControlConfig, GuardController
from ..dns import LrsSimulator
from ..faults import FaultPlan, GuardCrash
from ..guard import GuardCosts, UnverifiedResponseLimiter, VerifiedRequestLimiter
from .testbed import ANS_ADDRESS, GuardTestbed

SCHEMES = ("modified", "ns_name", "tcp", "adaptive")
ATTACKS = ("calm", "cookie-flood", "plain-flood")
FAULTS = ("none", "guard-crash")

#: Uniform inflation of the calibrated per-operation guard costs.
COST_SCALE = 16.0

#: Controller sweep cadence for the adaptive cells.
CONTROL_CADENCE = 0.05

#: Legitimate-client pacing (requests/sec, aggregate over its loops).
LEGIT_RATE = 400.0

#: Attack rates chosen to exceed the scaled guard's verification capacity
#: (~29K drops/sec) resp. its challenge-fabrication capacity (~11K/sec).
COOKIE_FLOOD_RATE = 40_000.0
PLAIN_FLOOD_RATE = 25_000.0


def _scaled_costs() -> GuardCosts:
    base = GuardCosts()
    return GuardCosts(
        per_packet=base.per_packet * COST_SCALE,
        cookie=base.cookie * COST_SCALE,
        fabricate=base.fabricate * COST_SCALE,
        rewrite=base.rewrite * COST_SCALE,
        tcp_segment=base.tcp_segment * COST_SCALE,
        tcp_conn_scan=base.tcp_conn_scan * COST_SCALE,
    )


@dataclasses.dataclass(slots=True)
class ControlCell:
    """One (attack, fault, scheme) measurement."""

    attack: str
    fault: str
    scheme: str
    sent: int
    completed: int
    timeouts: int
    availability: float
    mean_latency_ms: float
    added_latency_ms: float
    false_rejects: int
    cpu_utilization: float
    # adaptive-only controller telemetry (zeros for static schemes)
    ctrl_max_level: int = 0
    ctrl_escalations: int = 0
    ctrl_reverts: int = 0
    ctrl_failed: bool = False


@dataclasses.dataclass(slots=True)
class ControlResult:
    cells: list[ControlCell]
    #: (attack, fault) scenarios where adaptive availability matched or
    #: beat every static scheme (within half a point of the best static)
    adaptive_wins: list[tuple[str, str]]
    false_rejects_adaptive: int
    false_rejects_modified: int
    crash_reverts: int


@dataclasses.dataclass(slots=True)
class _Env:
    bed: GuardTestbed
    lrs: LrsSimulator
    attacker: SpoofingAttacker | None
    controller: GuardController | None


def _build(scheme: str, attack: str, seed: int) -> _Env:
    ans_mode = "referral" if scheme == "ns_name" else "answer"
    # static modified-DNS runs the strict posture: plain queries from
    # unverified sources are dropped at one verification's cost; the
    # adaptive cell *starts* from the cheap DNS-challenge posture and only
    # degrades toward "drop" under sustained overload
    policy = {"modified": "drop", "ns_name": "dns", "tcp": "tcp", "adaptive": "dns"}[
        scheme
    ]
    bed = GuardTestbed(
        seed=seed,
        ans="simulator",
        ans_mode=ans_mode,
        guard_policy=policy,
        guard_costs=_scaled_costs(),
        rl1=UnverifiedResponseLimiter(per_source_rate=1000.0, per_source_burst=2000.0),
        rl2=VerifiedRequestLimiter(per_host_rate=4000.0, per_host_burst=8000.0),
    )
    if scheme in ("modified", "adaptive"):
        client = bed.add_client("lrs", via_local_guard=True)
        workload = "plain"
    elif scheme == "ns_name":
        client = bed.add_client("lrs")
        workload = "referral"
    else:  # tcp
        client = bed.add_client("lrs")
        workload = "plain"
    bed.guard.watch_sources = frozenset({client.addresses[0]})
    lrs = LrsSimulator(
        client,
        ANS_ADDRESS,
        workload=workload,
        concurrency=4,
        timeout=0.1,
        target_rate=LEGIT_RATE,
    )
    lrs.record_latencies = True

    attacker = None
    if attack != "calm":
        attacker = SpoofingAttacker(
            bed.add_client("attacker"),
            ANS_ADDRESS,
            rate=COOKIE_FLOOD_RATE if attack == "cookie-flood" else PLAIN_FLOOD_RATE,
            carry_invalid_cookie=(attack == "cookie-flood"),
        )

    controller = None
    if scheme == "adaptive":
        controller = GuardController(
            bed.guard, config=ControlConfig(cadence=CONTROL_CADENCE)
        ).start()
    return _Env(bed=bed, lrs=lrs, attacker=attacker, controller=controller)


def _false_rejects(env: _Env) -> int:
    # watched_rejects counts only decisions against the known-legitimate
    # client; TCP SYN-cookie failures on the proxy can only come from it
    # too (the attackers here are UDP-only)
    count = env.bed.guard.watched_rejects
    if env.bed.guard.tcp_proxy is not None:
        count += env.bed.guard_node.tcp.cookie_failures
    return count


def _run_cell(
    scheme: str,
    attack: str,
    fault: str,
    *,
    seed: int,
    warmup: float,
    window: float,
) -> ControlCell:
    env = _build(scheme, attack, seed)
    sim = env.bed.sim
    if env.attacker is not None:
        # the attack ramps up during warmup so an adaptive cell enters the
        # measurement window already (mostly) escalated — the controller's
        # reaction time is visible in the containment-style experiments,
        # not hidden inside this matrix
        sim.schedule(0.4 * warmup, env.attacker.start)
    if fault == "guard-crash":
        plan = FaultPlan()
        # half a cadence off the controller's sweep grid, so crash instants
        # and control sweeps never share a tie group
        crash_at = warmup + 0.5 * window + 0.5 * CONTROL_CADENCE
        plan.add(
            crash_at,
            GuardCrash(env.bed.guard, downtime=0.05 * window, rotate_key=True),
        )
        plan.schedule(sim)
    elif fault != "none":
        raise ValueError(f"unknown fault {fault!r}")

    env.lrs.start()
    env.bed.run(warmup)

    stats = env.lrs.stats
    completed0, timeouts0 = stats.completed, stats.timeouts
    latency_mark = len(env.lrs.latencies)
    rejects0 = _false_rejects(env)
    busy0, t0 = env.bed.guard_node.cpu.completed_busy_seconds(), sim.now
    env.bed.run(window)
    utilization = env.bed.guard_node.cpu.utilization(busy0, t0)
    env.lrs.stop()
    if env.attacker is not None:
        env.attacker.stop()
    # drain in-flight iterations so every attempt resolves to ok/timeout
    env.bed.run(1.0)

    completed = stats.completed - completed0
    timeouts = stats.timeouts - timeouts0
    attempts = completed + timeouts
    window_latencies = env.lrs.latencies[latency_mark:]
    mean_latency = (
        sum(window_latencies) / len(window_latencies) if window_latencies else 0.0
    )
    cell = ControlCell(
        attack=attack,
        fault=fault,
        scheme=scheme,
        sent=attempts,
        completed=completed,
        timeouts=timeouts,
        availability=completed / attempts if attempts else 0.0,
        mean_latency_ms=mean_latency * 1000.0,
        added_latency_ms=0.0,  # filled in against the scheme's calm baseline
        false_rejects=_false_rejects(env) - rejects0,
        cpu_utilization=utilization,
    )
    if env.controller is not None:
        ctrl = env.controller
        cell.ctrl_max_level = max(
            (entry[2] for entry in ctrl.actions), default=ctrl.level
        )
        cell.ctrl_escalations = ctrl.escalations
        cell.ctrl_reverts = ctrl.reverts
        cell.ctrl_failed = ctrl.failed
    return cell


def run_control(
    seed: int = 0,
    *,
    fast: bool = False,
    schemes: tuple[str, ...] = SCHEMES,
) -> ControlResult:
    """The full matrix; calm/none first so added latency has a baseline."""
    warmup, window = (0.15, 0.4) if fast else (0.25, 1.0)
    attacks = ("calm", "cookie-flood") if fast else ATTACKS
    cells: list[ControlCell] = []
    baseline_latency: dict[str, float] = {}
    for attack in attacks:
        for fault in FAULTS:
            for scheme in schemes:
                cell = _run_cell(
                    scheme, attack, fault, seed=seed, warmup=warmup, window=window
                )
                if attack == "calm" and fault == "none":
                    baseline_latency[scheme] = cell.mean_latency_ms
                else:
                    cell.added_latency_ms = (
                        cell.mean_latency_ms - baseline_latency[scheme]
                    )
                cells.append(cell)

    adaptive_wins: list[tuple[str, str]] = []
    if "adaptive" in schemes:
        for attack in attacks:
            for fault in FAULTS:
                scenario = [
                    c for c in cells if c.attack == attack and c.fault == fault
                ]
                adaptive = next(c for c in scenario if c.scheme == "adaptive")
                best_static = max(
                    c.availability for c in scenario if c.scheme != "adaptive"
                )
                if adaptive.availability >= best_static - 0.005:
                    adaptive_wins.append((attack, fault))
    return ControlResult(
        cells=cells,
        adaptive_wins=adaptive_wins,
        false_rejects_adaptive=sum(
            c.false_rejects for c in cells if c.scheme == "adaptive"
        ),
        false_rejects_modified=sum(
            c.false_rejects for c in cells if c.scheme == "modified"
        ),
        crash_reverts=sum(
            c.ctrl_reverts for c in cells if c.fault == "guard-crash"
        ),
    )


def format_control(result: ControlResult) -> str:
    lines = [
        "Adaptive overload control vs static schemes "
        "(availability / latency / measured false rejects)",
        f"{'attack':<13} {'fault':<12} {'scheme':<9} {'sent':>5} {'ok':>5} "
        f"{'avail%':>7} {'lat ms':>7} {'+lat ms':>8} {'f-rej':>5} {'cpu%':>5} "
        f"{'ctrl':>12}",
    ]
    previous = None
    for cell in result.cells:
        group = (cell.attack, cell.fault)
        if previous is not None and group != previous:
            lines.append("")
        previous = group
        if cell.scheme == "adaptive":
            ctrl = f"L{cell.ctrl_max_level}/e{cell.ctrl_escalations}/r{cell.ctrl_reverts}"
            if cell.ctrl_failed:
                ctrl += "/FAILED"
        else:
            ctrl = "-"
        lines.append(
            f"{cell.attack:<13} {cell.fault:<12} {cell.scheme:<9} {cell.sent:>5} "
            f"{cell.completed:>5} {cell.availability * 100:>7.2f} "
            f"{cell.mean_latency_ms:>7.3f} {cell.added_latency_ms:>+8.3f} "
            f"{cell.false_rejects:>5} {cell.cpu_utilization * 100:>5.1f} {ctrl:>12}"
        )
    lines.append("")
    wins = ", ".join(f"{a}×{f}" for a, f in result.adaptive_wins) or "none"
    lines.append(
        f"adaptive matches-or-beats every static scheme in "
        f"{len(result.adaptive_wins)} scenario(s): {wins}"
    )
    lines.append(
        f"false rejects — adaptive: {result.false_rejects_adaptive}, "
        f"static modified-DNS: {result.false_rejects_modified}"
    )
    lines.append(
        f"controller safe-reverts across guard-crash cells: {result.crash_reverts}"
    )
    return "\n".join(lines)


def write_bench_control(result: ControlResult, path: str, *, date: str | None = None) -> dict:
    """Append this run's headline numbers to a dated ``BENCH_control.json``.

    Follows the ``write_bench_profile`` idiom: an existing document's
    ``trajectory`` is preserved and the new entry appended, so the file is
    a running history of how the adaptive controller compares over time.
    """
    adaptive = [c for c in result.cells if c.scheme == "adaptive"]
    doc: dict = {
        "benchmark": "adaptive-overload-control",
        "unit": "availability",
    }
    if date is None:
        # host date on a benchmark record — measurement metadata only,
        # never feeds back into simulation
        date = time.strftime("%Y-%m-%d")
    trajectory: list[dict] = []
    try:
        with open(path, encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        previous = None
    if isinstance(previous, dict):
        recorded = previous.get("trajectory")
        if isinstance(recorded, list):
            trajectory = list(recorded)
    trajectory.append(
        {
            "date": date,
            "adaptive_wins": len(result.adaptive_wins),
            "scenarios": sorted(f"{a}×{f}" for a, f in result.adaptive_wins),
            "worst_adaptive_availability": min(
                (c.availability for c in adaptive), default=0.0
            ),
            "false_rejects_adaptive": result.false_rejects_adaptive,
            "false_rejects_modified": result.false_rejects_modified,
            "crash_reverts": result.crash_reverts,
        }
    )
    doc["trajectory"] = trajectory
    doc["value"] = trajectory[-1]["worst_adaptive_availability"]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
