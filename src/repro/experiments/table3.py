"""Table III: DNS guard throughput (requests/sec) per scheme, miss vs hit.

Paper setup (§IV.D): ANS simulator (~110K req/s capacity) and LRS simulator
on the LAN testbed; cookie caching disabled for the "cache miss" rows.
Expected ordering: NS name ≈ modified DNS > fabricated NS/IP > TCP-based;
cache-hit throughput for the UDP schemes is capped by the ANS simulator
itself (~110K) while the guard sits under 70% CPU.

(paper: miss 84.2K / 60.1K / 22.7K / 84.3K; hit 110.1K / 109.7K / 22.7K / 110.3K)
"""

from __future__ import annotations

import dataclasses

from ..dns import LrsSimulator, TcpLoadClient
from .testbed import ANS_ADDRESS, GuardTestbed

SCHEMES = ("ns_name", "fabricated", "tcp", "modified")

PAPER_KRPS = {
    "ns_name": {"miss": 84.2, "hit": 110.1},
    "fabricated": {"miss": 60.1, "hit": 109.7},
    "tcp": {"miss": 22.7, "hit": 22.7},
    "modified": {"miss": 84.3, "hit": 110.3},
}


@dataclasses.dataclass(slots=True)
class ThroughputRow:
    scheme: str
    miss_krps: float
    hit_krps: float
    paper_miss_krps: float
    paper_hit_krps: float


def _run_udp(scheme: str, *, cache: bool, seed: int, warmup: float, duration: float,
             concurrency: int) -> float:
    if scheme == "ns_name":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(
            client, ANS_ADDRESS, workload="referral",
            concurrency=concurrency, cache_cookies=cache,
        )
    elif scheme == "fabricated":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs")
        lrs = LrsSimulator(
            client, ANS_ADDRESS, workload="nonreferral",
            concurrency=concurrency, cache_cookies=cache,
        )
    elif scheme == "modified":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", via_local_guard=True)
        client.local_guard.cache_cookies = cache
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", concurrency=concurrency)
    else:
        raise ValueError(scheme)
    lrs.start()
    (rate,) = bed.measure([lrs.stats], duration, warmup=warmup)
    lrs.stop()
    return rate


def _run_tcp(*, seed: int, warmup: float, duration: float, concurrency: int = 50) -> float:
    bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer", guard_policy="tcp")
    client = bed.add_client("lrs")
    tcp = TcpLoadClient(client, ANS_ADDRESS, concurrency=concurrency)
    tcp.start()
    (rate,) = bed.measure([tcp.stats], duration, warmup=warmup)
    tcp.stop()
    return rate


def measure_scheme(
    scheme: str,
    cache: bool,
    *,
    seed: int = 0,
    warmup: float = 0.15,
    duration: float = 0.3,
    concurrency: int = 192,
) -> float:
    """Saturated throughput (requests/sec) for one scheme/caching mode."""
    if scheme == "tcp":
        return _run_tcp(seed=seed, warmup=warmup, duration=duration)
    return _run_udp(
        scheme, cache=cache, seed=seed, warmup=warmup, duration=duration,
        concurrency=concurrency,
    )


def run_table3(seed: int = 0, *, fast: bool = False) -> list[ThroughputRow]:
    kwargs = {"warmup": 0.1, "duration": 0.2} if fast else {}
    rows = []
    for scheme in SCHEMES:
        miss = measure_scheme(scheme, cache=False, seed=seed, **kwargs)
        hit = measure_scheme(scheme, cache=True, seed=seed, **kwargs)
        rows.append(
            ThroughputRow(
                scheme=scheme,
                miss_krps=miss / 1000.0,
                hit_krps=hit / 1000.0,
                paper_miss_krps=PAPER_KRPS[scheme]["miss"],
                paper_hit_krps=PAPER_KRPS[scheme]["hit"],
            )
        )
    return rows


def format_table3(rows: list[ThroughputRow]) -> str:
    lines = [
        "Table III: average DNS request throughput (K requests/sec)",
        f"{'scheme':<12} {'miss':>8} {'paper':>8}   {'hit':>8} {'paper':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:<12} {row.miss_krps:>8.1f} {row.paper_miss_krps:>8.1f}   "
            f"{row.hit_krps:>8.1f} {row.paper_hit_krps:>8.1f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table3(run_table3()))
