"""The six-node evaluation testbed (paper §IV.A), parameterised.

Topology::

    client_1 ─┐
    client_2 ─┼── remote guard ── ANS
    client_n ─┘

Clients (LRSs, load generators, attackers) each hang off their own link to
the guard, which is the inline router in front of the ANS.  A client may be
placed behind an inline local DNS guard (the modified-DNS scheme's LRS-side
module).  Link delays default to the paper's 0.4 ms LAN RTT; a client can be
attached over the 10.9 ms WAN path instead for the Table II latency runs.
"""

from __future__ import annotations

import itertools
from ipaddress import IPv4Address

from ..dns import AnsSimulator, AuthoritativeServer, Zone
from ..dnswire import Name, soa_record
from ..guard import (
    CookieFactory,
    GuardCosts,
    LocalDnsGuard,
    RemoteDnsGuard,
    UnverifiedResponseLimiter,
    VerifiedRequestLimiter,
    random_key,
)
from ..netsim import Link, Node, Simulator
from .calibration import ANS_LINK_DELAY, LAN_LINK_DELAY, WAN_LINK_DELAY

#: Rate-limiter settings that stay out of the way of single-node load
#: generators.  The paper's throughput experiments likewise run with the
#: limiters effectively open; the attack-analysis experiments configure
#: real (tight) limiters explicitly.
OPEN_RATE = 1e9

#: Well-known addresses in the testbed.
ANS_ADDRESS = IPv4Address("203.0.113.53")
GUARD_ADDRESS = IPv4Address("203.0.113.1")
COOKIE_SUBNET = "198.18.0.0/24"


class GuardTestbed:
    """Builds and owns the simulated evaluation network."""

    def __init__(
        self,
        *,
        seed: int = 0,
        ans: str = "simulator",
        ans_mode: str = "answer",
        ans_request_cost: float | None = None,
        answer_ttl: int = 0,
        guard_enabled: bool = True,
        guard_policy="dns",
        activation_threshold: float | None = None,
        guard_costs: GuardCosts | None = None,
        cookie_subnet: str | None = COOKIE_SUBNET,
        link_delay: float = LAN_LINK_DELAY,
        zone_origin: str = ".",
        rl1=None,
        rl2=None,
    ):
        self.sim = Simulator(seed=seed)
        self.link_delay = link_delay
        self._client_ips = itertools.count(10)

        # the guard node sits inline in front of the ANS
        self.guard_node = Node(self.sim, "guard")
        self.guard_node.add_address(GUARD_ADDRESS)
        self.ans_node = Node(self.sim, "ans")
        self.ans_node.add_address(ANS_ADDRESS)
        self.ans_link = Link(self.sim, self.guard_node, self.ans_node, delay=ANS_LINK_DELAY)
        self.ans_node.set_default_route(self.ans_link)
        self.guard_node.add_route(f"{ANS_ADDRESS}/32", self.ans_link)

        # the protected server
        if ans == "simulator":
            kwargs = {}
            if ans_request_cost is not None:
                kwargs["request_cost"] = ans_request_cost
            self.ans = AnsSimulator(
                self.ans_node, mode=ans_mode, answer_ttl=answer_ttl, **kwargs
            )
        elif ans == "bind":
            zone = self._default_zone(zone_origin, answer_ttl)
            kwargs = {}
            if ans_request_cost is not None:
                kwargs["udp_request_cost"] = ans_request_cost
            self.ans = AuthoritativeServer(
                self.ans_node, [zone], answer_ttl_override=answer_ttl, **kwargs
            )
        else:
            raise ValueError(f"unknown ans kind {ans!r}")

        # the remote DNS guard; limiters default to open for load testing.
        # The cookie key is drawn from the seeded simulator RNG — an
        # OS-entropy key would make cookie-derived packet contents (and so
        # the whole event trace) differ between same-seed runs.
        self.cookie_factory = CookieFactory(random_key(self.sim.rng))
        if rl1 is None:
            rl1 = UnverifiedResponseLimiter(per_source_rate=OPEN_RATE, per_source_burst=OPEN_RATE)
        if rl2 is None:
            rl2 = VerifiedRequestLimiter(per_host_rate=OPEN_RATE, per_host_burst=OPEN_RATE)
        self.guard = RemoteDnsGuard(
            self.guard_node,
            ANS_ADDRESS,
            origin=zone_origin,
            cookie_factory=self.cookie_factory,
            costs=guard_costs or GuardCosts(),
            cookie_subnet=cookie_subnet,
            policy=guard_policy,
            activation_threshold=activation_threshold,
            enabled=guard_enabled,
            rl1=rl1,
            rl2=rl2,
        )
        if self.guard.tcp_proxy is not None:
            self.guard.tcp_proxy.new_connection_rate = OPEN_RATE
            self.guard.tcp_proxy.new_connection_burst = OPEN_RATE

    @staticmethod
    def _default_zone(origin: str, answer_ttl: int) -> Zone:
        zone = Zone(origin if origin != "." else "foo.com")
        zone.add(soa_record(zone.origin))
        www = Name.from_text("www.foo.com")
        if www.is_subdomain_of(zone.origin):
            zone.add_a(www, "198.51.100.80", ttl=max(answer_ttl, 1))
        return zone

    # -- clients ------------------------------------------------------------------

    def add_client(
        self,
        name: str,
        *,
        address: IPv4Address | str | None = None,
        wan: bool = False,
        via_local_guard: bool = False,
    ) -> Node:
        """Attach a client host (LRS / load generator / attacker) to the guard.

        With ``via_local_guard`` an inline :class:`LocalDnsGuard` node is
        inserted between the client and the remote guard, making the client
        cookie-capable without modification.
        """
        delay = WAN_LINK_DELAY if wan else self.link_delay
        node = Node(self.sim, name)
        if address is None:
            address = IPv4Address(f"10.0.0.{next(self._client_ips)}")
        elif isinstance(address, str):
            address = IPv4Address(address)
        node.add_address(address)

        if via_local_guard:
            lg_node = Node(self.sim, f"{name}-localguard")
            lg_node.add_address(IPv4Address(f"10.0.0.{next(self._client_ips)}"))
            inner = Link(self.sim, node, lg_node, delay=0.00001)
            outer = Link(self.sim, lg_node, self.guard_node, delay=delay)
            node.set_default_route(inner)
            lg_node.add_route(f"{address}/32", inner)
            lg_node.set_default_route(outer)
            self.guard_node.add_route(f"{address}/32", outer)
            local_guard = LocalDnsGuard(lg_node)
            node.local_guard = local_guard  # type: ignore[attr-defined]
        else:
            link = Link(self.sim, node, self.guard_node, delay=delay)
            node.set_default_route(link)
            self.guard_node.add_route(f"{address}/32", link)
        return node

    # -- measurement helpers -----------------------------------------------------------

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def measure(self, stats_list, duration: float, *, warmup: float = 0.0):
        """Run ``warmup`` then ``duration``, returning each stats' throughput."""
        if warmup:
            self.run(warmup)
        now = self.sim.now
        for stats in stats_list:
            stats.begin_window(now)
        self.run(duration)
        return [stats.throughput(self.sim.now) for stats in stats_list]

    def cpu_utilization(self, node: Node, duration: float) -> float:
        """Utilisation of ``node`` over the next ``duration`` seconds."""
        busy0, t0 = node.cpu.completed_busy_seconds(), self.sim.now
        self.run(duration)
        return node.cpu.utilization(busy0, t0)
