"""Table II: average DNS request latency per scheme, cache miss vs hit.

Paper setup: the requesting LRS reaches the ANS over a cable-modem path
with a 10.9 ms RTT.  Expected multiples of the RTT:

=============  =====  ====
scheme         miss   hit
=============  =====  ====
NS name        2x     1x
fabricated     3x     1x
TCP-based      3x     3x
modified DNS   2x     1x
=============  =====  ====

(paper measurements: 21.0/32.1/34.5/22.4 ms miss, 11.1/11.3/33.7/10.8 ms hit)
"""

from __future__ import annotations

import dataclasses

from ..dns import LrsSimulator, TcpLoadClient
from ..netsim import PacketTracer
from ..obs import current as current_obs
from .testbed import ANS_ADDRESS, GuardTestbed

SCHEMES = ("ns_name", "fabricated", "tcp", "modified")

#: The paper's measured values (milliseconds), for side-by-side reporting.
PAPER_MS = {
    "ns_name": {"miss": 21.0, "hit": 11.1},
    "fabricated": {"miss": 32.1, "hit": 11.3},
    "tcp": {"miss": 34.5, "hit": 33.7},
    "modified": {"miss": 22.4, "hit": 10.8},
}

#: Paper §IV.D packet arithmetic: wire packets crossing the guard per
#: request.  Cookie schemes: 6 (miss) / 4 (hit) except the fabricated
#: NS name/ip scheme which needs 8 on a miss; the TCP-based scheme pays
#: the full handshake + teardown every time (10-12 segments + the two
#: UDP packets of the guard<->ANS leg).
PAPER_PACKETS = {
    "ns_name": {"miss": 6, "hit": 4},
    "fabricated": {"miss": 8, "hit": 4},
    "tcp": {"miss": 12, "hit": 12},
    "modified": {"miss": 6, "hit": 4},
}


@dataclasses.dataclass(slots=True)
class LatencyRow:
    scheme: str
    miss_ms: float
    hit_ms: float
    paper_miss_ms: float
    paper_hit_ms: float
    packets_miss: float = 0.0
    packets_hit: float = 0.0
    paper_packets_miss: int = 0
    paper_packets_hit: int = 0


def _build(scheme: str, seed: int):
    """Testbed + WAN client + load generator for one scheme."""
    if scheme == "ns_name":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs", wan=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.2)
    elif scheme == "fabricated":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", wan=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="nonreferral", timeout=0.2)
    elif scheme == "tcp":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs", wan=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.2)
    elif scheme == "modified":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", wan=True, via_local_guard=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.2)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return bed, lrs


def measure_scheme(scheme: str, *, seed: int = 0, iterations: int = 12) -> tuple[float, float]:
    """(cache-miss ms, cache-hit ms) for one scheme."""
    bed, lrs = _build(scheme, seed)
    lrs.record_latencies = True
    lrs.start()
    # WAN RTT is ~11 ms; give each iteration up to 4 RTTs
    bed.run(iterations * 0.05)
    lrs.stop()
    latencies = lrs.latencies
    if len(latencies) < 4:
        raise RuntimeError(f"scheme {scheme}: only {len(latencies)} samples")
    miss = latencies[0] * 1000.0
    hits = latencies[2:]
    hit = sum(hits) / len(hits) * 1000.0
    return miss, hit


def _packets_per_request(bed, lrs, *, warm: bool, duration: float = 0.2) -> float:
    """Average UDP packets crossing the guard per completed request."""
    if warm:
        lrs.start()
        bed.run(0.05)
        lrs.stop()
        bed.run(0.05)  # drain in-flight work before tracing
    tracer = PacketTracer(bed.guard_node)
    completed_before = lrs.stats.completed
    lrs.start()
    bed.run(duration)
    lrs.stop()
    bed.run(0.05)
    tracer.detach()
    completed = lrs.stats.completed - completed_before
    if completed <= 0:
        raise RuntimeError("no completed interactions to average over")
    return len(tracer.packets(protocol="udp")) / completed


def measure_packets(scheme: str, *, seed: int = 0) -> tuple[float, float]:
    """(cache-miss, cache-hit) wire packets per request at the guard (§IV.D).

    Runs on a LAN testbed (no WAN delay) so the run fits the same duration
    budget as the latency pass; the packet arithmetic is delay-independent.
    """
    if scheme == "ns_name":
        workload, mode = "referral", "referral"
    elif scheme == "fabricated":
        workload, mode = "nonreferral", "answer"
    elif scheme == "modified":
        workload, mode = "plain", "answer"
    elif scheme == "tcp":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs")
        tcp = TcpLoadClient(client, ANS_ADDRESS, concurrency=1)
        tracer = PacketTracer(bed.guard_node)
        tcp.start()
        bed.run(0.2)
        tcp.stop()
        bed.run(0.1)
        tracer.detach()
        if tcp.stats.completed <= 0:
            raise RuntimeError("no completed TCP requests to average over")
        total = len(tracer.packets(protocol="tcp")) + len(tracer.packets(protocol="udp"))
        per_request = total / tcp.stats.completed
        return per_request, per_request  # no cookie cache: hit == miss
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    counts = []
    for phase in ("miss", "hit"):
        cached = phase == "hit"
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode=mode)
        if scheme == "modified":
            client = bed.add_client("lrs", via_local_guard=True)
            client.local_guard.cache_cookies = cached
            lrs = LrsSimulator(client, ANS_ADDRESS, workload=workload)
        else:
            client = bed.add_client("lrs")
            lrs = LrsSimulator(client, ANS_ADDRESS, workload=workload, cache_cookies=cached)
        counts.append(_packets_per_request(bed, lrs, warm=cached))
    return counts[0], counts[1]


def run_table2(seed: int = 0) -> list[LatencyRow]:
    rows = []
    obs = current_obs()
    for scheme in SCHEMES:
        miss, hit = measure_scheme(scheme, seed=seed)
        # the packet pass runs unconditionally (not only when obs is
        # installed) so the simulation workload — and therefore the
        # --sanitize event-trace hash — is identical with obs on or off.
        packets_miss, packets_hit = measure_packets(scheme, seed=seed)
        rows.append(
            LatencyRow(
                scheme=scheme,
                miss_ms=miss,
                hit_ms=hit,
                paper_miss_ms=PAPER_MS[scheme]["miss"],
                paper_hit_ms=PAPER_MS[scheme]["hit"],
                packets_miss=packets_miss,
                packets_hit=packets_hit,
                paper_packets_miss=PAPER_PACKETS[scheme]["miss"],
                paper_packets_hit=PAPER_PACKETS[scheme]["hit"],
            )
        )
        if obs is not None:
            for phase, ms, packets in (
                ("miss", miss, packets_miss),
                ("hit", hit, packets_hit),
            ):
                obs.gauge("table2.latency_ms", scheme=scheme, phase=phase).set(ms)
                obs.gauge(
                    "table2.packets_per_request", scheme=scheme, phase=phase
                ).set(packets)
    return rows


def format_table2(rows: list[LatencyRow]) -> str:
    lines = [
        "Table II: average DNS request latency (msec); RTT = 10.9 msec",
        f"{'scheme':<12} {'miss':>8} {'paper':>8}   {'hit':>8} {'paper':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:<12} {row.miss_ms:>8.1f} {row.paper_miss_ms:>8.1f}   "
            f"{row.hit_ms:>8.1f} {row.paper_hit_ms:>8.1f}"
        )
    lines.append("")
    lines.append("Packets per request at the guard (paper IV.D)")
    lines.append(f"{'scheme':<12} {'miss':>8} {'paper':>8}   {'hit':>8} {'paper':>8}")
    for row in rows:
        lines.append(
            f"{row.scheme:<12} {row.packets_miss:>8.1f} {row.paper_packets_miss:>8d}   "
            f"{row.packets_hit:>8.1f} {row.paper_packets_hit:>8d}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table2(run_table2()))
