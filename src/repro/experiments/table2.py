"""Table II: average DNS request latency per scheme, cache miss vs hit.

Paper setup: the requesting LRS reaches the ANS over a cable-modem path
with a 10.9 ms RTT.  Expected multiples of the RTT:

=============  =====  ====
scheme         miss   hit
=============  =====  ====
NS name        2x     1x
fabricated     3x     1x
TCP-based      3x     3x
modified DNS   2x     1x
=============  =====  ====

(paper measurements: 21.0/32.1/34.5/22.4 ms miss, 11.1/11.3/33.7/10.8 ms hit)
"""

from __future__ import annotations

import dataclasses

from ..dns import LrsSimulator
from .testbed import ANS_ADDRESS, GuardTestbed

SCHEMES = ("ns_name", "fabricated", "tcp", "modified")

#: The paper's measured values (milliseconds), for side-by-side reporting.
PAPER_MS = {
    "ns_name": {"miss": 21.0, "hit": 11.1},
    "fabricated": {"miss": 32.1, "hit": 11.3},
    "tcp": {"miss": 34.5, "hit": 33.7},
    "modified": {"miss": 22.4, "hit": 10.8},
}


@dataclasses.dataclass(slots=True)
class LatencyRow:
    scheme: str
    miss_ms: float
    hit_ms: float
    paper_miss_ms: float
    paper_hit_ms: float


def _build(scheme: str, seed: int):
    """Testbed + WAN client + load generator for one scheme."""
    if scheme == "ns_name":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="referral")
        client = bed.add_client("lrs", wan=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="referral", timeout=0.2)
    elif scheme == "fabricated":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", wan=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="nonreferral", timeout=0.2)
    elif scheme == "tcp":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer", guard_policy="tcp")
        client = bed.add_client("lrs", wan=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.2)
    elif scheme == "modified":
        bed = GuardTestbed(seed=seed, ans="simulator", ans_mode="answer")
        client = bed.add_client("lrs", wan=True, via_local_guard=True)
        lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain", timeout=0.2)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return bed, lrs


def measure_scheme(scheme: str, *, seed: int = 0, iterations: int = 12) -> tuple[float, float]:
    """(cache-miss ms, cache-hit ms) for one scheme."""
    bed, lrs = _build(scheme, seed)
    lrs.record_latencies = True
    lrs.start()
    # WAN RTT is ~11 ms; give each iteration up to 4 RTTs
    bed.run(iterations * 0.05)
    lrs.stop()
    latencies = lrs.latencies
    if len(latencies) < 4:
        raise RuntimeError(f"scheme {scheme}: only {len(latencies)} samples")
    miss = latencies[0] * 1000.0
    hits = latencies[2:]
    hit = sum(hits) / len(hits) * 1000.0
    return miss, hit


def run_table2(seed: int = 0) -> list[LatencyRow]:
    rows = []
    for scheme in SCHEMES:
        miss, hit = measure_scheme(scheme, seed=seed)
        rows.append(
            LatencyRow(
                scheme=scheme,
                miss_ms=miss,
                hit_ms=hit,
                paper_miss_ms=PAPER_MS[scheme]["miss"],
                paper_hit_ms=PAPER_MS[scheme]["hit"],
            )
        )
    return rows


def format_table2(rows: list[LatencyRow]) -> str:
    lines = [
        "Table II: average DNS request latency (msec); RTT = 10.9 msec",
        f"{'scheme':<12} {'miss':>8} {'paper':>8}   {'hit':>8} {'paper':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:<12} {row.miss_ms:>8.1f} {row.paper_miss_ms:>8.1f}   "
            f"{row.hit_ms:>8.1f} {row.paper_hit_ms:>8.1f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table2(run_table2()))
