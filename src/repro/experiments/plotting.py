"""Terminal (ASCII) plotting for the reproduced figures.

No plotting dependency is available offline, so the figures render as
Unicode charts good enough to eyeball the shapes the paper plots: the
protection-on plateau of Figure 6, the collapse knee of Figure 5, the
TCP proxy's decline in Figure 7.
"""

from __future__ import annotations

from typing import Sequence

#: Characters from empty to full, used for bar fills.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _format_number(value: float) -> str:
    if value >= 1000:
        return f"{value / 1000:.1f}K"
    if value >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str = "",
    width: int = 50,
    max_value: float | None = None,
) -> str:
    """A horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title
    peak = max_value if max_value is not None else max(values)
    peak = peak or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = min(value / peak, 1.0) * width
        whole = int(filled)
        fraction = filled - whole
        bar = "█" * whole
        if fraction > 0 and whole < width:
            bar += _BLOCKS[int(fraction * (len(_BLOCKS) - 1))]
        lines.append(f"{str(label):>{label_width}} │{bar:<{width}} {_format_number(value)}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multiple series plotted on one character grid, markers per series."""
    if not xs or not series:
        return title
    markers = "●○▲△■□◆◇"
    all_y = [y for ys in series.values() for y in ys]
    y_max = max(all_y) or 1.0
    y_min = 0.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / (y_max - y_min or 1.0) * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][col] = marker

    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            axis_value = _format_number(y_max)
        elif row_index == height - 1:
            axis_value = _format_number(y_min)
        else:
            axis_value = ""
        lines.append(f"{axis_value:>8} ┤{''.join(row)}")
    lines.append(f"{'':>8} └" + "─" * width)
    x_axis = f"{_format_number(x_min)}{_format_number(x_max):>{width - 4}}"
    lines.append(f"{'':>10}{x_axis}")
    if x_label:
        lines.append(f"{'':>10}{x_label:^{width}}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>10}{legend}")
    return "\n".join(lines)


def plot_fig5(points) -> str:
    """Figure 5(a) as a line chart."""
    on = sorted((p for p in points if p.protection), key=lambda p: p.attack_rate)
    off = sorted((p for p in points if not p.protection), key=lambda p: p.attack_rate)
    xs = [p.attack_rate / 1000 for p in on]
    return line_chart(
        xs,
        {
            "guard on": [p.legit_throughput for p in on],
            "guard off": [p.legit_throughput for p in off],
        },
        title="Figure 5(a): legitimate throughput (req/s) vs attack rate (K req/s)",
        x_label="attack rate (K req/s)",
    )


def plot_fig6(points) -> str:
    """Figure 6(a) as a line chart."""
    on = sorted((p for p in points if p.protection), key=lambda p: p.attack_rate)
    off = sorted((p for p in points if not p.protection), key=lambda p: p.attack_rate)
    xs = [p.attack_rate / 1000 for p in on]
    return line_chart(
        xs,
        {
            "guard on": [p.legit_throughput / 1000 for p in on],
            "guard off": [p.legit_throughput / 1000 for p in off],
        },
        title="Figure 6(a): legitimate throughput (K req/s) vs attack rate (K req/s)",
        x_label="attack rate (K req/s)",
    )


def plot_fig7(series_a, series_b) -> str:
    """Both Figure 7 panels as bar charts."""
    chart_a = bar_chart(
        [str(p.concurrency) for p in series_a],
        [p.throughput / 1000 for p in series_a],
        title="Figure 7(a): TCP proxy throughput (K req/s) by concurrent requests",
    )
    chart_b = bar_chart(
        [f"{p.attack_rate / 1000:.0f}K" for p in series_b],
        [p.throughput / 1000 for p in series_b],
        title="Figure 7(b): TCP proxy throughput (K req/s) by attack rate",
    )
    return chart_a + "\n\n" + chart_b
