"""Experiment runners reproducing every table and figure of the paper."""

from .calibration import (
    ANS_LINK_DELAY,
    DEFAULT_GUARD_COSTS,
    FIG5_ACTIVATION_THRESHOLD,
    LAN_LINK_DELAY,
    ROOT_SERVER_PEAK_RATE,
    WAN_LINK_DELAY,
    WAN_RTT,
)
from .fluid import FluidModel, format_predictions
from .hierarchy import GuardedHierarchy
from .testbed import ANS_ADDRESS, COOKIE_SUBNET, GUARD_ADDRESS, GuardTestbed

__all__ = [
    "ANS_ADDRESS",
    "ANS_LINK_DELAY",
    "COOKIE_SUBNET",
    "DEFAULT_GUARD_COSTS",
    "FIG5_ACTIVATION_THRESHOLD",
    "FluidModel",
    "GUARD_ADDRESS",
    "GuardTestbed",
    "GuardedHierarchy",
    "LAN_LINK_DELAY",
    "ROOT_SERVER_PEAK_RATE",
    "WAN_LINK_DELAY",
    "WAN_RTT",
    "format_predictions",
]
