"""Overload signals for the control plane: pure reads, windowed deltas.

The controller must observe without participating: every signal here is
derived from monotone counters (guard decision counts, limiter denials,
CPU accounting, TCP stale/cookie-failure totals) by differencing two
snapshots across the sweep interval.  Nothing in this module mutates
simulation state — in particular the offered rate is computed from the
``queries_seen`` delta rather than :meth:`RateEstimator.rate_now`, which
advances the estimator's window and would therefore race with the guard's
own activation decision.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..guard.pipeline import RemoteDnsGuard

#: Shared-state declaration for the race analyser: the reader's snapshot
#: fields are rewritten wholesale on every boundary-lane sweep.
__shared_state__ = {
    "SignalReader": {
        "guarded": [
            "_last_time",
            "_busy_at_last",
            "_counters_at_last",
        ],
    },
}

#: Counter attributes differenced per interval: ``(owner, attribute)``
#: where owner is ``"guard"``, ``"cpu"`` or ``"tcp"``.
_COUNTER_SOURCES: tuple[tuple[str, str], ...] = (
    ("guard", "queries_seen"),
    ("guard", "invalid_drops"),
    ("guard", "rl1_drops"),
    ("guard", "rl2_drops"),
    ("guard", "overload_drops"),
    ("guard", "admission_shed"),
    ("cpu", "jobs_dropped"),
    ("cpu", "work_dropped_seconds"),
    ("tcp", "cookie_failures"),
    ("tcp", "stale_segments"),
)


@dataclasses.dataclass(slots=True)
class SignalSnapshot:
    """One sweep's view of the guard, all rates in events/second."""

    time: float
    interval: float
    cpu_utilization: float
    offered_rate: float
    cookie_failure_rate: float
    rl1_denial_rate: float
    rl2_denial_rate: float
    queue_drop_rate: float
    work_dropped_rate: float  # CPU-seconds burned discarding, per second
    admission_shed_rate: float
    stale_segment_rate: float


class SignalReader:
    """Windowed-delta sampler over one guard's observable counters."""

    def __init__(self, guard: "RemoteDnsGuard"):
        self.guard = guard
        self._last_time = guard.node.sim.now
        self._busy_at_last = guard.node.cpu.completed_busy_seconds()
        self._counters_at_last = self._read_counters()

    def _read_counters(self) -> dict[tuple[str, str], float]:
        owners = {
            "guard": self.guard,
            "cpu": self.guard.node.cpu,
            "tcp": self.guard.node.tcp,
        }
        return {
            (owner, attr): float(getattr(owners[owner], attr))
            for owner, attr in _COUNTER_SOURCES
        }

    def rebase(self) -> None:
        """Forget history (after a crash/revert) so the next sample does
        not blame the new configuration for the old one's backlog."""
        self._last_time = self.guard.node.sim.now
        self._busy_at_last = self.guard.node.cpu.completed_busy_seconds()
        self._counters_at_last = self._read_counters()

    def sample(self) -> SignalSnapshot:
        """Difference counters since the previous sample (or rebase)."""
        guard = self.guard
        cpu = guard.node.cpu
        now = guard.node.sim.now
        interval = now - self._last_time
        utilization = cpu.utilization(self._busy_at_last, self._last_time)
        counters = self._read_counters()
        prev = self._counters_at_last
        scale = 1.0 / interval if interval > 0 else 0.0

        def rate(owner: str, attr: str) -> float:
            return (counters[(owner, attr)] - prev[(owner, attr)]) * scale

        snapshot = SignalSnapshot(
            time=now,
            interval=interval,
            cpu_utilization=utilization,
            offered_rate=rate("guard", "queries_seen"),
            cookie_failure_rate=rate("guard", "invalid_drops")
            + rate("tcp", "cookie_failures"),
            rl1_denial_rate=rate("guard", "rl1_drops"),
            rl2_denial_rate=rate("guard", "rl2_drops"),
            queue_drop_rate=rate("cpu", "jobs_dropped"),
            work_dropped_rate=rate("cpu", "work_dropped_seconds"),
            admission_shed_rate=rate("guard", "admission_shed"),
            stale_segment_rate=rate("tcp", "stale_segments"),
        )
        self._last_time = now
        self._busy_at_last = cpu.completed_busy_seconds()
        self._counters_at_last = counters
        return snapshot
