"""The sanctioned actuator seam: how the controller touches the guard.

Each actuator owns one degradation axis and knows how to map a global
escalation *level* (0 = safe static base, 3 = maximum shedding) onto the
guard's mutating entry points (``set_policy``, ``reconfigure``,
``set_admission``, ``rotate_cookie_key``) — the only places the control
plane is allowed to write, which analysis rule W002 enforces for the
observability layer.  Every actuator records its base configuration at
construction so ``revert()`` restores the exact pre-controller state;
that is what the watchdog and the crash-composition path rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..guard.cookie import random_key
from ..guard.pipeline import AdmissionControl

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from ..guard.pipeline import RemoteDnsGuard

#: Shared-state declaration for the race analyser: actuator level state is
#: rewritten from the controller's boundary-lane sweep.
__shared_state__ = {
    "SchemeActuator": {"guarded": ["level"]},
    "RateLimitActuator": {"guarded": ["level"]},
    "AdmissionActuator": {"guarded": ["level", "_control"]},
    "KeyRotationActuator": {
        "guarded": ["level", "_last_rotation"],
        "commutative": ["rotations"],
    },
}


class Actuator:
    """One degradation axis.  Subclasses override :meth:`apply`."""

    name = "actuator"

    def __init__(self) -> None:
        self.level = 0

    def apply(self, level: int) -> bool:
        """Move to ``level``; returns True when anything changed."""
        if level == self.level:
            return False
        self.level = level
        self._enact(level)
        return True

    def revert(self) -> None:
        """Restore the exact pre-controller configuration."""
        self.level = 0
        self._enact(0)

    def tick(self, now: float) -> bool:
        """Periodic hook for time-based actuators; default no-op."""
        return False

    def _enact(self, level: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SchemeActuator(Actuator):
    """Escalate the challenge scheme for unverified plain queries.

    Level 0-1 keep the configured base policy (the cheap DNS-cookie
    challenge); level 2 falls back to TCP (a harder, costlier proof of
    address); level 3 stops challenging entirely — modified-DNS posture:
    only cookie-bearing traffic is served, plain queries are dropped at
    one verification's cost.
    """

    name = "scheme"

    def __init__(self, guard: "RemoteDnsGuard"):
        super().__init__()
        self.guard = guard
        self._base_policy = guard._policy

    def _enact(self, level: int) -> None:
        if level >= 3:
            self.guard.set_policy("drop")
        elif level == 2:
            self.guard.set_policy("tcp")
        else:
            self.guard.set_policy(self._base_policy)


class RateLimitActuator(Actuator):
    """Hot-tune Rate-Limiter1/2 thresholds against the saved base rates.

    RL1 (unverified responses) tightens aggressively with the level: it
    is the reflector-amplification valve and costs legitimate clients
    nothing once they hold a cookie.  RL2 (verified requests) tightens
    mildly and never below half the base so a verified LRS keeps working.
    """

    name = "ratelimit"

    #: multiplier per level, applied to the base (rate, burst)
    RL1_FACTORS = (1.0, 0.5, 0.25, 0.1)
    RL2_FACTORS = (1.0, 1.0, 0.5, 0.5)

    def __init__(self, guard: "RemoteDnsGuard"):
        super().__init__()
        self.guard = guard
        self._base_rl1 = (guard.rl1.per_source_rate, guard.rl1.per_source_burst)
        self._base_rl2 = (guard.rl2.per_host_rate, guard.rl2.per_host_burst)

    def _enact(self, level: int) -> None:
        idx = max(0, min(level, len(self.RL1_FACTORS) - 1))
        f1 = self.RL1_FACTORS[idx]
        f2 = self.RL2_FACTORS[idx]
        self.guard.rl1.reconfigure(self._base_rl1[0] * f1, self._base_rl1[1] * f1)
        self.guard.rl2.reconfigure(self._base_rl2[0] * f2, self._base_rl2[1] * f2)


class AdmissionActuator(Actuator):
    """Engage priority-aware ingress shedding in place of blind FIFO drops.

    Level 0 removes admission control entirely; level 1-2 shed unverified
    sources once the CPU backlog passes half the queue limit; level 3
    sheds earlier (a quarter) so verified traffic keeps more headroom.
    """

    name = "admission"

    def __init__(self, guard: "RemoteDnsGuard", *, verified_ttl: float = 5.0):
        super().__init__()
        self.guard = guard
        self.verified_ttl = verified_ttl
        # installed *disengaged* from the start so the guard's verified-
        # source cache warms up during calm operation; engaging later with
        # an empty cache would shed the very clients whose verifications
        # could never happen (the gate runs before verification)
        self._control = AdmissionControl(
            engaged=False, verified_ttl=verified_ttl
        )
        guard.set_admission(self._control)

    def _enact(self, level: int) -> None:
        if level <= 0:
            self._control.engaged = False
            return
        self._control.engaged = True
        self._control.shed_backlog_fraction = 0.25 if level >= 3 else 0.5


class KeyRotationActuator(Actuator):
    """Rotate the cookie key on a cadence while escalated.

    Rotation invalidates every cookie an attacker may have harvested, but
    the generation-parity scheme tolerates exactly **one** outstanding
    generation — a second rotation kills every cookie cached before the
    first, and local guards cache for days without re-probing on failure.
    So rotations are budgeted: the actuator compares the factory's
    generation against its baseline and refuses once the budget is spent
    (a crash-restart rotation consumes it too).
    """

    name = "key-rotation"

    def __init__(
        self,
        guard: "RemoteDnsGuard",
        rng: "random.Random",
        *,
        period: float = 5.0,
        engage_level: int = 2,
        max_rotations: int = 1,
    ):
        super().__init__()
        self.guard = guard
        self.rng = rng
        self.period = period
        self.engage_level = engage_level
        self.max_rotations = max_rotations
        self._base_generation = guard.cookies.generation
        # period counts from construction: escalating does not rotate
        # immediately, it only *starts the clock* ticking faster
        self._last_rotation = guard.node.sim.now
        self.rotations = 0

    def _enact(self, level: int) -> None:
        # nothing to do on level change itself; rotation is time-driven
        return

    def tick(self, now: float) -> bool:
        if self.level < self.engage_level:
            return False
        if self.guard.cookies.generation - self._base_generation >= self.max_rotations:
            return False
        if now - self._last_rotation < self.period:
            return False
        self.guard.rotate_cookie_key(random_key(self.rng))
        self._last_rotation = now
        self.rotations += 1
        return True


def default_actuators(
    guard: "RemoteDnsGuard", rng: "random.Random"
) -> list[Actuator]:
    """The full ladder: scheme + limiter tuning + admission + key rotation."""
    return [
        SchemeActuator(guard),
        RateLimitActuator(guard),
        AdmissionActuator(guard),
        KeyRotationActuator(guard, rng),
    ]
