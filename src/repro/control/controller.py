"""The closed-loop guard controller: sample, decide, actuate, fail safe.

``GuardController`` runs a deterministic sweep on a fixed cadence in the
``BOUNDARY_PRIORITY`` lane — the same lane as fault onsets and the
guard's own soft-state sweeper, so control actions apply *before* any
packet delivery sharing the same instant.  Each sweep samples the
:class:`~repro.control.signals.SignalReader`, updates hot/cool streaks
with hysteresis, and (subject to a cooldown and a bounded actions-per-
window budget) moves the global escalation level up or down, pushing it
through every registered actuator.

Robustness contract:

* **watchdog** — any exception escaping a sweep reverts every actuator
  to its recorded safe base configuration and permanently disables the
  controller for the run (``failed=True``); the guard keeps running on
  the static config.
* **crash composition** — a :class:`~repro.faults.GuardCrash` wipes the
  guard's soft state; the next sweep notices the ``crashes`` counter
  moved, reverts to the safe config (the restarted guard must not come
  back escalated) and rebases the signal window.
* **determinism** — all controller randomness comes from
  ``child_rng("control")``; with ``enabled=False`` the controller
  schedules nothing and draws nothing, so ``--sanitize`` traces are
  bit-identical to a run without it.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from ..netsim import BOUNDARY_PRIORITY
from .actuators import Actuator, default_actuators
from .signals import SignalReader, SignalSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..guard.pipeline import RemoteDnsGuard

#: Shared-state declaration for the race analyser: everything the
#: boundary-lane sweep rewrites, plus monotone action counters.
__shared_state__ = {
    "GuardController": {
        "guarded": [
            "level",
            "failed",
            "failure",
            "last_snapshot",
            "_hot_streak",
            "_cool_streak",
            "_last_action",
            "_action_times",
            "_handle",
            "_crashes_seen",
            "actions",
        ],
        "commutative": [
            "sweeps",
            "escalations",
            "deescalations",
            "reverts",
            "rotations",
            "actions_suppressed",
        ],
    },
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  Both collections are internally driven
#: (the controller budgets its own actions); the budget window prunes
#: ``_action_times`` on every budget check, and the audit log displaces
#: oldest-first at its cap so a year-long deployment cannot grow it.
__state_bounds__ = {
    "GuardController": {
        "_action_times": {"bound": 16, "evicted_by": "sweep", "keyed_by": "internal"},
        "actions": {"bound": 4096, "evicted_by": "cap", "keyed_by": "internal"},
    },
}

#: Hard cap on the retained action audit log.
ACTION_LOG_CAP = 4096


@dataclasses.dataclass(slots=True)
class ControlConfig:
    """Tuning knobs for the control loop (all times in virtual seconds)."""

    #: sweep period; also the signal-window length
    cadence: float = 0.05
    #: CPU utilisation at/above which a sweep counts as *hot*
    escalate_util: float = 0.9
    #: CPU utilisation at/below which a sweep may count as *cool*
    deescalate_util: float = 0.6
    #: consecutive hot sweeps before escalating (debounce)
    escalate_after: int = 2
    #: consecutive cool sweeps before de-escalating (hysteresis)
    deescalate_after: int = 6
    #: minimum time between level changes
    cooldown: float = 0.2
    #: highest escalation level
    max_level: int = 3
    #: actuation budget: at most this many actions per ``action_window``
    max_actions_per_window: int = 8
    action_window: float = 1.0


class GuardController:
    """Closed-loop graceful degradation for one :class:`RemoteDnsGuard`."""

    def __init__(
        self,
        guard: "RemoteDnsGuard",
        *,
        config: ControlConfig | None = None,
        actuators: list[Actuator] | None = None,
        enabled: bool = True,
    ):
        self.guard = guard
        self.sim = guard.node.sim
        self.config = config if config is not None else ControlConfig()
        self.enabled = enabled
        # a disabled controller must leave zero footprint: no child RNG
        # stream, no actuators touched, nothing scheduled
        if enabled:
            self.rng = self.sim.child_rng("control")
            self.actuators = (
                actuators
                if actuators is not None
                else default_actuators(guard, self.rng)
            )
        else:
            self.rng = None
            self.actuators = actuators if actuators is not None else []
        self.reader = SignalReader(guard)
        self.level = 0
        self.failed = False
        self.failure: str | None = None
        self.last_snapshot: SignalSnapshot | None = None
        self._hot_streak = 0
        self._cool_streak = 0
        self._last_action = float("-inf")
        self._action_times: list[float] = []
        self._handle = None
        self._crashes_seen = guard.crashes
        #: chronological ``(time, action, level)`` log
        self.actions: list[tuple[float, str, int]] = []
        self.sweeps = 0
        self.escalations = 0
        self.deescalations = 0
        self.reverts = 0
        self.rotations = 0
        self.actions_suppressed = 0
        if self.sim.obs is not None:
            self.sim.obs.add_snapshot(f"control.{guard.node.name}", self.summary)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "GuardController":
        """Begin sweeping; a no-op when disabled or already started."""
        if not self.enabled or self.failed or self._handle is not None:
            return self
        # Boundary lane, like fault onsets and the guard sweeper: control
        # actions apply before same-instant packet deliveries.  Overlap
        # with those writers is serialized by lane contract.
        self._handle = self.sim.schedule(  # repro: allow[R003,R004] boundary-lane control sweep serializes with fault actions and guard sweeps by contract
            self.config.cadence, self._sweep, priority=BOUNDARY_PRIORITY
        )
        return self

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- sweep -------------------------------------------------------------

    def _sweep(self) -> None:
        self._handle = None
        self.sweeps += 1
        try:
            self._tick()
        except Exception as exc:  # watchdog: fail safe, never take the run down
            self._watchdog_trip(exc)
            return
        self._handle = self.sim.schedule(  # repro: allow[R003,R004,P006] fixed-cadence control sweep is the sampling clock; boundary lane serializes with other state writers
            self.config.cadence, self._sweep, priority=BOUNDARY_PRIORITY
        )

    def _tick(self) -> None:
        guard = self.guard
        now = self.sim.now
        if guard.crashes != self._crashes_seen:
            # the guard crashed (and possibly restarted) since last sweep:
            # its soft state is gone, so an escalated posture no longer
            # matches reality — revert to the safe static config and start
            # observing from scratch
            self._crashes_seen = guard.crashes
            self.revert_to_safe("guard-crash")
            self.reader.rebase()
            return
        if guard.down:
            # dead inline hardware: nothing to observe, nothing to actuate
            self.reader.rebase()
            return
        snapshot = self.reader.sample()
        self.last_snapshot = snapshot
        cfg = self.config
        overloaded = (
            snapshot.queue_drop_rate > 0.0 or snapshot.work_dropped_rate > 0.0
        )
        hot = snapshot.cpu_utilization >= cfg.escalate_util or overloaded
        cool = snapshot.cpu_utilization <= cfg.deescalate_util and not overloaded
        if hot:
            self._hot_streak += 1
            self._cool_streak = 0
        elif cool:
            self._cool_streak += 1
            self._hot_streak = 0
        else:
            self._hot_streak = 0
            self._cool_streak = 0
        if hot and self._hot_streak >= cfg.escalate_after and self.level < cfg.max_level:
            self._change_level(self.level + 1, now, "escalate")
        elif cool and self._cool_streak >= cfg.deescalate_after and self.level > 0:
            self._change_level(self.level - 1, now, "deescalate")
        # time-based actuators (key rotation) run inside the same budget
        for actuator in self.actuators:
            if self._budget_left(now) and actuator.tick(now):
                self.rotations += 1
                self._note_action(now, "tick:" + actuator.name)

    def _change_level(self, level: int, now: float, kind: str) -> None:
        cfg = self.config
        if now - self._last_action < cfg.cooldown:
            return
        if not self._budget_left(now):
            self.actions_suppressed += 1
            return
        self.level = level
        for actuator in self.actuators:
            actuator.apply(level)
        self._last_action = now
        self._hot_streak = 0
        self._cool_streak = 0
        if kind == "escalate":
            self.escalations += 1
        else:
            self.deescalations += 1
        self._note_action(now, kind)

    def _budget_left(self, now: float) -> bool:
        window_start = now - self.config.action_window
        self._action_times = [t for t in self._action_times if t > window_start]
        return len(self._action_times) < self.config.max_actions_per_window

    def _note_action(self, now: float, kind: str) -> None:
        self._action_times.append(now)
        self._log_action((now, kind, self.level))

    def _log_action(self, entry: tuple[float, str, int]) -> None:
        """Append to the audit log, displacing the oldest entry at the cap."""
        self.actions.append(entry)
        if len(self.actions) > ACTION_LOG_CAP:
            del self.actions[0]

    # -- fail-safe ---------------------------------------------------------

    def revert_to_safe(self, reason: str) -> None:
        """Drop to level 0 and restore every actuator's base config."""
        for actuator in self.actuators:
            actuator.revert()
        self.level = 0
        self._hot_streak = 0
        self._cool_streak = 0
        self.reverts += 1
        self._log_action((self.sim.now, "revert:" + reason, 0))

    def _watchdog_trip(self, exc: Exception) -> None:
        """A sweep raised: revert to the safe static config and stop."""
        self.failed = True
        self.failure = type(exc).__name__ + ": " + str(exc)
        try:
            self.revert_to_safe("controller-crash")
        except Exception as revert_exc:
            # even a broken revert must not take the run down; record it
            # so the failure is visible in the summary, not swallowed
            self.failure += " / revert failed: " + type(revert_exc).__name__
        self.stop()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, int | float]:
        """Counters snapshot (also exported via obs, when installed)."""
        return {
            "enabled": int(self.enabled),
            "level": self.level,
            "sweeps": self.sweeps,
            "escalations": self.escalations,
            "deescalations": self.deescalations,
            "reverts": self.reverts,
            "rotations": self.rotations,
            "actions_suppressed": self.actions_suppressed,
            "failed": int(self.failed),
        }
