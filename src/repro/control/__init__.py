"""Adaptive overload control plane for the DNS guard (ROADMAP item 5).

Closes the loop the paper leaves open: §IV.C contrasts an overloaded
BIND dropping requests blindly with a guard that sheds *spoofed* load —
this package watches the guard's overload signals and escalates the
cheapest sufficient defence (scheme fallback, limiter tightening,
priority-aware admission, key rotation), de-escalates with hysteresis,
and fails safe back to the static configuration when anything goes
wrong.  See DESIGN.md "Overload & degradation model".
"""

from .actuators import (
    Actuator,
    AdmissionActuator,
    KeyRotationActuator,
    RateLimitActuator,
    SchemeActuator,
    default_actuators,
)
from .controller import ControlConfig, GuardController
from .signals import SignalReader, SignalSnapshot

__layer__ = "adapter"

__all__ = [
    "Actuator",
    "AdmissionActuator",
    "ControlConfig",
    "GuardController",
    "KeyRotationActuator",
    "RateLimitActuator",
    "SchemeActuator",
    "SignalReader",
    "SignalSnapshot",
    "default_actuators",
]
