"""Hierarchical spans over virtual time.

A span is one step of a query's lifecycle — the stub's attempt, the
guard's scheme decision, the recursive's resolution, the ANS's serve —
linked parent-to-child so a finished run can be rendered as a tree:

    lrs.interaction qname=a.example.
      lrs.leg leg=first
      guard.decision scheme=ns_name outcome=challenge
      ...

Spans live purely on the virtual clock and never touch the simulator:
starting or ending a span schedules nothing and draws no randomness, so
span collection cannot perturb an event trace (rule W002 enforces this).

The log is bounded: past ``max_spans`` new starts are counted in
``dropped`` instead of stored, so tracing a long attack run cannot grow
memory without limit.
"""

from __future__ import annotations

from typing import Callable, Iterator


class Span:
    """One timed step, possibly parented to another span."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attrs",
        "_log",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict,
        log: "SpanLog",
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs = attrs
        self._log = log

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float | None:
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, *, at: float | None = None, **attrs) -> "Span":
        """End the span (idempotent; first finish wins)."""
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.end = self._log.now() if at is None else at
        return self

    def child(self, name: str, *, at: float | None = None, **attrs) -> "Span":
        return self._log.start(name, parent=self, at=at, **attrs)

    def snapshot(self) -> dict:
        # Attrs may hold rich objects (Name, IPv4Address) — instrumentation
        # sites pass them raw to keep the hot path cheap; stringify here, on
        # the cold export path, so snapshots stay JSON-safe.
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": {
                k: v if isinstance(v, (str, int, float, bool, type(None))) else str(v)
                for k, v in self.attrs.items()
            },
        }

    def __repr__(self) -> str:
        state = f"end={self.end}" if self.end is not None else "open"
        return f"Span(#{self.span_id} {self.name} start={self.start} {state})"


class _NullSpan:
    """Inert stand-in returned when the log is at capacity.

    Accepting the same calls as :class:`Span` keeps instrumentation sites
    unconditional — they never need to know the log overflowed.  It is
    falsy, so hot paths can use ``if span:`` to skip bookkeeping (side
    tables, packet tagging) that only matters for spans actually stored.
    """

    __slots__ = ()

    span_id = -1
    parent_id = None
    name = "<dropped>"
    start = 0.0
    end = 0.0
    finished = True
    duration = 0.0
    attrs: dict = {}

    def __bool__(self) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def finish(self, *, at: float | None = None, **attrs) -> "_NullSpan":
        return self

    def child(self, name: str, *, at: float | None = None, **attrs) -> "_NullSpan":
        return self

    def snapshot(self) -> dict:
        return {}


NULL_SPAN = _NullSpan()

#: Default cap on stored spans — generous for experiments, finite for floods.
DEFAULT_MAX_SPANS = 200_000


class SpanLog:
    """Append-only store of spans sharing one virtual clock."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        #: Set once the cap is reached.  Hot instrumentation sites check it
        #: to skip span construction entirely, so ``dropped`` is a lower
        #: bound on the spans turned away.
        self.exhausted = max_spans <= 0
        self._next_id = 1

    def now(self) -> float:
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def start(
        self,
        name: str,
        *,
        parent: "Span | _NullSpan | None" = None,
        at: float | None = None,
        **attrs,
    ) -> Span | _NullSpan:
        """Open a span; ``at`` overrides the start time (planned timelines)."""
        if len(self.spans) >= self.max_spans:
            self.exhausted = True
            self.dropped += 1
            return NULL_SPAN
        # NULL_SPAN parents (falsy) contribute no linkage; **attrs is already
        # a fresh dict, so it is stored without copying
        span = Span(
            self._next_id,
            parent.span_id if parent else None,
            name,
            self._clock() if at is None else at,
            attrs,
            self,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def point(
        self,
        name: str,
        *,
        parent: "Span | _NullSpan | None" = None,
        at: float | None = None,
        **attrs,
    ) -> Span | _NullSpan:
        """A zero-duration span — an instantaneous event on the timeline."""
        when = self._clock() if at is None else at
        span = self.start(name, parent=parent, at=when, **attrs)
        span.finish(at=when)
        return span

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def subtree(self, span: Span) -> list[Span]:
        """``span`` plus all descendants, depth-first in start order."""
        out = [span]
        for child in sorted(self.children_of(span), key=lambda s: (s.start, s.span_id)):
            out.extend(self.subtree(child))
        return out

    def snapshot(self) -> list[dict]:
        return [s.snapshot() for s in self.spans]

    def render(self, *, limit: int | None = None) -> str:
        """Indented tree of all spans, roots in start order."""
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            if limit is not None and len(lines) >= limit:
                return
            dur = span.duration
            dur_text = f" dur={dur * 1000:.3f}ms" if dur is not None else " (open)"
            attr_text = "".join(
                f" {k}={v}" for k, v in sorted(span.attrs.items())
            )
            lines.append(
                f"{'  ' * depth}{span.name} @{span.start:.6f}{dur_text}{attr_text}"
            )
            for child in sorted(
                self.children_of(span), key=lambda s: (s.start, s.span_id)
            ):
                emit(child, depth + 1)

        for root in sorted(self.roots(), key=lambda s: (s.start, s.span_id)):
            emit(root, 0)
            if limit is not None and len(lines) >= limit:
                lines.append(f"... ({len(self.spans)} spans total)")
                break
        if self.dropped:
            lines.append(f"... {self.dropped} spans dropped at cap {self.max_spans}")
        return "\n".join(lines)
