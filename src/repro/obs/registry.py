"""Typed metric registry: counters, gauges and histograms with labels.

This replaces the scattered per-component stats dicts with one queryable
store.  Three metric kinds cover everything the paper's evaluation plots:

* :class:`Counter` — monotone totals (packets seen, drops per reason).
  With ``interval`` set, increments additionally accumulate into
  virtual-time buckets, yielding the throughput-over-time series of
  Figures 5–7 *without scheduling a single sampling event*: the bucket
  index is derived from the registry clock at increment time.
* :class:`Gauge` — last-write-wins level (CPU utilisation, queue depth).
  With ``track_history=True`` every ``set`` appends an exact
  ``(time, value)`` sample — the storage behind the legacy
  :class:`repro.metrics.ThroughputSeries` / ``CpuSeries`` shims.
* :class:`Histogram` — bucketed distributions (request latency).  Bucket
  edges are inclusive upper bounds (Prometheus ``le`` semantics).

Everything here is **observe-only**: the registry never schedules events
and never touches simulator randomness, so enabling it cannot perturb an
event trace (rule W002 machine-checks this for the whole package).
Iteration orders are insertion-or-sorted, never hash-dependent.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Iterator

#: Default histogram bucket upper bounds (seconds-flavoured, but unitless).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default width of a time bucket for ``interval``-enabled counters.
DEFAULT_SERIES_INTERVAL = 0.1

LabelsTuple = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, str]) -> LabelsTuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))  # repro: allow[P005] label sets are tiny and sorting is the canonical-key contract


def format_labels(labels: LabelsTuple) -> str:
    """``{a=1,b=2}`` for a labels tuple; empty string when unlabelled."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return "{" + inner + "}"


class Metric:
    """Common identity shared by every metric kind."""

    kind: str = "metric"

    __slots__ = ("name", "labels", "description")

    def __init__(self, name: str, labels: LabelsTuple, description: str):
        self.name = name
        self.labels = labels
        self.description = description

    @property
    def full_name(self) -> str:
        return f"{self.name}{format_labels(self.labels)}"

    def snapshot(self) -> dict:
        """A JSON-safe description of this metric's current state."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name})"


class Counter(Metric):
    """A monotone total, optionally time-bucketed on the virtual clock."""

    kind = "counter"

    __slots__ = ("value", "interval", "_buckets", "_clock")

    def __init__(
        self,
        name: str,
        labels: LabelsTuple,
        description: str,
        *,
        clock: Callable[[], float],
        interval: float | None = None,
    ):
        super().__init__(name, labels, description)
        if interval is not None and interval <= 0:
            raise ValueError("series interval must be positive")
        self.value = 0.0
        self.interval = interval
        self._buckets: dict[int, float] = {}
        self._clock = clock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        self.value += amount
        if self.interval is not None:
            bucket = int(self._clock() / self.interval)
            self._buckets[bucket] = self._buckets.get(bucket, 0.0) + amount

    def series(self) -> list[tuple[float, float]]:
        """Sorted ``(bucket_start_time, amount_in_bucket)`` pairs."""
        if self.interval is None:
            return []
        return [(b * self.interval, v) for b, v in sorted(self._buckets.items())]

    def rate_series(self) -> list[tuple[float, float]]:
        """Sorted ``(bucket_start_time, amount / interval)`` pairs."""
        if self.interval is None:
            return []
        return [(t, v / self.interval) for t, v in self.series()]

    def snapshot(self) -> dict:
        data: dict = {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.interval is not None:
            data["interval"] = self.interval
            data["series"] = self.series()
        return data


class Gauge(Metric):
    """A level: set/add, with optional exact sample history."""

    kind = "gauge"

    __slots__ = ("value", "track_history", "history", "_clock")

    def __init__(
        self,
        name: str,
        labels: LabelsTuple,
        description: str,
        *,
        clock: Callable[[], float],
        track_history: bool = False,
    ):
        super().__init__(name, labels, description)
        self.value = 0.0
        self.track_history = track_history
        self.history: list[tuple[float, float]] = []
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.track_history:
            self.history.append((self._clock(), self.value))

    def add(self, amount: float) -> None:
        self.set(self.value + amount)

    def mean(self) -> float:
        if not self.history:
            return 0.0
        return sum(v for _, v in self.history) / len(self.history)

    def series(self) -> list[tuple[float, float]]:
        return list(self.history)

    def snapshot(self) -> dict:
        data: dict = {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.track_history:
            data["series"] = self.series()
        return data


class Histogram(Metric):
    """A distribution over fixed buckets (inclusive upper bounds).

    ``observe(v)`` lands in the first bucket whose upper bound is >= v;
    values above the last edge land in the implicit +inf overflow bucket.
    """

    kind = "histogram"

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelsTuple,
        description: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels, description)
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, count_le)`` pairs, ending with ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for edge, n in zip(self.buckets, self.counts):
            running += n
            out.append((edge, running))
        out.append((math.inf, self.count))
        return out

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the p-th percentile."""
        if not self.count:
            return math.nan
        threshold = p / 100.0 * self.count
        for edge, running in self.cumulative():
            if running >= threshold:
                return edge
        return math.inf  # pragma: no cover - cumulative always reaches count

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


class MetricRegistry:
    """The typed store: one instance per observability context.

    Metrics are created on first use and looked up by ``(name, labels)``;
    asking for an existing name with a different kind is an error (it
    would silently split one logical metric into two stores).
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._metrics: dict[tuple[str, LabelsTuple], Metric] = {}

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def _tick(self) -> float:
        return self._clock()

    # -- creation / lookup ---------------------------------------------------

    def _get(self, kind: type, name: str, labels: dict[str, str]) -> Metric | None:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            return None
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {kind.__name__.lower()}"
            )
        return metric

    def counter(
        self,
        name: str,
        description: str = "",
        *,
        interval: float | None = None,
        **labels: str,
    ) -> Counter:
        existing = self._get(Counter, name, labels)
        if existing is not None:
            return existing
        metric = Counter(
            name, _labels_key(labels), description, clock=self._tick, interval=interval
        )
        self._metrics[(name, metric.labels)] = metric
        return metric

    def gauge(
        self,
        name: str,
        description: str = "",
        *,
        track_history: bool = False,
        **labels: str,
    ) -> Gauge:
        existing = self._get(Gauge, name, labels)
        if existing is not None:
            return existing
        metric = Gauge(
            name,
            _labels_key(labels),
            description,
            clock=self._tick,
            track_history=track_history,
        )
        self._metrics[(name, metric.labels)] = metric
        return metric

    def histogram(
        self,
        name: str,
        description: str = "",
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        existing = self._get(Histogram, name, labels)
        if existing is not None:
            return existing
        metric = Histogram(name, _labels_key(labels), description, buckets=buckets)
        self._metrics[(name, metric.labels)] = metric
        return metric

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        """Metrics in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def find(self, name: str) -> list[Metric]:
        """Every metric (any label set) registered under ``name``."""
        return [m for m in self if m.name == name]

    def snapshot(self) -> list[dict]:
        """JSON-safe snapshots of every metric, deterministically ordered."""
        return [metric.snapshot() for metric in self]
