"""The observability context: one object owning registry, spans, taps, profiler.

Install with :func:`installed` (or :func:`repro.netsim.set_observability`
directly) and every :class:`~repro.netsim.Simulator` constructed while it
is active attaches itself: the registry and span log follow that
simulator's virtual clock, nodes and links self-register for end-of-run
snapshots, and — with ``profile=True`` — the event loop is bracketed by
the wall-clock profiler.

The contract, machine-checked by analysis rule W002 for this whole
package: observation never *participates*.  Nothing here schedules an
event, draws from ``Simulator.rng``, or alters a packet the simulation
can see — so ``--sanitize`` trace hashes are bit-identical with
observability on or off.
"""

from __future__ import annotations

import contextlib
import os
from typing import TYPE_CHECKING, Callable, Iterator

from . import exporters
from .profiler import WallClockProfiler, write_bench_profile
from .registry import Counter, Gauge, Histogram, MetricRegistry
from .spans import DEFAULT_MAX_SPANS, Span, SpanLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.link import Link
    from ..netsim.node import Node
    from ..netsim.simulator import Simulator
    from ..netsim.trace import PacketTracer


class Observability:
    """Everything one run records: metrics, spans, packet taps, profile."""

    def __init__(
        self,
        *,
        profile: bool = False,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self._sim: "Simulator | None" = None
        self.registry = MetricRegistry(self._now)
        self.spans = SpanLog(self._now, max_spans=max_spans)
        #: Hot-path alias: ``obs.span(...)`` is ``obs.spans.start(...)``
        #: without an extra frame.
        self.span = self.spans.start
        self.profiler: WallClockProfiler | None = (
            WallClockProfiler() if profile else None
        )
        self.tracers: list["PacketTracer"] = []
        self._nodes: list["Node"] = []
        self._links: list["Link"] = []
        self._snapshots: list[tuple[str, Callable[[], dict]]] = []
        #: Span carried by the packet currently being delivered, if any.
        #: Set/reset by ``UdpStack.demux`` around the socket handler so
        #: receive-side instrumentation can parent onto the sender's span
        #: without changing any handler signature.
        self._inbound_span: Span | None = None

    # -- clock ---------------------------------------------------------------

    def _now(self) -> float:
        sim = self._sim
        return sim.now if sim is not None else 0.0

    @property
    def now(self) -> float:
        return self._now()

    # -- registration (called from netsim constructors) ----------------------

    def register(self, sim: "Simulator") -> None:
        """Attach to a newly built simulator; the latest one owns the clock."""
        self._sim = sim
        sim.obs = self
        if self.profiler is not None:
            sim.step_profiler = self.profiler

    def register_node(self, node: "Node") -> None:
        self._nodes.append(node)

    def register_link(self, link: "Link") -> None:
        self._links.append(link)

    def add_snapshot(self, name: str, fn: Callable[[], dict]) -> None:
        """Register a stats provider pulled once at collect/report time."""
        self._snapshots.append((name, fn))

    # -- recording shorthands ------------------------------------------------

    def counter(self, name: str, **kwargs) -> Counter:
        return self.registry.counter(name, **kwargs)

    def gauge(self, name: str, **kwargs) -> Gauge:
        return self.registry.gauge(name, **kwargs)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self.registry.histogram(name, **kwargs)

    def inbound_span(self) -> Span | None:
        """The span attached to the packet currently being delivered."""
        return self._inbound_span

    # -- packet taps ---------------------------------------------------------

    def tap(self, nodes, **kwargs) -> "PacketTracer":
        """Attach a (multi-node, filterable, bounded) packet tracer."""
        from ..netsim.trace import PacketTracer

        tracer = PacketTracer(nodes, **kwargs)
        self.tracers.append(tracer)
        return tracer

    # -- collection ----------------------------------------------------------

    def collect(self) -> None:
        """Pull registered component state into gauges (idempotent)."""
        for node in self._nodes:
            g = self.registry.gauge
            g("node.packets_delivered", node=node.name).set(node.packets_delivered)
            g("node.packets_forwarded", node=node.name).set(node.packets_forwarded)
            g("node.packets_dropped", node=node.name).set(node.packets_dropped)
            cpu = node.cpu
            g("node.cpu_busy_seconds", node=node.name).set(
                cpu.completed_busy_seconds()
            )
            g("node.cpu_jobs_accepted", node=node.name).set(cpu.jobs_accepted)
            g("node.cpu_jobs_dropped", node=node.name).set(cpu.jobs_dropped)
            g("node.cpu_work_dropped_seconds", node=node.name).set(
                cpu.work_dropped_seconds
            )
        for link in self._links:
            for sender in (link.a, link.b):
                sent, dropped, bytes_sent = link.stats(sender)
                label = f"{sender.name}->{link.other(sender).name}"
                g = self.registry.gauge
                g("link.packets_sent", direction=label).set(sent)
                g("link.packets_dropped", direction=label).set(dropped)
                g("link.bytes_sent", direction=label).set(bytes_sent)
        for name, fn in self._snapshots:
            stats = fn()
            for key in sorted(stats):
                value = stats[key]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                self.registry.gauge(f"{name}.{key}").set(value)

    # -- output --------------------------------------------------------------

    def report(self, *, title: str = "run report", span_limit: int = 120) -> str:
        self.collect()
        profiler_report = (
            self.profiler.report() if self.profiler is not None else None
        )
        return exporters.render_report(
            self.registry,
            self.spans,
            profiler_report=profiler_report,
            span_limit=span_limit,
            title=title,
        )

    def write(self, directory: str, *, title: str = "run report") -> list[str]:
        """Write all artefacts into ``directory``; returns the paths written."""
        os.makedirs(directory, exist_ok=True)
        self.collect()
        written: list[str] = []

        def emit(filename: str, text: str) -> None:
            path = os.path.join(directory, filename)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
                if not text.endswith("\n"):
                    fh.write("\n")
            written.append(path)

        emit("metrics.json", exporters.metrics_to_json(self.registry))
        emit("series.csv", exporters.series_to_csv(self.registry))
        emit("spans.json", exporters.spans_to_json(self.spans))
        emit("report.txt", self.report(title=title))
        if self.tracers:
            emit("trace.txt", exporters.trace_to_text(self.tracers))
        if self.profiler is not None:
            path = os.path.join(directory, "profile.json")
            write_bench_profile(self.profiler, path)
            written.append(path)
        return written


def current() -> Observability | None:
    """The process-wide observability context, if one is installed."""
    from ..netsim import simulator

    return simulator._active_obs


@contextlib.contextmanager
def installed(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` process-wide for the duration of the block.

    Simulators constructed inside the block attach to ``obs``; the
    previous context (usually None) is restored on exit.
    """
    from ..netsim.simulator import set_observability

    previous = set_observability(obs)
    try:
        yield obs
    finally:
        set_observability(previous)
