"""Exporters: turn an observability context into files a human can read.

Four artefacts, all deterministic for a given run:

* ``metrics.json`` — every metric's snapshot (round-trippable via
  :func:`load_metrics`);
* ``series.csv`` — all time series (counter buckets, gauge histories)
  as flat ``metric,labels,time,value`` rows;
* ``spans.json`` — the span log (round-trippable via :func:`load_spans`);
* ``report.txt`` / ``trace.txt`` — human-readable run report and the
  pcap-style packet trace from any attached taps.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING

from .registry import MetricRegistry, format_labels
from .spans import SpanLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.trace import PacketTracer


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def metrics_to_json(registry: MetricRegistry) -> str:
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"


def load_metrics(text: str) -> list[dict]:
    """Parse a ``metrics.json`` document back into snapshot dicts.

    JSON turns series tuples into lists; normalise them back to tuples so
    a loaded snapshot compares equal to a fresh one.
    """
    data = json.loads(text)
    for entry in data:
        if "series" in entry:
            entry["series"] = [tuple(point) for point in entry["series"]]
    return data


def series_to_csv(registry: MetricRegistry) -> str:
    """All time series in the registry as ``metric,labels,time,value`` rows."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["metric", "labels", "time", "value"])
    for metric in registry:
        series_fn = getattr(metric, "series", None)
        if series_fn is None:
            continue
        labels = format_labels(metric.labels)
        for t, v in series_fn():
            writer.writerow([metric.name, labels, repr(t), repr(v)])
    return buf.getvalue()


def load_series_csv(text: str) -> list[tuple[str, str, float, float]]:
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)[1:]  # drop header
    return [(name, labels, float(t), float(v)) for name, labels, t, v in rows]


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


def spans_to_json(log: SpanLog) -> str:
    doc = {"dropped": log.dropped, "spans": log.snapshot()}
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load_spans(text: str) -> SpanLog:
    """Rebuild a queryable :class:`SpanLog` from a ``spans.json`` document."""
    doc = json.loads(text)
    log = SpanLog()
    log.dropped = doc["dropped"]
    for entry in doc["spans"]:
        span = log.start(
            entry["name"], at=entry["start"], **entry["attrs"]
        )
        span.span_id = entry["span_id"]
        span.parent_id = entry["parent_id"]
        if entry["end"] is not None:
            span.finish(at=entry["end"])
    log._next_id = max((s.span_id for s in log.spans), default=0) + 1
    return log


# ---------------------------------------------------------------------------
# packet trace
# ---------------------------------------------------------------------------


def trace_to_text(tracers: "list[PacketTracer]") -> str:
    """Merge taps into one pcap-style text trace, ordered by capture time."""
    records = []
    for tracer in tracers:
        records.extend(tracer.records)
    records.sort(key=lambda r: r.time)
    lines = [str(r) for r in records]
    truncated = sum(getattr(t, "truncated", 0) for t in tracers)
    if truncated:
        lines.append(f"... {truncated} packets not captured (max_records cap)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# run report
# ---------------------------------------------------------------------------


def _format_metric_line(snap: dict) -> list[str]:
    name = snap["name"] + format_labels(tuple(sorted(snap["labels"].items())))
    if snap["kind"] == "counter":
        return [f"  {name:<58} {snap['value']:>12g}"]
    if snap["kind"] == "gauge":
        return [f"  {name:<58} {snap['value']:>12g}"]
    # histogram
    lines = [
        f"  {name:<58} count={snap['count']} mean="
        + (
            f"{snap['sum'] / snap['count']:.6g}"
            if snap["count"]
            else "n/a"
        )
    ]
    return lines


def render_report(
    registry: MetricRegistry,
    spans: SpanLog,
    *,
    profiler_report: str | None = None,
    span_limit: int = 120,
    title: str = "run report",
) -> str:
    """The human-readable ``report.txt``: metrics, span tree, profile."""
    sections = [f"== {title} ==", ""]

    by_kind: dict[str, list[dict]] = {"counter": [], "gauge": [], "histogram": []}
    for snap in registry.snapshot():
        by_kind[snap["kind"]].append(snap)
    for kind in ("counter", "gauge", "histogram"):
        entries = by_kind[kind]
        if not entries:
            continue
        sections.append(f"-- {kind}s ({len(entries)}) --")
        for snap in entries:
            sections.extend(_format_metric_line(snap))
        sections.append("")

    if len(spans):
        sections.append(f"-- spans ({len(spans)}) --")
        sections.append(spans.render(limit=span_limit))
        sections.append("")

    if profiler_report:
        sections.append("-- profile (host wall clock) --")
        sections.append(profiler_report)
        sections.append("")

    return "\n".join(sections)
