"""Wall-clock profiler for the simulator's event loop.

This is the one deliberate exception to the repo's "no wall-clock"
rule: the profiler measures how fast the *simulator itself* runs on the
host — events per second, which handler callables burn the time, how
deep the event heap gets — to seed the repo's perf trajectory
(``scripts/BENCH_profile.json``).  Wall-clock readings never feed back into
simulated behaviour; they are recorded and exported, nothing else, so
determinism is untouched.

The simulator drives it: when ``sim.step_profiler`` is set, ``step()``
brackets each callback with ``begin()`` / ``record()``.  When unset (the
default) the only cost is one ``is None`` check per event.
"""

from __future__ import annotations

import json
import time


def _callable_key(callback) -> str:
    """Stable attribution label for an event callback.

    Bound methods of different instances collapse onto one underlying
    function; wrappers advertising ``__wrapped__`` (packet-tracer taps,
    ``functools.wraps`` decorators) are unwound so the time lands on the
    callable actually doing the work, not the closure around it; partials
    and lambdas fall back to their repr-ish name.
    """
    func = getattr(callback, "__func__", callback)
    for _ in range(8):  # bounded: a pathological cycle must not hang us
        wrapped = getattr(func, "__wrapped__", None)
        if wrapped is None:
            break
        func = getattr(wrapped, "__func__", wrapped)
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        qualname = getattr(func, "__name__", repr(func))
    module = getattr(func, "__module__", "") or ""
    return f"{module}.{qualname}" if module else qualname


class HandlerStats:
    __slots__ = ("calls", "seconds")

    def __init__(self):
        self.calls = 0
        self.seconds = 0.0


class WallClockProfiler:
    """Attributes host time to event-handler callables.

    Observe-only by construction: it reads the host clock (allowed here,
    and only here) and mutates its own tallies — it never schedules
    events or draws randomness.
    """

    def __init__(self):
        self.events = 0
        self.total_seconds = 0.0
        self.max_heap_depth = 0
        self.handlers: dict[str, HandlerStats] = {}

    # Called from Simulator.step around each callback.
    def begin(self) -> float:
        return time.perf_counter()  # repro: allow[D001]

    def record(self, callback, elapsed: float, heap_depth: int) -> None:
        self.events += 1
        self.total_seconds += elapsed
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth
        key = _callable_key(callback)
        stats = self.handlers.get(key)
        if stats is None:
            stats = self.handlers[key] = HandlerStats()
        stats.calls += 1
        stats.seconds += elapsed

    def elapsed_since(self, t0: float) -> float:
        return time.perf_counter() - t0  # repro: allow[D001]

    # -- results -------------------------------------------------------------

    def events_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.events / self.total_seconds

    def top_handlers(self, n: int = 10) -> list[tuple[str, HandlerStats]]:
        ranked = sorted(
            self.handlers.items(), key=lambda kv: (-kv[1].seconds, kv[0])
        )
        return ranked[:n]

    def snapshot(self) -> dict:
        return {
            "events": self.events,
            "total_seconds": self.total_seconds,
            "events_per_second": self.events_per_second(),
            "max_heap_depth": self.max_heap_depth,
            "handlers": {
                key: {"calls": st.calls, "seconds": st.seconds}
                for key, st in sorted(self.handlers.items())
            },
        }

    def report(self, *, top: int = 10) -> str:
        lines = [
            f"events handled        {self.events}",
            f"handler wall time     {self.total_seconds:.4f}s",
            f"events / second       {self.events_per_second():,.0f}",
            f"max event-heap depth  {self.max_heap_depth}",
            "",
            f"{'handler':<60} {'calls':>8} {'seconds':>9} {'share':>6}",
        ]
        total = self.total_seconds or 1.0
        for key, st in self.top_handlers(top):
            lines.append(
                f"{key:<60} {st.calls:>8} {st.seconds:>9.4f} "
                f"{st.seconds / total:>5.1%}"
            )
        return "\n".join(lines)


def write_bench_profile(
    profiler: WallClockProfiler, path: str, *, date: str | None = None
) -> dict:
    """Write the profiler snapshot as a ``BENCH_*.json`` document.

    An existing document's ``trajectory`` is preserved and the new run is
    appended to it as a dated before/after history, so regenerating the
    profile never erases the record of what optimisation work bought.
    """
    doc = {
        "benchmark": "simulator-event-loop",
        "unit": "events/sec",
        "value": profiler.events_per_second(),
        "detail": profiler.snapshot(),
    }
    if date is None:
        # host date on a host-time measurement — same exception as the
        # profiler's own clock reads; never feeds back into simulation
        date = time.strftime("%Y-%m-%d")
    trajectory: list[dict] = []
    try:
        with open(path, encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        previous = None
    if isinstance(previous, dict):
        recorded = previous.get("trajectory")
        if isinstance(recorded, list):
            trajectory = list(recorded)
        elif "value" in previous:
            # migrate a pre-trajectory document: keep its headline number
            trajectory.append(
                {"date": "(before trajectory tracking)",
                 "events_per_second": previous["value"]}
            )
    trajectory.append(
        {
            "date": date,
            "events_per_second": doc["value"],
            "events": profiler.events,
        }
    )
    doc["trajectory"] = trajectory
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
