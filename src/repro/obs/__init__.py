"""repro.obs — unified observability for the simulation core.

One :class:`Observability` context owns a typed metric registry
(counters / gauges / histograms with labels and virtual-time series),
a hierarchical span log tracing query lifecycles, multi-node packet
taps, and an optional wall-clock profiler for the event loop itself.
Install it with :func:`installed` and write artefacts with
``Observability.write``.

The whole package is observe-only — it never schedules events or draws
simulator randomness (analysis rule W002 enforces this), so enabling it
leaves ``--sanitize`` event-trace hashes bit-identical.
"""

from .exporters import (
    load_metrics,
    load_series_csv,
    load_spans,
    metrics_to_json,
    render_report,
    series_to_csv,
    spans_to_json,
    trace_to_text,
)
from .profiler import WallClockProfiler, write_bench_profile
from .registry import (
    Counter,
    DEFAULT_BUCKETS,
    DEFAULT_SERIES_INTERVAL,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    format_labels,
)
from .runtime import Observability, current, installed
from .spans import DEFAULT_MAX_SPANS, NULL_SPAN, Span, SpanLog

__layer__ = "platform"

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_SERIES_INTERVAL",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "SpanLog",
    "WallClockProfiler",
    "current",
    "format_labels",
    "installed",
    "load_metrics",
    "load_series_csv",
    "load_spans",
    "metrics_to_json",
    "render_report",
    "series_to_csv",
    "spans_to_json",
    "trace_to_text",
    "write_bench_profile",
]
