"""A secondary (slave) authoritative server fed by AXFR (RFC 5936 subset).

Pulls a zone from its primary over TCP, rebuilds it locally, and can then
serve it through a regular :class:`~repro.dns.AuthoritativeServer` — the
standard redundancy arrangement among the multiple ANSs per domain that
§III.B's multi-address fabricated names support.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address
from typing import Callable

from ..dnswire import Message, Name, Rcode, RRType, make_query
from ..netsim import Node, TcpConnection
from .framing import StreamFramer, frame
from .zone import Zone


@dataclasses.dataclass(slots=True)
class TransferResult:
    """Outcome of one AXFR attempt."""

    status: str  # "ok" | "refused" | "timeout" | "error"
    zone: Zone | None
    records: int
    serial: int | None


class SecondaryServer:
    """Transfers zones from a primary and tracks their serials."""

    def __init__(self, node: Node, primary: IPv4Address, *, timeout: float = 5.0):
        self.node = node
        self.primary = primary
        self.timeout = timeout
        self.zones: dict[Name, Zone] = {}
        self.serials: dict[Name, int] = {}
        self.transfers_completed = 0
        self.transfers_failed = 0
        self._next_id = node.sim.rng.randrange(0, 0xFFFF)

    def transfer(
        self, origin: Name | str, callback: Callable[[TransferResult], None]
    ) -> None:
        """Start an AXFR for ``origin``; ``callback`` fires when done."""
        origin = Name.from_text(origin) if isinstance(origin, str) else origin
        self._next_id = (self._next_id + 1) & 0xFFFF
        msg_id = self._next_id
        query = make_query(origin, RRType.AXFR, msg_id=msg_id)
        framer = StreamFramer()
        collected: list = []
        soa_seen = 0
        done = [False]

        def finish(result: TransferResult) -> None:
            if done[0]:
                return
            done[0] = True
            deadline.cancel()
            if result.status == "ok":
                self.transfers_completed += 1
                self.zones[origin] = result.zone
                self.serials[origin] = result.serial
            else:
                self.transfers_failed += 1
            callback(result)

        def on_data(conn: TcpConnection, data: bytes) -> None:
            nonlocal soa_seen
            if data == b"":
                return
            for message in framer.feed(data):
                if message.header.msg_id != msg_id:
                    continue
                if message.header.rcode != Rcode.NOERROR:
                    conn.close()
                    finish(TransferResult("refused", None, 0, None))
                    return
                for rr in message.answers:
                    if rr.rtype == RRType.SOA:
                        soa_seen += 1
                        if soa_seen == 1:
                            collected.append(rr)
                        if soa_seen == 2:
                            conn.close()
                            finish(self._assemble(origin, collected))
                            return
                    else:
                        collected.append(rr)

        def on_close(conn: TcpConnection, error: bool) -> None:
            if error and not done[0]:
                finish(TransferResult("error", None, 0, None))

        conn = self.node.tcp.connect(
            self.primary, 53,
            on_established=lambda c: c.send(frame(query)),
            on_data=on_data,
            on_close=on_close,
        )
        deadline = self.node.sim.schedule(
            self.timeout, lambda: (conn.abort(), finish(TransferResult("timeout", None, 0, None)))
        )

    def _assemble(self, origin: Name, records: list) -> TransferResult:
        zone = Zone(origin)
        serial = None
        for rr in records:
            zone.add(rr)
            if rr.rtype == RRType.SOA:
                serial = rr.rdata.serial
        return TransferResult("ok", zone, zone.record_count(), serial)
