"""The local recursive server (LRS): a caching iterative resolver.

This is the BIND-shaped client whose standard behaviours the guard schemes
lean on:

* referrals **without glue** trigger a sub-resolution of the NS target name —
  which is how the cookie-embedded NS name (``PR…com``) finds its way back
  to the guard (messages 3/6 of Figure 2);
* referrals **with glue** are followed directly — the fabricated COOKIE2
  address is queried like any other nameserver (message 7 of Figure 2b);
* a TC=1 response re-issues the query over TCP (the TCP-based scheme);
* unanswered queries retry after ``timeout`` seconds — BIND's 2-second timer
  is what makes an unprotected ANS collapse so sharply in Figure 5.

Resolution is fully event-driven on the simulator clock; ``resolve`` returns
immediately and the callback fires with a :class:`ResolveResult`.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address
from typing import Callable

from ..dnswire import (
    Message,
    Name,
    Rcode,
    ResourceRecord,
    RRType,
    make_query,
    make_response,
)
from ..netsim import Node, TcpConnection
from .cache import DnsCache
from .framing import StreamFramer, frame

#: BIND's retry timer from the paper ("BIND-based LRS uses a large time-out
#: value of 2 seconds").
BIND_TIMEOUT = 2.0

#: Upper bound on delegation-chasing steps for one resolution.
MAX_STEPS = 24

#: Upper bound on CNAME chain length.
MAX_CNAME_CHAIN = 8

#: Upper bound on nested NS-target sub-resolutions.
MAX_SUBRESOLUTION_DEPTH = 4


@dataclasses.dataclass(slots=True)
class ResolveResult:
    """Outcome of one recursive resolution."""

    status: str  # "ok" | "nxdomain" | "nodata" | "timeout" | "servfail"
    records: list[ResourceRecord]
    latency: float
    queries_sent: int

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def addresses(self) -> list[IPv4Address]:
        return [rr.rdata.address for rr in self.records if rr.rtype == RRType.A]  # type: ignore[union-attr]


def _randomize_case(name: Name, rng) -> Name:
    """DNS-0x20: flip each letter's case by a coin toss (equality in the
    DNS is case-insensitive, so servers answer normally but must echo it)."""
    labels = []
    for label in name.labels:
        mixed = bytes(
            (b ^ 0x20) if (65 <= b <= 90 or 97 <= b <= 122) and rng.getrandbits(1) else b
            for b in label
        )
        labels.append(mixed)
    return Name(labels)


class LocalRecursiveServer:
    """A caching recursive resolver attached to one node."""

    def __init__(
        self,
        node: Node,
        root_hints: list[IPv4Address],
        *,
        timeout: float = BIND_TIMEOUT,
        retries: int = 3,
        cache: DnsCache | None = None,
        serve_clients: bool = False,
        use_0x20: bool = True,
    ):
        """``use_0x20`` enables DNS-0x20 case randomisation: each outgoing
        query's name gets random letter casing, and responses must echo it
        exactly — extra entropy against off-path response forgery."""
        if not root_hints:
            raise ValueError("at least one root hint is required")
        self.node = node
        self.root_hints = list(root_hints)
        self.timeout = timeout
        self.retries = retries
        self.use_0x20 = use_0x20
        self.cache = cache if cache is not None else DnsCache()
        self.queries_sent = 0
        self.tcp_fallbacks = 0
        self.resolutions_started = 0
        self._next_msg_id = node.sim.rng.randrange(0, 0xFFFF)
        #: smoothed per-server RTT estimates (BIND-style server selection)
        self._srtt: dict[IPv4Address, float] = {}
        if serve_clients:
            self._client_socket = node.udp.bind(53, self._on_client_query)

    # -- public API ------------------------------------------------------------

    def resolve(
        self,
        qname: Name | str,
        qtype: int = RRType.A,
        callback: Callable[[ResolveResult], None] | None = None,
    ) -> None:
        """Start resolving; ``callback`` fires when done (possibly immediately)."""
        if isinstance(qname, str):
            qname = Name.from_text(qname)
        self.resolutions_started += 1
        callback = callback or (lambda result: None)
        obs = self.node.sim.obs
        span = None
        if obs is not None and not obs.spans.exhausted:
            # parent onto the delivering packet's span (the stub's attempt)
            # when there is one — linking client-side and resolver-side views
            span = obs.span(
                "recursive.resolve",
                parent=obs.inbound_span(),
                qname=qname,
                node=self.node.name,
            )
            inner = callback

            def callback(result: ResolveResult, _inner=inner, _span=span) -> None:
                _span.finish(status=result.status, queries=result.queries_sent)
                _inner(result)

        task = _Resolution(self, qname, qtype, callback, depth=0)
        task.span = span
        task.step()

    # -- stub-resolver front door -------------------------------------------------

    def _on_client_query(
        self, payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
    ) -> None:
        if not isinstance(payload, Message) or not payload.is_query() or not payload.header.rd:
            return
        query = payload

        def respond(result: ResolveResult) -> None:
            response = make_response(query, recursion_available=True)
            if result.status == "ok":
                response.answers.extend(result.records)
            elif result.status == "nxdomain":
                response.header.rcode = Rcode.NXDOMAIN
            elif result.status != "nodata":
                response.header.rcode = Rcode.SERVFAIL
            self._client_socket.send(response, src, sport, src=dst)

        self.resolve(query.question.qname, query.question.qtype, respond)

    # -- internals ---------------------------------------------------------------

    def msg_id(self) -> int:
        self._next_msg_id = (self._next_msg_id + 1) & 0xFFFF
        return self._next_msg_id

    def nameservers_for(self, qname: Name) -> tuple[Name | None, list[Name]]:
        """Deepest cached delegation covering ``qname``: (cut, NS target names)."""
        now = self.node.sim.now
        candidate = qname
        while True:
            ns_records = self.cache.get(candidate, RRType.NS, now)
            if ns_records:
                return candidate, [rr.rdata.target for rr in ns_records]  # type: ignore[union-attr]
            if candidate.is_root():
                return None, []
            candidate = candidate.parent()

    def addresses_for(self, ns_names: list[Name]) -> list[IPv4Address]:
        now = self.node.sim.now
        addresses: list[IPv4Address] = []
        for ns_name in ns_names:
            for rr in self.cache.get(ns_name, RRType.A, now) or []:
                addresses.append(rr.rdata.address)  # type: ignore[union-attr]
        return addresses

    # -- server selection (BIND-style smoothed RTT) -----------------------------

    def rank_servers(self, servers: list[IPv4Address]) -> list[IPv4Address]:
        """Order candidate servers fastest-first; untried servers lead so
        the resolver gathers an estimate for every address."""
        return sorted(servers, key=lambda ip: self._srtt.get(ip, -1.0))  # repro: allow[P005] candidate set is the NS RRset of one cut (a handful); ordering is the BIND selection semantics

    def note_rtt(self, server: IPv4Address, rtt: float) -> None:
        previous = self._srtt.get(server)
        if previous is None or previous <= 0:
            self._srtt[server] = rtt
        else:
            self._srtt[server] = 0.7 * previous + 0.3 * rtt

    def note_timeout(self, server: IPv4Address) -> None:
        """Penalise a server that failed to answer, encouraging failover.

        A timed-out server's estimate jumps to at least the timeout value —
        it must rank behind every responsive server — and keeps doubling on
        repeated failures.  A later successful response blends it back down.
        """
        previous = self._srtt.get(server, 0.0)
        self._srtt[server] = max(previous * 2, self.timeout)

    def server_rtt(self, server: IPv4Address) -> float | None:
        return self._srtt.get(server)


class _Resolution:
    """State machine for one in-flight resolution."""

    __slots__ = (
        "resolver",
        "qname",
        "qtype",
        "callback",
        "depth",
        "started_at",
        "steps",
        "cname_links",
        "queries_sent",
        "attempts",
        "done",
        "current_cut",
        "_timer",
        "_socket",
        "span",
    )

    def __init__(
        self,
        resolver: LocalRecursiveServer,
        qname: Name,
        qtype: int,
        callback: Callable[[ResolveResult], None],
        *,
        depth: int,
    ):
        self.resolver = resolver
        self.qname = qname
        self.qtype = qtype
        self.callback = callback
        self.depth = depth
        self.started_at = resolver.node.sim.now
        self.steps = 0
        self.cname_links = 0
        self.queries_sent = 0
        self.attempts = 0
        self.done = False
        #: zone of the servers currently being queried — the bailiwick
        #: boundary for accepting referral and glue records
        self.current_cut = Name.root()
        self._timer = None
        self._socket = None
        #: observability span for the owning resolve() call, if obs is on
        self.span = None

    # -- lifecycle -----------------------------------------------------------

    def finish(self, status: str, records: list[ResourceRecord] | None = None) -> None:
        if self.done:
            return
        self.done = True
        self._cancel_timer()
        self._close_socket()
        latency = self.resolver.node.sim.now - self.started_at
        self.callback(ResolveResult(status, records or [], latency, self.queries_sent))

    def step(self) -> None:
        if self.done:
            return
        self.steps += 1
        if self.steps > MAX_STEPS:
            self.finish("servfail")
            return
        now = self.resolver.node.sim.now
        cache = self.resolver.cache

        cached = cache.get(self.qname, self.qtype, now)
        if cached:
            self.finish("ok", cached)
            return
        if cache.is_negative(self.qname, self.qtype, now):
            self.finish("nxdomain")
            return
        cname = cache.get(self.qname, RRType.CNAME, now)
        if cname and self.qtype != RRType.CNAME:
            self._follow_cname(cname)
            return

        cut, ns_names = self.resolver.nameservers_for(self.qname)
        if cut is None:
            self.current_cut = Name.root()
            self._send_query(self.resolver.root_hints)
            return
        self.current_cut = cut
        addresses = self.resolver.addresses_for(ns_names)
        if addresses:
            self._send_query(addresses)
            return
        # referral without usable glue: resolve one NS target's address first
        if self.depth >= MAX_SUBRESOLUTION_DEPTH or not ns_names:
            self.finish("servfail")
            return
        target = ns_names[0]

        def on_sub(result: ResolveResult) -> None:
            self.queries_sent += result.queries_sent
            if result.ok and result.addresses():
                self.step()
            else:
                # expire the dead delegation so we do not loop on it
                self.resolver.cache.evict(cut, RRType.NS)
                self.finish("servfail")

        sub = _Resolution(self.resolver, target, RRType.A, on_sub, depth=self.depth + 1)
        sub.span = self.span
        sub.step()

    def _follow_cname(self, chain: list[ResourceRecord]) -> None:
        self.cname_links += 1
        if self.cname_links > MAX_CNAME_CHAIN:
            self.finish("servfail")
            return
        self.qname = chain[0].rdata.target  # type: ignore[union-attr]
        self.step()

    # -- query transmission -----------------------------------------------------

    def _send_query(self, servers: list[IPv4Address]) -> None:
        self.attempts += 1
        if self.attempts > self.resolver.retries:
            self.finish("timeout")
            return
        ranked = self.resolver.rank_servers(servers)
        server = ranked[(self.attempts - 1) % len(ranked)]
        msg_id = self.resolver.msg_id()
        node = self.resolver.node
        wire_qname = (
            _randomize_case(self.qname, node.sim.rng)
            if self.resolver.use_0x20
            else self.qname
        )
        query = make_query(wire_qname, self.qtype, msg_id=msg_id)
        self._close_socket()
        sent_at = node.sim.now
        leg = (
            self.span.child(
                "recursive.query", server=server, attempt=self.attempts
            )
            if self.span
            else None
        )

        def on_response(
            payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
        ) -> None:
            if not isinstance(payload, Message) or payload.header.msg_id != msg_id:
                return
            if src != server or not payload.is_response():
                return
            if self.resolver.use_0x20:
                # DNS-0x20: the echoed question must match byte-for-byte
                if (
                    not payload.questions
                    or payload.question.qname.labels != wire_qname.labels
                ):
                    return
            if leg is not None:
                leg.finish()
            self.resolver.note_rtt(server, node.sim.now - sent_at)
            self._on_response(payload, server, servers)

        self._socket = node.udp.bind_ephemeral(on_response)
        self._socket.send(query, server, 53, span=leg)
        self.queries_sent += 1
        self.resolver.queries_sent += 1
        self._arm_timer(servers, server)

    def _arm_timer(self, servers: list[IPv4Address], server: IPv4Address) -> None:
        self._cancel_timer()
        self._timer = self.resolver.node.sim.schedule(
            self.resolver.timeout, self._on_timeout, servers, server
        )

    def _on_timeout(self, servers: list[IPv4Address], server: IPv4Address) -> None:
        self._timer = None
        self.resolver.note_timeout(server)
        self._send_query(servers)

    # -- response processing -------------------------------------------------------

    def _on_response(
        self, response: Message, server: IPv4Address, servers: list[IPv4Address]
    ) -> None:
        self._cancel_timer()
        self._close_socket()
        if response.header.tc:
            self._retry_over_tcp(server)
            return
        self._process(response)

    def _process(self, response: Message) -> None:
        now = self.resolver.node.sim.now
        cache = self.resolver.cache

        if response.header.rcode == Rcode.NXDOMAIN:
            self._cache_negative(response, now)
            self.finish("nxdomain")
            return
        if response.header.rcode != Rcode.NOERROR:
            self.finish("servfail")
            return

        # cache answer rrsets — but only those in the queried servers'
        # bailiwick (a server cannot speak for names above its zone)
        by_key: dict[tuple[Name, int], list[ResourceRecord]] = {}
        for rr in response.answers:
            by_key.setdefault((rr.name, rr.rtype), []).append(rr)
        for (name, rtype), rrs in by_key.items():
            if name.is_subdomain_of(self.current_cut):
                cache.put(name, rtype, rrs, now)

        wanted = by_key.get((self.qname, self.qtype))
        if wanted:
            self.finish("ok", wanted)
            return
        cname = by_key.get((self.qname, RRType.CNAME))
        if cname:
            self._follow_cname(cname)
            return

        # referral?  Everything cached from a referral must be *in
        # bailiwick* — at or below the zone cut of the servers we queried.
        # A malicious server authoritative for victim.example must not be
        # able to plant a delegation or an A record for www.bank.com; the
        # root's bailiwick is everything, so root glue for gtld servers
        # still flows.  (The classic cache-poisoning hardening.)
        ns_by_owner: dict[Name, list[ResourceRecord]] = {}
        for rr in response.authorities:
            if rr.rtype == RRType.NS and rr.name.is_subdomain_of(self.current_cut):
                ns_by_owner.setdefault(rr.name, []).append(rr)
        if ns_by_owner:
            progressed = False
            for owner, rrs in ns_by_owner.items():
                if self.qname.is_subdomain_of(owner):
                    cache.put(owner, RRType.NS, rrs, now)
                    progressed = True
            glue: dict[tuple[Name, int], list[ResourceRecord]] = {}
            for rr in response.additionals:
                if rr.rtype == RRType.A and rr.name.is_subdomain_of(self.current_cut):
                    glue.setdefault((rr.name, rr.rtype), []).append(rr)
            for (name, rtype), rrs in glue.items():
                cache.put(name, rtype, rrs, now)
            if progressed:
                self.attempts = 0  # fresh delegation, fresh retry budget
                self.step()
                return
        if response.answers or response.authorities:
            self.finish("nodata")
            return
        self.finish("servfail")

    def _cache_negative(self, response: Message, now: float) -> None:
        """RFC 2308: cache NXDOMAIN for min(SOA TTL, SOA minimum)."""
        from ..dnswire import SOA

        for rr in response.authorities:  # repro: allow[P005] scans one short message section for the SOA
            if rr.rtype == RRType.SOA and isinstance(rr.rdata, SOA):
                ttl = min(rr.ttl, rr.rdata.minimum)
                self.resolver.cache.put_negative(self.qname, self.qtype, ttl, now)
                return

    # -- TCP fallback ---------------------------------------------------------------

    def _retry_over_tcp(self, server: IPv4Address) -> None:
        self.resolver.tcp_fallbacks += 1
        node = self.resolver.node
        fallback_span = (
            self.span.child("recursive.tcp_fallback", server=server)
            if self.span
            else None
        )
        msg_id = self.resolver.msg_id()
        query = make_query(self.qname, self.qtype, msg_id=msg_id)
        framer = StreamFramer()

        # a tight retransmission budget (3 tries ≈ 1.75 s of backoff) makes
        # a dead or blackholed TCP server abort the connection well before
        # the wall-clock fallback timer, so on_close fails this resolution
        # fast instead of stalling the full timeout
        tcp_retries = 3

        def on_established(c: TcpConnection) -> None:
            c.send(frame(query))
            self.queries_sent += 1
            self.resolver.queries_sent += 1

        def on_data(c: TcpConnection, data: bytes) -> None:
            if data == b"":
                return
            for message in framer.feed(data):
                if message.header.msg_id == msg_id:
                    fallback_timer.cancel()
                    c.close()
                    if fallback_span:
                        fallback_span.finish(outcome="answered")
                    self._process(message)
                    return

        def on_close(c: TcpConnection, error: bool) -> None:
            if error and not self.done:
                fallback_timer.cancel()
                if fallback_span:
                    fallback_span.finish(outcome="error")
                self.finish("servfail")

        # connect first so the fallback deadline can take the bound method
        # and its argument instead of a per-event closure (P003); the TCP
        # callbacks cannot fire before this function returns
        conn = node.tcp.connect(
            server,
            53,
            on_established=on_established,
            on_data=on_data,
            on_close=on_close,
            max_retransmits=tcp_retries,
        )
        fallback_timer = node.sim.schedule(
            self.resolver.timeout * 3, self._tcp_fallback_fail, conn
        )

    def _tcp_fallback_fail(self, conn: TcpConnection) -> None:
        conn.abort()
        self.finish("timeout")

    # -- helpers -----------------------------------------------------------------

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _close_socket(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None
