"""The authoritative name server (ANS).

Serves one or more zones over UDP (with RFC 1035 truncation) and optionally
TCP.  Every request costs CPU; when the CPU queue overflows the request is
dropped silently — reproducing the indiscriminate drops that make an
unprotected BIND collapse under attack (paper §IV.C: UDP capacity 14K
req/s, TCP capacity 2.2K req/s on the testbed hardware).
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address

from ..dnswire import (
    MAX_UDP_PAYLOAD,
    Message,
    Name,
    Opcode,
    Rcode,
    RRType,
    make_response,
)
from ..netsim import Node, TcpConnection
from .framing import StreamFramer, frame
from .zone import AnswerKind, Zone

#: Paper-calibrated default per-request CPU costs (BIND 9.3.1 on 2.26 GHz P4).
BIND_UDP_COST = 1.0 / 14000.0
BIND_TCP_COST = 1.0 / 2200.0


class AuthoritativeServer:
    """An ANS instance bound to a node's port 53 (UDP and optionally TCP)."""

    def __init__(
        self,
        node: Node,
        zones: list[Zone],
        *,
        udp_request_cost: float = BIND_UDP_COST,
        tcp_request_cost: float = BIND_TCP_COST,
        serve_tcp: bool = True,
        answer_ttl_override: int | None = None,
        queue_limit: float = 0.01,
        axfr_allow: "list | None" = None,
    ):
        """``answer_ttl_override`` forces all answer TTLs (0 disables LRS
        caching, the configuration of the Figure 5 experiment).
        ``axfr_allow`` restricts zone transfers to the listed addresses
        (None = refuse all; secondaries must be allow-listed)."""
        self.node = node
        self.axfr_allow = set(axfr_allow) if axfr_allow is not None else None
        self.axfr_served = 0
        self.axfr_refused = 0
        # a shallow queue models the socket buffer: overload drops requests
        node.cpu.queue_limit = queue_limit
        self.zones = sorted(zones, key=lambda z: len(z.origin), reverse=True)
        self.udp_request_cost = udp_request_cost
        self.tcp_request_cost = tcp_request_cost
        self.answer_ttl_override = answer_ttl_override
        self.requests_served = 0
        self.requests_dropped = 0
        self.referrals_sent = 0
        self.answers_sent = 0
        # observability: serve spans bridge the CPU-queue gap between the
        # query's arrival and _serve_udp running.  The span is keyed in a
        # side table rather than threaded through cpu.submit because extra
        # callback args would change the determinism trace — the event
        # stream must be identical with obs on or off.
        self._obs = node.sim.obs
        self._serve_spans: dict[tuple, object] = {}
        if self._obs is not None:
            self._obs.add_snapshot(f"ans.{node.name}", self.stats)
        self._socket = node.udp.bind(53, self._on_udp_query)
        if serve_tcp:
            node.tcp.listen(53, self._on_tcp_connection)

    # -- UDP path -----------------------------------------------------------

    def _on_udp_query(
        self, payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
    ) -> None:
        if not isinstance(payload, Message) or not payload.is_query():
            return
        obs = self._obs
        span = None
        if obs is not None and not obs.spans.exhausted:
            span = obs.span(
                "ans.serve", parent=obs.inbound_span(), node=self.node.name
            )
        if not self.node.cpu.submit(
            self.udp_request_cost, self._serve_udp, payload, src, sport, dst
        ):
            self.requests_dropped += 1
            if span:
                span.finish(outcome="cpu_drop")
        elif span:
            self._serve_spans[(src, sport, payload.header.msg_id)] = span
            if len(self._serve_spans) > 4096:
                self._serve_spans.pop(next(iter(self._serve_spans)))

    def _serve_udp(
        self, query: Message, src: IPv4Address, sport: int, dst: IPv4Address
    ) -> None:
        span = self._serve_spans.pop((src, sport, query.header.msg_id), None)
        response = self.respond(query)
        if response is None:
            if span:
                span.finish(outcome="no_response")
            return
        limit = self._udp_payload_limit(query)
        # one encode serves the size check, the truncation probe and the
        # send path: the response is complete here, so memoize its wire form
        response.freeze()
        if response.wire_size() > limit:  # repro: allow[P002] response frozen above — this is a cached lookup
            wire_capped = Message.decode(response.encode(max_size=limit))  # repro: allow[P002] truncation path only; reuses the frozen wire for the size test
            response = wire_capped
        if span:
            span.finish(outcome="answered")
        self._socket.send(response, src, sport, src=dst, span=span)

    @staticmethod
    def _udp_payload_limit(query: Message) -> int:
        """EDNS(0) §6.2.3: an OPT RR's CLASS advertises the requester's UDP
        payload capacity; classic requesters get the 512-byte limit."""
        for rr in query.additionals:  # repro: allow[P005] scans one short message section (queries carry at most one OPT)
            if rr.rtype == RRType.OPT:
                return max(MAX_UDP_PAYLOAD, rr.rclass)
        return MAX_UDP_PAYLOAD

    # -- TCP path -----------------------------------------------------------

    def _on_tcp_connection(self, conn: TcpConnection) -> None:
        framer = StreamFramer()

        def on_data(c: TcpConnection, data: bytes) -> None:
            if data == b"":
                c.close()
                return
            from ..dnswire import DecodeError

            try:
                queries = framer.feed(data)
            except DecodeError:
                c.abort()  # malformed stream: hang up, never crash
                return
            for query in queries:
                if not self.node.cpu.submit(self.tcp_request_cost, self._serve_tcp, c, query):
                    self.requests_dropped += 1

        conn.on_data = on_data

    def _serve_tcp(self, conn: TcpConnection, query: Message) -> None:
        from ..netsim import TcpState

        if query.questions and query.question.qtype == RRType.AXFR:
            self._serve_axfr(conn, query)
            return
        response = self.respond(query)
        if response is None:
            return
        if conn.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            conn.send(frame(response))

    def _serve_axfr(self, conn: TcpConnection, query: Message) -> None:
        """RFC 5936 zone transfer: SOA, body records, SOA again.

        The body is split across messages every 100 records, as real
        servers chunk transfers.  Unauthorised requesters get REFUSED.
        """
        from ..netsim import TcpState

        def send(message: Message) -> None:
            if conn.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
                conn.send(frame(message))

        zone = self.zone_for(query.question.qname)
        soa = zone.soa() if zone is not None else None
        allowed = self.axfr_allow is not None and conn.remote_ip in self.axfr_allow  # repro: allow[P005] operator ACL, a handful of entries on the rare AXFR path
        if zone is None or soa is None or zone.origin != query.question.qname or not allowed:
            self.axfr_refused += 1
            send(make_response(query, rcode=Rcode.REFUSED))
            return
        self.axfr_served += 1
        body = [rr for rr in zone.all_records() if rr.rtype != RRType.SOA]
        first = make_response(query, authoritative=True)
        first.answers.append(soa)
        for index, rr in enumerate(body):
            first.answers.append(rr)
            if len(first.answers) >= 100:
                send(first)
                first = make_response(query, authoritative=True)
        first.answers.append(soa)  # closing SOA marks the end of transfer
        send(first)

    # -- shared query logic ---------------------------------------------------

    def respond(self, query: Message) -> Message | None:
        """Build the response for ``query`` (pure logic, no I/O or CPU cost)."""
        if query.header.opcode != Opcode.QUERY or not query.questions:
            return make_response(query, rcode=Rcode.NOTIMP)
        question = query.question
        zone = self.zone_for(question.qname)
        if zone is None:
            self.requests_served += 1
            return make_response(query, rcode=Rcode.REFUSED)

        result = zone.lookup(question.qname, question.qtype)
        response = make_response(query, authoritative=not result.is_referral)
        if result.kind is AnswerKind.ANSWER:
            response.answers.extend(result.records)
            self.answers_sent += 1
        elif result.kind is AnswerKind.CNAME:
            response.answers.extend(result.records)
            target = result.records[0].rdata.target  # type: ignore[union-attr]
            chase = zone.lookup(target, question.qtype)
            if chase.kind is AnswerKind.ANSWER:
                response.answers.extend(chase.records)
            self.answers_sent += 1
        elif result.kind is AnswerKind.DELEGATION:
            response.authorities.extend(result.authority)
            response.additionals.extend(result.additional)
            self.referrals_sent += 1
        elif result.kind is AnswerKind.NXDOMAIN:
            response.header.rcode = Rcode.NXDOMAIN
            response.authorities.extend(result.authority)
        else:  # NODATA
            response.authorities.extend(result.authority)
        self.requests_served += 1
        if self.answer_ttl_override is not None:
            response.answers = [
                dataclasses.replace(rr, ttl=self.answer_ttl_override) for rr in response.answers
            ]
        return response

    def stats(self) -> dict[str, int]:
        """A point-in-time snapshot of the server's operational counters."""
        return {
            "requests_served": self.requests_served,
            "requests_dropped": self.requests_dropped,
            "referrals_sent": self.referrals_sent,
            "answers_sent": self.answers_sent,
            "axfr_served": self.axfr_served,
            "axfr_refused": self.axfr_refused,
        }

    def zone_for(self, qname: Name) -> Zone | None:
        """The most specific zone containing ``qname`` (zones sorted deep-first)."""
        for zone in self.zones:  # repro: allow[P005] zone count is topology-scale; deep-first list order is the most-specific-match semantics
            if qname.is_subdomain_of(zone.origin):
                return zone
        return None
