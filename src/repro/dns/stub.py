"""The stub resolver: the thin library on end-user machines (Figure 1).

It knows one trick: send a recursion-desired query to the configured LRS and
wait.  Applications in the examples use this to drive the full stack.

Real stub resolvers are not one-shot: ``options timeouts:n attempts:m`` in
resolv.conf retries a silent server.  This one does the same — each attempt
re-sends the query and waits ``timeout * backoff**attempt`` seconds, so a
query lost to a link blackout or an overloaded LRS is recovered instead of
surfacing straight to the application as a failure.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address
from typing import Callable

from ..dnswire import Message, Name, Rcode, ResourceRecord, RRType, make_query
from ..netsim import Node


@dataclasses.dataclass(slots=True)
class StubResult:
    """What a stub query produced."""

    status: str  # "ok" | "nxdomain" | "servfail" | "timeout"
    records: list[ResourceRecord]
    latency: float
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def addresses(self) -> list[IPv4Address]:
        return [rr.rdata.address for rr in self.records if rr.rtype == RRType.A]  # type: ignore[union-attr]


class StubResolver:
    """Sends recursive queries to a configured LRS.

    ``retries`` is the number of *additional* attempts after the first;
    attempt ``i`` waits ``timeout * backoff**i`` before giving up, so the
    defaults (1.0 s, 2 retries, 2× backoff) surface a hard failure after
    1 + 2 + 4 = 7 seconds — glibc-shaped behaviour, and the reason a brief
    upstream blackout costs latency rather than an error.
    """

    def __init__(
        self,
        node: Node,
        lrs_address: IPv4Address,
        *,
        timeout: float = 1.0,
        retries: int = 2,
        backoff: float = 2.0,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout <= 0 or backoff < 1.0:
            raise ValueError("timeout must be positive and backoff >= 1")
        self.node = node
        self.lrs_address = lrs_address
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.queries_sent = 0
        self.retries_sent = 0
        self._next_id = node.sim.rng.randrange(0x10000)

    def query(
        self,
        qname: Name | str,
        qtype: int = RRType.A,
        callback: Callable[[StubResult], None] | None = None,
    ) -> None:
        callback = callback or (lambda result: None)
        self._next_id = (self._next_id + 1) & 0xFFFF
        msg_id = self._next_id
        message = make_query(qname, qtype, msg_id=msg_id, recursion_desired=True)
        started = self.node.sim.now
        attempt = 0
        timer = None
        finished = False
        obs = self.node.sim.obs
        query_span = (
            obs.span("stub.query", qname=qname, node=self.node.name)
            if obs is not None and not obs.spans.exhausted
            else None
        )
        attempt_span = None

        def finish(result: StubResult) -> None:
            nonlocal finished
            if finished:
                return
            finished = True
            if timer is not None:
                timer.cancel()
            socket.close()
            if query_span:
                if attempt_span:
                    attempt_span.finish()
                query_span.finish(status=result.status, retries=result.retries)
            callback(result)

        def on_response(
            payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
        ) -> None:
            if not isinstance(payload, Message) or payload.header.msg_id != msg_id:
                return
            latency = self.node.sim.now - started
            if payload.header.rcode == Rcode.NXDOMAIN:
                finish(StubResult("nxdomain", [], latency, attempt))
            elif payload.header.rcode != Rcode.NOERROR:
                finish(StubResult("servfail", [], latency, attempt))
            else:
                finish(StubResult("ok", list(payload.answers), latency, attempt))

        def send_attempt() -> None:
            nonlocal timer, attempt_span
            if query_span:
                if attempt_span:
                    attempt_span.finish(outcome="timeout")
                attempt_span = query_span.child("stub.attempt", n=attempt)
            socket.send(message, self.lrs_address, 53, span=attempt_span)
            self.queries_sent += 1
            if attempt:
                self.retries_sent += 1
            timer = self.node.sim.schedule(
                self.timeout * self.backoff**attempt, on_timeout
            )

        def on_timeout() -> None:
            nonlocal attempt
            if attempt >= self.retries:
                finish(StubResult("timeout", [], self.node.sim.now - started, attempt))
                return
            attempt += 1
            send_attempt()

        socket = self.node.udp.bind_ephemeral(on_response)
        send_attempt()
