"""The stub resolver: the thin library on end-user machines (Figure 1).

It knows one trick: send a recursion-desired query to the configured LRS and
wait.  Applications in the examples use this to drive the full stack.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address
from typing import Callable

from ..dnswire import Message, Name, Rcode, ResourceRecord, RRType, make_query
from ..netsim import Node


@dataclasses.dataclass(slots=True)
class StubResult:
    """What a stub query produced."""

    status: str  # "ok" | "nxdomain" | "servfail" | "timeout"
    records: list[ResourceRecord]
    latency: float

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def addresses(self) -> list[IPv4Address]:
        return [rr.rdata.address for rr in self.records if rr.rtype == RRType.A]  # type: ignore[union-attr]


class StubResolver:
    """Sends recursive queries to a configured LRS."""

    def __init__(self, node: Node, lrs_address: IPv4Address, *, timeout: float = 5.0):
        self.node = node
        self.lrs_address = lrs_address
        self.timeout = timeout
        self._next_id = node.sim.rng.randrange(0, 0xFFFF)

    def query(
        self,
        qname: Name | str,
        qtype: int = RRType.A,
        callback: Callable[[StubResult], None] | None = None,
    ) -> None:
        callback = callback or (lambda result: None)
        self._next_id = (self._next_id + 1) & 0xFFFF
        msg_id = self._next_id
        message = make_query(qname, qtype, msg_id=msg_id, recursion_desired=True)
        started = self.node.sim.now
        finished = False

        def finish(result: StubResult) -> None:
            nonlocal finished
            if finished:
                return
            finished = True
            timer.cancel()
            socket.close()
            callback(result)

        def on_response(
            payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
        ) -> None:
            if not isinstance(payload, Message) or payload.header.msg_id != msg_id:
                return
            latency = self.node.sim.now - started
            if payload.header.rcode == Rcode.NXDOMAIN:
                finish(StubResult("nxdomain", [], latency))
            elif payload.header.rcode != Rcode.NOERROR:
                finish(StubResult("servfail", [], latency))
            else:
                finish(StubResult("ok", list(payload.answers), latency))

        socket = self.node.udp.bind_ephemeral(on_response)
        timer = self.node.sim.schedule(
            self.timeout,
            lambda: finish(StubResult("timeout", [], self.node.sim.now - started)),
        )
        socket.send(message, self.lrs_address, 53)
