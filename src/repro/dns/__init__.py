"""DNS servers: zones, authoritative server, recursive resolver, load generators."""

from .authoritative import AuthoritativeServer, BIND_TCP_COST, BIND_UDP_COST
from .cache import DnsCache
from .framing import StreamFramer, frame
from .loadgen import (
    ANS_SIMULATOR_COST,
    AnsSimulator,
    LRS_SIMULATOR_TIMEOUT,
    LoadStats,
    LrsSimulator,
    TcpLoadClient,
    TraceReplayClient,
)
from .recursive import BIND_TIMEOUT, LocalRecursiveServer, ResolveResult
from .secondary import SecondaryServer, TransferResult
from .stub import StubResolver, StubResult
from .zone import AnswerKind, LookupResult, Zone, parse_zone_text

__all__ = [
    "ANS_SIMULATOR_COST",
    "AnsSimulator",
    "AnswerKind",
    "AuthoritativeServer",
    "BIND_TCP_COST",
    "BIND_TIMEOUT",
    "BIND_UDP_COST",
    "DnsCache",
    "LRS_SIMULATOR_TIMEOUT",
    "LoadStats",
    "LocalRecursiveServer",
    "LookupResult",
    "LrsSimulator",
    "ResolveResult",
    "SecondaryServer",
    "StreamFramer",
    "StubResolver",
    "StubResult",
    "TcpLoadClient",
    "TraceReplayClient",
    "TransferResult",
    "Zone",
    "frame",
    "parse_zone_text",
]
