"""The paper's "DNS simulator program": high-rate ANS and LRS simulators.

§IV.D: *"We measured the DNS Guard throughput ... using an ANS simulator and
an LRS simulator because the throughput of BIND is too low to stress the DNS
guard prototype.  The ANS simulator responds to each DNS request with the
same answer ... The LRS simulator repeatedly submits requests to resolve the
same domain name, and is able to handle DNS responses containing NS records,
A records, and truncation flag.  After submitting a request, the LRS
simulator waits for the associated response for 10 msec, and sends in the
next request if it receives a response or the timer expires."*

Both are implemented here, plus the paced closed-loop clients used for the
BIND experiment of Figure 5 (whose 2-second BIND timer is what collapses
legitimate throughput under attack).
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address, IPv4Network
from typing import Callable

from ..dnswire import (
    Message,
    Name,
    RRType,
    a_record,
    make_query,
    make_response,
    ns_record,
)
from ..netsim import Node, TcpConnection
from .framing import StreamFramer, frame

#: ANS simulator capacity from the paper: ~110K requests/second.
ANS_SIMULATOR_COST = 1.0 / 110000.0

#: The LRS simulator's response wait (paper: 10 msec).
LRS_SIMULATOR_TIMEOUT = 0.010


class AnsSimulator:
    """A minimal ANS that answers every request with the same answer.

    ``mode`` selects the canned response shape:

    * ``"answer"`` — a non-referral A answer (drives the fabricated-NS/IP
      guard path);
    * ``"referral"`` — an NS + glue A referral (drives the NS-name path).
    """

    def __init__(
        self,
        node: Node,
        *,
        mode: str = "answer",
        request_cost: float = ANS_SIMULATOR_COST,
        answer_address: IPv4Address | str = "198.51.100.10",
        referral_target: IPv4Address | str = "198.51.100.53",
        answer_ttl: int = 0,
        queue_limit: float = 0.0005,
    ):
        if mode not in ("answer", "referral"):
            raise ValueError(f"unknown AnsSimulator mode {mode!r}")
        self.node = node
        self.mode = mode
        self.request_cost = request_cost
        self.answer_address = IPv4Address(str(answer_address))
        self.referral_target = IPv4Address(str(referral_target))
        self.answer_ttl = answer_ttl
        self.requests_served = 0
        self.requests_dropped = 0
        # a shallow service queue models the UDP socket buffer: overload
        # means drops (which clients see as loss), not unbounded queueing
        node.cpu.queue_limit = queue_limit
        # observability: spans bridge the CPU-queue gap via a side table —
        # threading them through cpu.submit args would perturb the
        # determinism trace (see AuthoritativeServer)
        self._obs = node.sim.obs
        self._serve_spans: dict[tuple, object] = {}
        # per-qname response template cache: the RR bodies and wire size of
        # a response depend only on the qname (headers echo the query and
        # are fixed-size), so repeat queries skip record building and the
        # send-path encode entirely; bounded against qname-spraying attacks
        self._response_rrs: dict[Name, tuple] = {}
        self._response_sizes: dict[Name, int] = {}
        if self._obs is not None:
            self._obs.add_snapshot(f"ans.{node.name}", self.stats_snapshot)
        self._socket = node.udp.bind(53, self._on_query)

    def stats_snapshot(self) -> dict[str, int]:
        return {
            "requests_served": self.requests_served,
            "requests_dropped": self.requests_dropped,
        }

    def _on_query(
        self, payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
    ) -> None:
        if not isinstance(payload, Message) or not payload.is_query():
            return
        obs = self._obs
        span = None
        if obs is not None and not obs.spans.exhausted:
            span = obs.span(
                "ans.serve", parent=obs.inbound_span(), node=self.node.name
            )
        if not self.node.cpu.submit(self.request_cost, self._serve, payload, src, sport, dst):
            self.requests_dropped += 1
            if span:
                span.finish(outcome="cpu_drop")
        elif span:
            self._serve_spans[(src, sport, payload.header.msg_id)] = span
            if len(self._serve_spans) > 4096:
                self._serve_spans.pop(next(iter(self._serve_spans)))

    def _serve(self, query: Message, src: IPv4Address, sport: int, dst: IPv4Address) -> None:
        self.requests_served += 1
        span = self._serve_spans.pop((src, sport, query.header.msg_id), None)
        if span:
            span.finish(outcome="answered")
        response = self.respond(query)
        qname = query.question.qname
        size = self._response_sizes.get(qname)
        if size is None:
            if len(self._response_sizes) > 4096:
                self._response_sizes.clear()
            size = self._response_sizes[qname] = response.wire_size()  # repro: allow[P002] cache fill — encoded once per qname, then reused for every later query
        self._socket.send(response, src, sport, src=dst, size=size, span=span)

    def respond(self, query: Message) -> Message:
        qname = query.question.qname
        cached = self._response_rrs.get(qname)
        if cached is None:
            if len(self._response_rrs) > 4096:
                self._response_rrs.clear()
            if self.mode == "answer":
                cached = (
                    (a_record(qname, self.answer_address, ttl=self.answer_ttl),),
                    (),
                    (),
                )
            else:
                # referral: delegate the first label of qname to a fixed
                # child server
                child = qname if len(qname) <= 1 else Name(qname.labels[-1:])
                ns_name = child.child(b"ns1")
                cached = (
                    (),
                    (ns_record(child, ns_name, ttl=3600),),
                    (a_record(ns_name, self.referral_target, ttl=3600),),
                )
            self._response_rrs[qname] = cached
        answers, authorities, additionals = cached
        response = make_response(query, authoritative=self.mode == "answer")
        response.answers.extend(answers)
        response.authorities.extend(authorities)
        response.additionals.extend(additionals)
        return response


@dataclasses.dataclass(slots=True)
class LoadStats:
    """Counters exposed by the load generators."""

    sent: int = 0
    completed: int = 0
    timeouts: int = 0
    window_completed: int = 0
    window_started_at: float = 0.0

    def begin_window(self, now: float) -> None:
        self.window_completed = 0
        self.window_started_at = now

    def throughput(self, now: float) -> float:
        elapsed = now - self.window_started_at
        return self.window_completed / elapsed if elapsed > 0 else 0.0


class LrsSimulator:
    """The closed-loop LRS load generator (paper §IV.D).

    ``workload`` mirrors the protected ANS's answer type:

    * ``"plain"`` — complete on any answer to the original query (modified
      DNS behind a local guard, or an unguarded ANS);
    * ``"referral"`` — follow a glueless NS referral by querying the NS
      target's A record; complete when that A arrives (message 6);
    * ``"nonreferral"`` — additionally re-query the original name at the
      fabricated COOKIE2 address (message 7), completing on its answer
      (message 10).

    A TC=1 response always falls back to TCP (the TCP-based scheme).
    ``cache_cookies=False`` forces the worst-case first-contact exchange on
    every iteration — the paper's "cache miss" rows.

    ``qnames`` widens the workload to many names: each iteration draws one,
    uniformly or Zipf-distributed by list position (``name_distribution``)
    — the realistic popularity skew for the answer-cache and per-name
    cookie-storage experiments.  Cookie state is kept per name.

    With ``target_rate`` set, the loops pace themselves to that aggregate
    request rate instead of running flat out; a timed-out request stalls its
    loop for the full ``timeout``, which with BIND's 2-second timer is what
    collapses legitimate throughput under attack (Figure 5).
    """

    def __init__(
        self,
        node: Node,
        server: IPv4Address,
        qname: Name | str = "www.foo.com",
        *,
        workload: str = "plain",
        concurrency: int = 1,
        timeout: float = LRS_SIMULATOR_TIMEOUT,
        cache_cookies: bool = True,
        qtype: int = RRType.A,
        target_rate: float | None = None,
        qnames: list[Name | str] | None = None,
        name_distribution: str = "uniform",
        zipf_s: float = 1.0,
    ):
        if workload not in ("plain", "referral", "nonreferral"):
            raise ValueError(f"unknown workload {workload!r}")
        if name_distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown name distribution {name_distribution!r}")
        self.node = node
        self.server = server
        self.qname = Name.from_text(qname) if isinstance(qname, str) else qname
        if qnames is None:
            self.qnames = [self.qname]
        else:
            self.qnames = [
                Name.from_text(n) if isinstance(n, str) else n for n in qnames
            ]
            self.qname = self.qnames[0]
        self.name_distribution = name_distribution
        if name_distribution == "zipf":
            weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(self.qnames))]
            total = sum(weights)
            self._name_weights = [w / total for w in weights]
        else:
            self._name_weights = None
        self.qtype = qtype
        self.workload = workload
        self.concurrency = concurrency
        self.timeout = timeout
        self.cache_cookies = cache_cookies
        self.target_rate = target_rate
        self.stats = LoadStats()
        self.latencies: list[float] = []
        self.record_latencies = False
        self._next_id = 1
        # per-name cookie caches shared by all loops
        self._cookie_ns_targets: dict[Name, Name] = {}
        self._cookie2_addresses: dict[Name, IPv4Address] = {}
        self._running = False

    # -- control ---------------------------------------------------------------

    def start(self) -> None:
        self._running = True
        if self.target_rate is None:
            for _ in range(self.concurrency):
                self._begin_iteration()
            return
        # stagger paced loops across one pacing interval
        interval = self.concurrency / self.target_rate
        for i in range(self.concurrency):
            self.node.sim.schedule(i * interval / self.concurrency, self._begin_iteration)

    def stop(self) -> None:
        self._running = False

    def flush_cookie_cache(self) -> None:
        self._cookie_ns_targets.clear()
        self._cookie2_addresses.clear()

    # backwards-friendly single-name accessors used by tests and examples
    @property
    def _cookie_ns_target(self) -> Name | None:
        return self._cookie_ns_targets.get(self.qname)

    @property
    def _cookie2_address(self) -> IPv4Address | None:
        return self._cookie2_addresses.get(self.qname)

    def pick_qname(self) -> Name:
        """Draw this iteration's query name from the workload's names."""
        if len(self.qnames) == 1:
            return self.qnames[0]
        rng = self.node.sim.rng
        if self._name_weights is None:
            return self.qnames[rng.randrange(len(self.qnames))]
        return rng.choices(self.qnames, weights=self._name_weights, k=1)[0]

    # -- one closed-loop iteration ----------------------------------------------

    def _begin_iteration(self) -> None:
        if not self._running:
            return
        self.stats.sent += 1
        _Interaction(self, started_at=self.node.sim.now).start()

    def _iteration_done(self, completed: bool, started_at: float) -> None:
        if completed:
            self.stats.completed += 1
            self.stats.window_completed += 1
            if self.record_latencies:
                self.latencies.append(self.node.sim.now - started_at)
        else:
            self.stats.timeouts += 1
        if self.target_rate is None:
            self._begin_iteration()
            return
        # paced mode: a successful cycle waits out the rest of its pacing
        # interval; a timed-out cycle has already burned more than that
        interval = self.concurrency / self.target_rate
        elapsed = self.node.sim.now - started_at
        self.node.sim.schedule(max(0.0, interval - elapsed), self._begin_iteration)

    def msg_id(self) -> int:
        self._next_id = (self._next_id + 1) & 0xFFFF
        return self._next_id


class _Interaction:
    """One request interaction: possibly a multi-message cookie exchange."""

    # one per request iteration on the closed-loop hot path (P001)
    __slots__ = (
        "lrs",
        "qname",
        "started_at",
        "node",
        "socket",
        "timer",
        "finished",
        "span",
        "_leg",
    )

    def __init__(self, sim_lrs: LrsSimulator, started_at: float):
        self.lrs = sim_lrs
        self.qname = sim_lrs.pick_qname()
        self.started_at = started_at
        self.node = sim_lrs.node
        self.socket = None
        self.timer = None
        self.finished = False
        self.span = None
        self._leg = None

    # -- plumbing -------------------------------------------------------------

    def start(self) -> None:
        lrs = self.lrs
        obs = self.node.sim.obs
        if obs is not None and not obs.spans.exhausted:
            self.span = obs.span(
                "lrs.interaction", qname=self.qname, workload=lrs.workload
            )
        cookie2 = lrs._cookie2_addresses.get(self.qname)
        ns_target = lrs._cookie_ns_targets.get(self.qname)
        if lrs.workload == "nonreferral" and lrs.cache_cookies and cookie2:
            self._send(self.qname, lrs.qtype, cookie2, self._on_final_answer)
        elif lrs.workload == "referral" and lrs.cache_cookies and ns_target:
            self._send(ns_target, RRType.A, lrs.server, self._on_ns_target_a)
        else:
            self._send(self.qname, lrs.qtype, lrs.server, self._on_first_response)

    def _send(
        self,
        qname: Name,
        qtype: int,
        server: IPv4Address,
        handler: Callable[[Message, IPv4Address], None],
    ) -> None:
        msg_id = self.lrs.msg_id()
        query = make_query(qname, qtype, msg_id=msg_id)
        self._cleanup_io()
        leg = None
        if self.span:
            leg = self.span.child("lrs.leg", qname=qname, server=server)
            self._leg = leg

        def on_response(
            payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
        ) -> None:
            if not isinstance(payload, Message) or payload.header.msg_id != msg_id:
                return
            self._cancel_timer()
            if leg is not None:
                leg.finish()
            if payload.header.tc:
                self._fall_back_to_tcp(query, src)
                return
            handler(payload, src)

        self.socket = self.node.udp.bind_ephemeral(on_response)
        self.socket.send(query, server, 53, span=leg)
        self.timer = self.node.sim.schedule(self.lrs.timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        self.timer = None
        self.finish(False)

    def finish(self, completed: bool) -> None:
        if self.finished:
            return
        self.finished = True
        self._cleanup_io()
        self._cancel_timer()
        if self.span:
            if self._leg and not self._leg.finished:
                self._leg.finish(outcome="timeout")
            self.span.finish(completed=completed)
        self.lrs._iteration_done(completed, self.started_at)

    # -- response handlers ---------------------------------------------------------

    def _on_first_response(self, response: Message, src: IPv4Address) -> None:
        lrs = self.lrs
        if response.answers:
            self.finish(True)
            return
        ns_rrs = [rr for rr in response.authorities if rr.rtype == RRType.NS]
        if not ns_rrs:
            self.finish(lrs.workload == "plain")
            return
        target = ns_rrs[0].rdata.target  # type: ignore[union-attr]
        glue = [rr for rr in response.additionals if rr.rtype == RRType.A and rr.name == target]
        if glue:
            # referral with glue: for these workloads that's completion
            self.finish(True)
            return
        if lrs.cache_cookies:
            lrs._cookie_ns_targets[self.qname] = target
        self._send(target, RRType.A, src, self._on_ns_target_a)

    def _on_ns_target_a(self, response: Message, src: IPv4Address) -> None:
        lrs = self.lrs
        a_rrs = [rr for rr in response.answers if rr.rtype == RRType.A]
        if not a_rrs:
            self.finish(False)
            return
        address = a_rrs[0].rdata.address  # type: ignore[union-attr]
        if lrs.workload == "nonreferral":
            if lrs.cache_cookies:
                lrs._cookie2_addresses[self.qname] = address
            self._send(self.qname, lrs.qtype, address, self._on_final_answer)
            return
        self.finish(True)  # message 6: referral workload complete

    def _on_final_answer(self, response: Message, src: IPv4Address) -> None:
        self.finish(bool(response.answers))

    # -- TCP fallback ---------------------------------------------------------------

    def _fall_back_to_tcp(self, query: Message, server: IPv4Address) -> None:
        self._cleanup_io()
        framer = StreamFramer()
        tcp_span = None
        if self.span:
            tcp_span = self.span.child("lrs.tcp_fallback", server=server)
            self._leg = tcp_span
        def on_established(c: TcpConnection) -> None:
            c.send(frame(query))

        def on_data(c: TcpConnection, data: bytes) -> None:
            if data == b"":
                return
            for message in framer.feed(data):
                if message.header.msg_id == query.header.msg_id:
                    deadline.cancel()
                    c.close()
                    if tcp_span:
                        tcp_span.finish(outcome="answered")
                    self.finish(bool(message.answers))
                    return

        def on_close(c: TcpConnection, error: bool) -> None:
            if error and not self.finished:
                deadline.cancel()
                if tcp_span and not tcp_span.finished:
                    tcp_span.finish(outcome="error")
                self.finish(False)

        # connect first so the failure deadline can take the bound method
        # and its argument instead of a per-event closure (P003); the TCP
        # callbacks cannot fire before this function returns
        conn = self.node.tcp.connect(
            server, 53, on_established=on_established, on_data=on_data, on_close=on_close
        )
        deadline = self.node.sim.schedule(self.lrs.timeout * 10, self._tcp_fail, conn)

    def _tcp_fail(self, conn: TcpConnection) -> None:
        conn.abort()
        self.finish(False)

    # -- helpers ------------------------------------------------------------------

    def _cleanup_io(self) -> None:
        if self.socket is not None:
            self.socket.close()
            self.socket = None

    def _cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class TcpLoadClient:
    """Holds N concurrent DNS-over-TCP requests against a server (Fig 7a).

    Starts ``concurrency`` connections; each sends one framed query, reads
    the response, closes, and is immediately replaced — the paper's LRS
    simulator behaviour for the TCP proxy benchmark.
    """

    def __init__(
        self,
        node: Node,
        server: IPv4Address,
        *,
        concurrency: int,
        qname: Name | str = "www.foo.com",
        connect_timeout: float = 2.0,
    ):
        self.node = node
        self.server = server
        self.concurrency = concurrency
        self.qname = Name.from_text(qname) if isinstance(qname, str) else qname
        self.connect_timeout = connect_timeout
        self.stats = LoadStats()
        self._next_id = 1
        self._running = False

    def start(self) -> None:
        self._running = True
        for _ in range(self.concurrency):
            self._launch()

    def stop(self) -> None:
        self._running = False

    def _launch(self) -> None:
        if not self._running:
            return
        self.stats.sent += 1
        self._next_id = (self._next_id + 1) & 0xFFFF
        msg_id = self._next_id
        query = make_query(self.qname, msg_id=msg_id)
        framer = StreamFramer()
        done = False

        def finish(completed: bool) -> None:
            nonlocal done
            if done:
                return
            done = True
            deadline.cancel()
            if completed:
                self.stats.completed += 1
                self.stats.window_completed += 1
            else:
                self.stats.timeouts += 1
            self._launch()

        def on_established(c: TcpConnection) -> None:
            c.send(frame(query))

        def on_data(c: TcpConnection, data: bytes) -> None:
            if data == b"":
                return
            for message in framer.feed(data):
                if message.header.msg_id == msg_id:
                    c.close()
                    finish(True)
                    return

        def on_close(c: TcpConnection, error: bool) -> None:
            if error:
                finish(False)

        conn = self.node.tcp.connect(
            self.server, 53, on_established=on_established, on_data=on_data, on_close=on_close
        )
        deadline = self.node.sim.schedule(self.connect_timeout, conn.abort)


class TraceReplayClient:
    """Replays a timed query trace against a server (open loop).

    ``trace`` is a list of ``(time_offset_seconds, qname)`` pairs relative
    to :meth:`start`.  Each query is fired at its scheduled instant and
    matched to its response by message id; per-query latency is recorded.
    Useful for replaying captured or synthetic workloads with realistic
    arrival processes instead of closed-loop saturation.
    """

    def __init__(
        self,
        node: Node,
        server: IPv4Address,
        trace: list[tuple[float, Name | str]],
        *,
        qtype: int = RRType.A,
        timeout: float = LRS_SIMULATOR_TIMEOUT,
    ):
        self.node = node
        self.server = server
        self.trace = [
            (offset, Name.from_text(q) if isinstance(q, str) else q)
            for offset, q in sorted(trace)
        ]
        self.qtype = qtype
        self.timeout = timeout
        self.stats = LoadStats()
        self.latencies: list[float] = []
        self._next_id = 1

    def start(self) -> None:
        for offset, qname in self.trace:
            self.node.sim.schedule(offset, self._fire, qname)

    def _fire(self, qname: Name) -> None:
        self.stats.sent += 1
        self._next_id = (self._next_id + 1) & 0xFFFF
        msg_id = self._next_id
        started = self.node.sim.now
        done = [False]

        def finish(completed: bool) -> None:
            if done[0]:
                return
            done[0] = True
            socket.close()
            timer.cancel()
            if completed:
                self.stats.completed += 1
                self.stats.window_completed += 1
                self.latencies.append(self.node.sim.now - started)
            else:
                self.stats.timeouts += 1

        def on_response(payload, src, sport, dst) -> None:
            if isinstance(payload, Message) and payload.header.msg_id == msg_id:
                finish(True)

        socket = self.node.udp.bind_ephemeral(on_response)
        timer = self.node.sim.schedule(self.timeout, finish, False)
        socket.send(make_query(qname, self.qtype, msg_id=msg_id), self.server, 53)
