"""DNS-over-TCP stream framing (RFC 1035 §4.2.2): 2-byte length prefix."""

from __future__ import annotations

import struct

from ..dnswire import DecodeError, Message


def frame(message: Message) -> bytes:
    """Serialise a message with its TCP length prefix."""
    wire = message.encode()  # repro: allow[P002] single unavoidable serialisation per stream write; frozen messages hit the memoized wire
    if len(wire) > 0xFFFF:
        raise ValueError("DNS message too large for TCP framing")
    return struct.pack("!H", len(wire)) + wire


class StreamFramer:
    """Incremental de-framer: feed stream bytes, collect whole messages."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Message]:
        """Absorb ``data``; return every complete message now available."""
        self._buffer += data
        messages: list[Message] = []
        while True:
            if len(self._buffer) < 2:
                break
            (length,) = struct.unpack_from("!H", self._buffer, 0)
            if len(self._buffer) < 2 + length:
                break
            wire = bytes(self._buffer[2 : 2 + length])
            del self._buffer[: 2 + length]
            messages.append(Message.decode(wire))
        return messages

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def try_frame_size(message: Message) -> int:
    """Bytes this message occupies on a TCP stream (prefix included)."""
    return 2 + message.wire_size()


__all__ = ["DecodeError", "StreamFramer", "frame", "try_frame_size"]
