"""Zone data and a master-file-subset parser (RFC 1035 §5).

A :class:`Zone` answers the three questions an authoritative server asks:
is this name delegated (referral), do we have authoritative data (answer),
or is it NXDOMAIN/NODATA.  Delegation points carry both NS records and glue
A records, matching the standard delegation practice the paper relies on
("each next-level domain provides both the name and IP of its ANS").
"""

from __future__ import annotations

import dataclasses
import enum
from ipaddress import IPv4Address

from ..dnswire import (
    A,
    CNAME,
    MX,
    NS,
    Name,
    ResourceRecord,
    RRClass,
    RRType,
    SOA,
    SRV,
    TXT,
)


class AnswerKind(enum.Enum):
    """Classification of a zone lookup result."""

    ANSWER = "answer"
    DELEGATION = "delegation"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    CNAME = "cname"


@dataclasses.dataclass(slots=True)
class LookupResult:
    """The outcome of a zone lookup, ready to be turned into a response."""

    kind: AnswerKind
    records: list[ResourceRecord] = dataclasses.field(default_factory=list)
    authority: list[ResourceRecord] = dataclasses.field(default_factory=list)
    additional: list[ResourceRecord] = dataclasses.field(default_factory=list)

    @property
    def is_referral(self) -> bool:
        return self.kind is AnswerKind.DELEGATION


class Zone:
    """One zone of authoritative data rooted at ``origin``."""

    def __init__(self, origin: Name | str, *, default_ttl: int = 3600):
        self.origin = Name.from_text(origin) if isinstance(origin, str) else origin
        self.default_ttl = default_ttl
        self._records: dict[Name, dict[int, list[ResourceRecord]]] = {}
        #: Names at which this zone delegates to a child zone.
        self._delegations: set[Name] = set()

    # -- building ------------------------------------------------------------

    def add(self, rr: ResourceRecord) -> None:
        """Add one record; NS records below the origin become delegations."""
        if not rr.name.is_subdomain_of(self.origin):
            raise ValueError(f"{rr.name} is outside zone {self.origin}")
        self._records.setdefault(rr.name, {}).setdefault(rr.rtype, []).append(rr)
        if rr.rtype == RRType.NS and rr.name != self.origin:
            self._delegations.add(rr.name)

    def add_a(self, name: Name | str, address: IPv4Address | str, ttl: int | None = None) -> None:
        name = Name.from_text(name) if isinstance(name, str) else name
        if not isinstance(address, IPv4Address):
            address = IPv4Address(address)
        if ttl is None:
            ttl = self.default_ttl
        self.add(ResourceRecord(name, RRType.A, RRClass.IN, ttl, A(address)))

    def delegate(
        self,
        child: Name | str,
        ns_name: Name | str,
        ns_address: IPv4Address | str,
        ttl: int | None = None,
    ) -> None:
        """Delegate ``child`` to a nameserver, with glue."""
        child = Name.from_text(child) if isinstance(child, str) else child
        ns_name = Name.from_text(ns_name) if isinstance(ns_name, str) else ns_name
        if ttl is None:
            ttl = self.default_ttl
        self.add(ResourceRecord(child, RRType.NS, RRClass.IN, ttl, NS(ns_name)))
        if not isinstance(ns_address, IPv4Address):
            ns_address = IPv4Address(ns_address)
        # glue may technically live below the cut; store it so referrals carry it
        self._records.setdefault(ns_name, {}).setdefault(RRType.A, []).append(
            ResourceRecord(ns_name, RRType.A, RRClass.IN, ttl, A(ns_address))
        )

    # -- lookup ----------------------------------------------------------------

    def lookup(self, qname: Name, qtype: int) -> LookupResult:
        """Resolve ``qname``/``qtype`` against this zone's data."""
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(AnswerKind.NXDOMAIN)

        # walk from the origin down toward qname looking for a zone cut
        cut = self._closest_delegation(qname)
        if cut is not None:
            ns_rrs = self._records[cut][RRType.NS]
            glue: list[ResourceRecord] = []
            for ns_rr in ns_rrs:
                target = ns_rr.rdata.target  # type: ignore[union-attr]
                glue.extend(self._records.get(target, {}).get(RRType.A, []))
            return LookupResult(AnswerKind.DELEGATION, authority=list(ns_rrs), additional=glue)

        node = self._records.get(qname)
        if node is None:
            wildcard = self._wildcard_node(qname)
            if wildcard is None:
                return LookupResult(AnswerKind.NXDOMAIN, authority=self._soa_authority())
            node = {
                rtype: [dataclasses.replace(rr, name=qname) for rr in rrs]
                for rtype, rrs in wildcard.items()
            }
        if qtype in node:
            return LookupResult(AnswerKind.ANSWER, records=list(node[qtype]))
        if RRType.CNAME in node and qtype != RRType.CNAME:
            return LookupResult(AnswerKind.CNAME, records=list(node[RRType.CNAME]))
        return LookupResult(AnswerKind.NODATA, authority=self._soa_authority())

    def _wildcard_node(self, qname: Name) -> dict[int, list[ResourceRecord]] | None:
        """RFC 1034 §4.3.3: the ``*`` child of qname's closest encloser.

        The closest encloser is the longest existing ancestor of ``qname``
        within the zone; the wildcard applies only at that level.
        """
        encloser = qname.parent()
        while True:
            if encloser in self._records or encloser == self.origin:
                return self._records.get(encloser.child(b"*"))
            if encloser.is_root():
                return None
            encloser = encloser.parent()

    def _closest_delegation(self, qname: Name) -> Name | None:
        """The deepest delegation point at or above ``qname`` (below origin)."""
        candidate = qname
        while candidate != self.origin and not candidate.is_root():
            if candidate in self._delegations:
                return candidate
            candidate = candidate.parent()
        return None

    def _soa_authority(self) -> list[ResourceRecord]:
        soa = self._records.get(self.origin, {}).get(RRType.SOA)
        return list(soa) if soa else []

    # -- introspection -----------------------------------------------------------

    def to_text(self) -> str:
        """Serialise to master-file format (re-parseable by
        :func:`parse_zone_text`)."""
        lines = [f"$ORIGIN {self.origin}", f"$TTL {self.default_ttl}"]
        for name in sorted(self._records):
            for rtype, rrs in sorted(self._records[name].items()):
                for rr in rrs:
                    rdata_text = _rdata_to_text(rr.rdata)
                    if rdata_text is None:
                        continue  # unsupported type: skip rather than corrupt
                    owner = "@" if name == self.origin else str(name)
                    lines.append(
                        f"{owner} {rr.ttl} IN {RRType.name_of(rr.rtype)} {rdata_text}"
                    )
        return "\n".join(lines) + "\n"

    def names(self) -> list[Name]:
        return sorted(self._records)

    def all_records(self) -> list[ResourceRecord]:
        """Every record in canonical name order (AXFR body order)."""
        records: list[ResourceRecord] = []
        for name in sorted(self._records):  # repro: allow[P005] canonical AXFR body order is the contract; runs once per transfer, not per packet
            for rtype in sorted(self._records[name]):  # repro: allow[P005] same — canonical order within one owner name

                records.extend(self._records[name][rtype])
        return records

    def soa(self) -> ResourceRecord | None:
        """The zone's SOA record, if present."""
        rrs = self._records.get(self.origin, {}).get(RRType.SOA)
        return rrs[0] if rrs else None

    def record_count(self) -> int:
        return sum(len(rrs) for node in self._records.values() for rrs in node.values())

    def __contains__(self, name: Name) -> bool:
        return name in self._records


def _rdata_to_text(rdata) -> str | None:
    """Master-file presentation of supported RDATA types; None if unknown."""
    if isinstance(rdata, A):
        return str(rdata.address)
    if isinstance(rdata, (NS, CNAME)):
        return str(rdata.target)
    if isinstance(rdata, MX):
        return f"{rdata.preference} {rdata.exchange}"
    if isinstance(rdata, SRV):
        return f"{rdata.priority} {rdata.weight} {rdata.port} {rdata.target}"
    if isinstance(rdata, TXT):
        return " ".join(f'"{s.decode("ascii", "replace")}"' for s in rdata.strings)
    if isinstance(rdata, SOA):
        return (
            f"{rdata.mname} {rdata.rname} {rdata.serial} {rdata.refresh} "
            f"{rdata.retry} {rdata.expire} {rdata.minimum}"
        )
    return None


# ---------------------------------------------------------------------------
# Master-file parser (subset)
# ---------------------------------------------------------------------------

_PARSERS = {
    "A": lambda fields, origin: (RRType.A, A(IPv4Address(fields[0]))),
    "NS": lambda fields, origin: (RRType.NS, NS(_absolute(fields[0], origin))),
    "CNAME": lambda fields, origin: (RRType.CNAME, CNAME(_absolute(fields[0], origin))),
    "MX": lambda fields, origin: (RRType.MX, MX(int(fields[0]), _absolute(fields[1], origin))),
    "TXT": lambda fields, origin: (RRType.TXT, TXT(tuple(f.strip('"').encode() for f in fields))),
    "SRV": lambda fields, origin: (
        RRType.SRV,
        SRV(int(fields[0]), int(fields[1]), int(fields[2]), _absolute(fields[3], origin)),
    ),
    "SOA": lambda fields, origin: (
        RRType.SOA,
        SOA(
            _absolute(fields[0], origin),
            _absolute(fields[1], origin),
            int(fields[2]),
            int(fields[3]),
            int(fields[4]),
            int(fields[5]),
            int(fields[6]),
        ),
    ),
}


def _absolute(text: str, origin: Name) -> Name:
    """Resolve a possibly-relative master-file name against ``origin``."""
    if text == "@":
        return origin
    if text.endswith("."):
        return Name.from_text(text)
    relative = Name.from_text(text)
    return Name((*relative.labels, *origin.labels))


def parse_zone_text(text: str, origin: Name | str | None = None) -> Zone:
    """Parse a master-file-format zone (subset: $ORIGIN, $TTL, @, relative names).

    Continuation parentheses and most esoterica are unsupported — the testbed
    zones don't need them — but the common record shapes all work.
    """
    current_origin = Name.from_text(origin) if isinstance(origin, str) else origin
    default_ttl = 3600
    zone: Zone | None = None
    last_name: Name | None = None

    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.startswith("$ORIGIN"):
            current_origin = Name.from_text(line.split()[1])
            continue
        if line.startswith("$TTL"):
            default_ttl = int(line.split()[1])
            continue
        if current_origin is None:
            raise ValueError("zone text must set $ORIGIN (or pass origin=)")
        if zone is None:
            zone = Zone(current_origin, default_ttl=default_ttl)

        starts_with_space = line[0] in " \t"
        fields = line.split()
        if starts_with_space:
            if last_name is None:
                raise ValueError(f"continuation line with no previous owner: {raw_line!r}")
            name = last_name
        else:
            name = _absolute(fields.pop(0), current_origin)
            last_name = name

        ttl = default_ttl
        if fields and fields[0].isdigit():
            ttl = int(fields.pop(0))
        if fields and fields[0].upper() == "IN":
            fields.pop(0)
        if not fields:
            raise ValueError(f"missing record type: {raw_line!r}")
        rtype_text = fields.pop(0).upper()
        parser = _PARSERS.get(rtype_text)
        if parser is None:
            raise ValueError(f"unsupported record type {rtype_text!r}")
        rtype, rdata = parser(fields, current_origin)
        zone.add(ResourceRecord(name, rtype, RRClass.IN, ttl, rdata))

    if zone is None:
        raise ValueError("zone text contained no records")
    return zone
