"""A TTL-honouring resolver cache with LRU bounding.

TTL semantics matter to the guard schemes: the fabricated NS records carry a
*large* TTL precisely so the cookie stays cached at the LRS and most queries
complete in one RTT, while experiment runners set answer TTL to 0 to disable
caching (paper §IV.C).  A record with TTL 0 is usable for the in-flight
resolution but never stored.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from ..dnswire import Name, ResourceRecord


@dataclasses.dataclass(slots=True)
class _Entry:
    records: list[ResourceRecord]
    expires_at: float


class DnsCache:
    """Cache of rrsets keyed by (name, rtype), bounded LRU.

    Also holds negative entries (RFC 2308): an NXDOMAIN/NODATA response is
    remembered for the zone's SOA minimum so repeated queries for missing
    names do not re-traverse the hierarchy.
    """

    def __init__(self, max_entries: int = 10000):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[Name, int], _Entry] = OrderedDict()
        self._negative: OrderedDict[tuple[Name, int], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0

    def put(self, name: Name, rtype: int, records: list[ResourceRecord], now: float) -> None:
        """Store an rrset; TTL 0 records are not cached (per RFC 1035)."""
        if not records:
            return
        ttl = min(rr.ttl for rr in records)
        if ttl <= 0:
            return
        key = (name, rtype)
        self._entries[key] = _Entry(list(records), now + ttl)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get(self, name: Name, rtype: int, now: float) -> list[ResourceRecord] | None:
        """Fetch a live rrset with TTLs aged appropriately, or None."""
        key = (name, rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.expires_at <= now:
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        remaining = int(entry.expires_at - now)
        return [
            dataclasses.replace(rr, ttl=min(rr.ttl, max(remaining, 1))) for rr in entry.records
        ]

    # -- negative caching (RFC 2308) -----------------------------------------

    def put_negative(self, name: Name, rtype: int, ttl: float, now: float) -> None:
        """Remember that ``name``/``rtype`` does not exist, for ``ttl`` seconds."""
        if ttl <= 0:
            return
        key = (name, rtype)
        self._negative[key] = now + ttl
        self._negative.move_to_end(key)
        while len(self._negative) > self.max_entries:
            self._negative.popitem(last=False)

    def is_negative(self, name: Name, rtype: int, now: float) -> bool:
        """True if a live negative entry covers ``name``/``rtype``."""
        key = (name, rtype)
        expires_at = self._negative.get(key)
        if expires_at is None:
            return False
        if expires_at <= now:
            del self._negative[key]
            return False
        self.negative_hits += 1
        return True

    # -- maintenance ----------------------------------------------------------

    def evict(self, name: Name, rtype: int) -> None:
        self._entries.pop((name, rtype), None)
        self._negative.pop((name, rtype), None)

    def flush(self) -> None:
        self._entries.clear()
        self._negative.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[Name, int]) -> bool:
        return key in self._entries
