"""Deterministic fault injection for the DNS-guard testbed.

The paper's claim is not just that spoofed floods are dropped but that
*legitimate* clients stay served while it happens.  Real deployments see
that claim tested by bursty loss, flapping links, crashing middleboxes and
server failover — so this package scripts those conditions against the
simulator, seeded and replayable: a :class:`FaultPlan` of timed
:class:`FaultAction` s, with all fault randomness drawn from the
``"faults"`` child stream of the simulator RNG so enabling a fault never
perturbs the core event sequence.

See ``python -m repro faults`` for the scenario suite that runs each fault
against all three guard schemes.
"""

from ..netsim import GilbertElliottLoss
from .plan import (
    BurstyLoss,
    Callback,
    Corrupt,
    Duplicate,
    FAULT_STREAM,
    FaultAction,
    FaultContext,
    FaultPlan,
    GuardCrash,
    LinkDown,
    LinkFlap,
    Reorder,
    RouteFailover,
)

__all__ = [
    "BurstyLoss",
    "Callback",
    "Corrupt",
    "Duplicate",
    "FAULT_STREAM",
    "FaultAction",
    "FaultContext",
    "FaultPlan",
    "GilbertElliottLoss",
    "GuardCrash",
    "LinkDown",
    "LinkFlap",
    "Reorder",
    "RouteFailover",
]
