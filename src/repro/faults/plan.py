"""Scriptable, seeded fault plans for the discrete-event testbed.

A :class:`FaultPlan` is a timed list of :class:`FaultAction` objects —
link blackouts and flaps, bursty Gilbert–Elliott loss, packet duplication
/ reordering / corruption, guard crash-and-restart with key rotation, and
route failover to a secondary server.  ``plan.schedule(sim)`` arms every
action on the simulator clock; timed actions with a ``duration`` revert
themselves when it elapses.

Determinism: every stochastic fault (loss models, duplication, …) draws
from the ``"faults"`` child stream of the simulator RNG
(:meth:`Simulator.child_rng`), never from ``Simulator.rng`` itself.  Two
consequences worth the satellite note in DESIGN.md: (1) adding or removing
fault randomness cannot perturb the core event sequence, so A/B runs stay
comparable; (2) the ``repro.analysis`` D002 lint stays clean — no module
here imports ``random``; the only stream is derived from the seed.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

from ..netsim import BOUNDARY_PRIORITY, GilbertElliottLoss, Link, Node, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from ..guard.pipeline import RemoteDnsGuard

#: Name of the Simulator child stream all fault randomness flows through.
FAULT_STREAM = "faults"

#: Shared-state declaration for the race analyser
#: (``repro.analysis.races``).  Fault actions run in the boundary
#: priority lane (state transitions apply "at the start of the instant",
#: before any same-time packet delivery), so their cells never share a
#: tie group with default-lane handlers.
__shared_state__ = {
    "BurstyLoss": {"guarded": ["model", "_saved"]},
    "GuardCrash": {"guarded": ["_state"]},
    "FaultPlan": {"guarded": ["entries", "scheduled"]},
}


@dataclasses.dataclass(slots=True)
class FaultContext:
    """What a running action may touch: the clock and the fault RNG."""

    sim: Simulator
    rng: "random.Random"


class FaultAction:
    """One fault: ``start`` fires at its scheduled time; when ``duration``
    is set, ``stop`` fires ``duration`` seconds later to revert it."""

    #: seconds until the action reverts itself (None = permanent)
    duration: float | None = None

    def start(self, ctx: FaultContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def stop(self, ctx: FaultContext) -> None:
        """Revert the fault (no-op by default)."""

    def schedule(self, at: float, ctx: FaultContext) -> None:
        # Boundary lane: a fault coinciding with a packet delivery applies
        # before the delivery, by contract rather than insertion order.
        # Same-instant fault actions compose in *plan* order (FaultPlan
        # sorts entries and the tie-break is FIFO), and a crash meeting a
        # guard sweep converges either way — crash() cancels the sweeper,
        # and cancellation is honoured inside a tie group (pinned by
        # tests/faults/test_fault_race.py).
        ctx.sim.schedule_at(at, self.start, ctx, priority=BOUNDARY_PRIORITY)  # repro: allow[R001,R003,R004] same-instant actions compose in plan order by contract
        if self.duration is not None:
            ctx.sim.schedule_at(at + self.duration, self.stop, ctx, priority=BOUNDARY_PRIORITY)  # repro: allow[R001,R003,R004] revert composes in plan order; crash/sweep converge

    @property
    def name(self) -> str:
        """Stable label (also keeps event-trace descriptions id-free)."""
        return type(self).__name__


class LinkDown(FaultAction):
    """Blackout: the link eats every packet, both directions."""

    def __init__(self, link: Link, *, duration: float | None = None):
        self.link = link
        self.duration = duration

    def start(self, ctx: FaultContext) -> None:
        self.link.up = False

    def stop(self, ctx: FaultContext) -> None:
        self.link.up = True


class LinkFlap(FaultAction):
    """Repeated down/up cycles: ``count`` blackouts of ``down_for`` seconds
    separated by ``up_for`` seconds of service."""

    def __init__(self, link: Link, *, down_for: float, up_for: float, count: int):
        if count < 1:
            raise ValueError("count must be >= 1")
        if down_for <= 0 or up_for < 0:
            raise ValueError("down_for must be positive and up_for >= 0")
        self.link = link
        self.down_for = down_for
        self.up_for = up_for
        self.count = count

    def schedule(self, at: float, ctx: FaultContext) -> None:
        period = self.down_for + self.up_for
        for i in range(self.count):
            ctx.sim.schedule_at(
                at + i * period, self.start, ctx, priority=BOUNDARY_PRIORITY
            )
            ctx.sim.schedule_at(
                at + i * period + self.down_for,
                self.stop,
                ctx,
                priority=BOUNDARY_PRIORITY,
            )

    def start(self, ctx: FaultContext) -> None:
        self.link.up = False

    def stop(self, ctx: FaultContext) -> None:
        self.link.up = True


class BurstyLoss(FaultAction):
    """Install a Gilbert–Elliott two-state loss model on the link.

    Replaces the link's (uniform) loss behaviour for ``duration`` seconds;
    the model's RNG is the plan's fault stream.
    """

    def __init__(
        self,
        link: Link,
        *,
        duration: float | None = None,
        p_good_to_bad: float = 0.02,
        p_bad_to_good: float = 0.25,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        self.link = link
        self.duration = duration
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.model: GilbertElliottLoss | None = None
        self._saved: object | None = None

    def start(self, ctx: FaultContext) -> None:
        self._saved = self.link.loss_model
        self.model = GilbertElliottLoss(
            ctx.rng,
            p_good_to_bad=self.p_good_to_bad,
            p_bad_to_good=self.p_bad_to_good,
            loss_good=self.loss_good,
            loss_bad=self.loss_bad,
        )
        self.link.loss_model = self.model

    def stop(self, ctx: FaultContext) -> None:
        self.link.loss_model = self._saved  # type: ignore[assignment]


class _LinkKnob(FaultAction):
    """Base for the per-packet fault knobs sharing install/revert shape."""

    def __init__(self, link: Link, probability: float, *, duration: float | None = None):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.link = link
        self.probability = probability
        self.duration = duration

    def start(self, ctx: FaultContext) -> None:
        self.link.fault_rng = ctx.rng
        self._set(self.probability)

    def stop(self, ctx: FaultContext) -> None:
        self._set(0.0)

    def _set(self, probability: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Duplicate(_LinkKnob):
    """Deliver a fraction of packets twice (routing loops, L2 retransmits)."""

    def _set(self, probability: float) -> None:
        self.link.duplicate_prob = probability


class Reorder(_LinkKnob):
    """Hold a fraction of packets back so later traffic overtakes them."""

    def __init__(
        self,
        link: Link,
        probability: float,
        *,
        extra_delay: float = 0.0,
        duration: float | None = None,
    ):
        super().__init__(link, probability, duration=duration)
        self.extra_delay = extra_delay

    def start(self, ctx: FaultContext) -> None:
        self.link.reorder_delay = self.extra_delay
        super().start(ctx)

    def _set(self, probability: float) -> None:
        self.link.reorder_prob = probability


class Corrupt(_LinkKnob):
    """Flip bits in a fraction of packets; receivers' checksums drop them."""

    def _set(self, probability: float) -> None:
        self.link.corrupt_prob = probability


class GuardCrash(FaultAction):
    """Crash the remote guard, then restart it after ``downtime`` seconds.

    The persisted cookie-key blob crosses the restart; with
    ``rotate_key=True`` the restart also installs a fresh key, relying on
    the generation bit so pre-crash cookies keep verifying.
    """

    def __init__(
        self, guard: "RemoteDnsGuard", *, downtime: float, rotate_key: bool = True
    ):
        if downtime <= 0:
            raise ValueError("downtime must be positive")
        self.guard = guard
        self.duration = downtime
        self.rotate_key = rotate_key
        self._state: bytes | None = None

    def start(self, ctx: FaultContext) -> None:
        self._state = self.guard.crash()

    def stop(self, ctx: FaultContext) -> None:
        self.guard.restart(self._state, rotate_key=self.rotate_key)


class RouteFailover(FaultAction):
    """Repoint ``node``'s route for ``subnet`` at ``link`` — the anycast /
    VIP failover a resolver sees when a dead primary's address moves to
    the secondary server."""

    def __init__(self, node: Node, subnet: str, link: Link):
        self.node = node
        self.subnet = subnet
        self.link = link

    def start(self, ctx: FaultContext) -> None:
        self.node.replace_route(self.subnet, self.link)


class Callback(FaultAction):
    """Escape hatch: run an arbitrary ``fn(ctx)`` at the scheduled time."""

    def __init__(self, fn: Callable[[FaultContext], None], *, label: str = "callback"):
        self.fn = fn
        self.label = label

    def start(self, ctx: FaultContext) -> None:
        self.fn(ctx)

    @property
    def name(self) -> str:
        return f"Callback<{self.label}>"


class FaultPlan:
    """A deterministic script of timed faults against one simulation."""

    def __init__(self) -> None:
        self.entries: list[tuple[float, FaultAction]] = []
        self.scheduled = False

    def add(self, at: float, action: FaultAction) -> FaultAction:
        """Fire ``action`` at absolute virtual time ``at``; returns it so
        callers can keep a handle (e.g. to read a loss model's counters)."""
        if at < 0:
            raise ValueError(f"cannot schedule a fault at negative time {at}")
        self.entries.append((at, action))
        return action

    def extend(self, other: "FaultPlan") -> "FaultPlan":
        """Append every entry of ``other`` (composing scenario building
        blocks); returns self."""
        self.entries.extend(other.entries)
        return self

    def schedule(self, sim: Simulator) -> FaultContext:
        """Arm every action on ``sim``; idempotence is the caller's duty
        (scheduling twice injects every fault twice)."""
        if self.scheduled:
            raise RuntimeError("FaultPlan already scheduled")
        self.scheduled = True
        ctx = FaultContext(sim=sim, rng=sim.child_rng(FAULT_STREAM))
        obs = sim.obs
        for at, action in sorted(self.entries, key=lambda entry: entry[0]):
            action.schedule(at, ctx)
            if obs is not None:
                # planned timeline: point spans at the *scheduled* times, so a
                # run report shows the fault script without any extra events.
                obs.counter("faults.planned", kind=action.name).inc()
                obs.spans.point("fault.start", at=at, kind=action.name)
                if action.duration is not None:
                    obs.spans.point(
                        "fault.stop", at=at + action.duration, kind=action.name
                    )
        return ctx

    def __len__(self) -> int:
        return len(self.entries)
