"""DNS guard: spoof detection for preventing DoS attacks against DNS servers.

A full reproduction of Guo, Chen & Chiueh (ICDCS 2006): the three
cookie-based spoof-detection schemes, the substrates they run on (an RFC
1035 wire codec, a discrete-event network simulator with UDP/TCP, a real
authoritative server and caching recursive resolver), the attack framework,
and runners for every table and figure in the paper's evaluation.

Quick start::

    from repro import GuardTestbed, LrsSimulator, ANS_ADDRESS

    bed = GuardTestbed(ans="simulator", ans_mode="answer")
    client = bed.add_client("lrs", via_local_guard=True)
    lrs = LrsSimulator(client, ANS_ADDRESS, workload="plain")
    lrs.start()
    bed.run(1.0)
    print(lrs.stats.completed, "queries answered through the guard")
"""

from .dns import (
    AnsSimulator,
    AuthoritativeServer,
    DnsCache,
    LocalRecursiveServer,
    LrsSimulator,
    StubResolver,
    TcpLoadClient,
    Zone,
    parse_zone_text,
)
from .dnswire import Message, Name, Question, ResourceRecord, RRType, make_query
from .experiments import ANS_ADDRESS, FluidModel, GuardTestbed
from .guard import (
    CookieFactory,
    GuardCosts,
    LocalDnsGuard,
    RemoteDnsGuard,
    TokenBucket,
    UnverifiedResponseLimiter,
    VerifiedRequestLimiter,
)
from .netsim import Link, Node, Simulator
from .obs import Observability, installed

__version__ = "1.0.0"

__all__ = [
    "ANS_ADDRESS",
    "AnsSimulator",
    "AuthoritativeServer",
    "CookieFactory",
    "DnsCache",
    "FluidModel",
    "GuardCosts",
    "GuardTestbed",
    "Link",
    "LocalDnsGuard",
    "LocalRecursiveServer",
    "LrsSimulator",
    "Message",
    "Name",
    "Node",
    "Observability",
    "Question",
    "RRType",
    "RemoteDnsGuard",
    "ResourceRecord",
    "Simulator",
    "StubResolver",
    "TcpLoadClient",
    "TokenBucket",
    "UnverifiedResponseLimiter",
    "VerifiedRequestLimiter",
    "Zone",
    "installed",
    "make_query",
    "parse_zone_text",
]
