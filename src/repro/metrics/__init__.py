"""Measurement collectors for the experiment runners."""

from .collectors import CpuSeries, LatencyStats, Sample, ThroughputSeries

__all__ = ["CpuSeries", "LatencyStats", "Sample", "ThroughputSeries"]
