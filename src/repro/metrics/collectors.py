"""Measurement collectors: throughput, latency and CPU-utilisation series.

Experiment runners sample these on the virtual clock to produce the exact
series the paper plots (throughput of legitimate requests, CPU utilisation
of the ANS and the guard).
"""

from __future__ import annotations

import dataclasses
import math

from ..netsim import Node, Simulator


@dataclasses.dataclass(slots=True)
class Sample:
    time: float
    value: float


class ThroughputSeries:
    """Periodic completed-per-second samples from a LoadStats-like object."""

    def __init__(self, sim: Simulator, stats, interval: float = 0.1):
        self.sim = sim
        self.stats = stats
        self.interval = interval
        self.samples: list[Sample] = []
        self._last_completed = stats.completed
        self._running = False

    def start(self) -> None:
        self._running = True
        self._last_completed = self.stats.completed
        self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        delta = self.stats.completed - self._last_completed
        self._last_completed = self.stats.completed
        self.samples.append(Sample(self.sim.now, delta / self.interval))
        self.sim.schedule(self.interval, self._tick)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.value for s in self.samples) / len(self.samples)


class CpuSeries:
    """Periodic utilisation samples from a node's CPU."""

    def __init__(self, node: Node, interval: float = 0.1):
        self.node = node
        self.interval = interval
        self.samples: list[Sample] = []
        self._running = False
        self._busy_mark = 0.0
        self._time_mark = 0.0

    def start(self) -> None:
        self._running = True
        self._busy_mark = self.node.cpu.completed_busy_seconds()
        self._time_mark = self.node.sim.now
        self.node.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        utilization = self.node.cpu.utilization(self._busy_mark, self._time_mark)
        self.samples.append(Sample(self.node.sim.now, utilization))
        self._busy_mark = self.node.cpu.completed_busy_seconds()
        self._time_mark = self.node.sim.now
        self.node.sim.schedule(self.interval, self._tick)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.value for s in self.samples) / len(self.samples)


class LatencyStats:
    """Summary statistics over a list of latencies (seconds)."""

    def __init__(self, latencies: list[float]):
        self.latencies = sorted(latencies)

    @property
    def count(self) -> int:
        return len(self.latencies)

    @property
    def mean(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else math.nan

    def percentile(self, p: float) -> float:
        if not self.latencies:
            return math.nan
        index = min(int(p / 100.0 * len(self.latencies)), len(self.latencies) - 1)
        return self.latencies[index]

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def mean_ms(self) -> float:
        return self.mean * 1000.0
