"""Measurement collectors: throughput, latency and CPU-utilisation series.

Experiment runners sample these on the virtual clock to produce the exact
series the paper plots (throughput of legitimate requests, CPU utilisation
of the ANS and the guard).

These classes are now thin shims over :mod:`repro.obs`: each series stores
its samples in a history-tracking :class:`repro.obs.Gauge`.  The sampling
*tick* still lives here — collectors are part of the experiment workload
and may schedule events, unlike the observe-only ``repro.obs`` package.
When a process-wide :class:`repro.obs.Observability` is installed the
gauge is created in its registry (so the series shows up in run reports
and exports); otherwise each series owns a private registry.
"""

from __future__ import annotations

import dataclasses
import itertools
import math

from ..netsim import Node, Simulator
from ..obs import Gauge, MetricRegistry
from ..obs import current as _current_obs

#: Distinguishes multiple series of the same kind inside one obs registry.
_series_ids = itertools.count()


@dataclasses.dataclass(slots=True)
class Sample:
    time: float
    value: float


def _series_gauge(sim: Simulator, name: str, **labels: str) -> Gauge:
    """A history-tracking gauge on ``sim``'s clock, placed in the installed
    observability registry when there is one (else a private registry)."""
    obs = _current_obs()
    if obs is not None and getattr(obs, "registry", None) is not None:
        registry = obs.registry
        labels = dict(labels, series=str(next(_series_ids)))
    else:
        registry = MetricRegistry(lambda: sim.now)
    return registry.gauge(name, track_history=True, **labels)


class ThroughputSeries:
    """Periodic completed-per-second samples from a LoadStats-like object."""

    def __init__(self, sim: Simulator, stats, interval: float = 0.1):
        self.sim = sim
        self.stats = stats
        self.interval = interval
        self.gauge = _series_gauge(sim, "collector.throughput")
        self._last_completed = stats.completed
        self._running = False

    @property
    def samples(self) -> list[Sample]:
        return [Sample(t, v) for t, v in self.gauge.history]

    def start(self) -> None:
        self._running = True
        self._last_completed = self.stats.completed
        self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        delta = self.stats.completed - self._last_completed
        self._last_completed = self.stats.completed
        self.gauge.set(delta / self.interval)
        self.sim.schedule(self.interval, self._tick)

    def mean(self) -> float:
        return self.gauge.mean()


class CpuSeries:
    """Periodic utilisation samples from a node's CPU."""

    def __init__(self, node: Node, interval: float = 0.1):
        self.node = node
        self.interval = interval
        self.gauge = _series_gauge(node.sim, "collector.cpu_utilization", node=node.name)
        self._running = False
        self._busy_mark = 0.0
        self._time_mark = 0.0

    @property
    def samples(self) -> list[Sample]:
        return [Sample(t, v) for t, v in self.gauge.history]

    def start(self) -> None:
        self._running = True
        self._busy_mark = self.node.cpu.completed_busy_seconds()
        self._time_mark = self.node.sim.now
        self.node.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        utilization = self.node.cpu.utilization(self._busy_mark, self._time_mark)
        self.gauge.set(utilization)
        self._busy_mark = self.node.cpu.completed_busy_seconds()
        self._time_mark = self.node.sim.now
        self.node.sim.schedule(self.interval, self._tick)

    def mean(self) -> float:
        return self.gauge.mean()


class LatencyStats:
    """Summary statistics over a list of latencies (seconds)."""

    def __init__(self, latencies: list[float]):
        self.latencies = sorted(latencies)

    @property
    def count(self) -> int:
        return len(self.latencies)

    @property
    def mean(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else math.nan

    def percentile(self, p: float) -> float:
        if not self.latencies:
            return math.nan
        index = min(int(p / 100.0 * len(self.latencies)), len(self.latencies) - 1)
        return self.latencies[index]

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def mean_ms(self) -> float:
        return self.mean * 1000.0
