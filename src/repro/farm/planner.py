"""Scenario-matrix planner: addressable cells with stable per-cell seeds.

A *matrix* is a named experiment family (the faults suite, the hybrid
attack-rate sweep, ...).  The planner expands its axes — scenario ×
scheme, attack-rate × protection, whatever the matrix declares — into an
ordered list of :class:`Cell` objects.  Two properties make the farm's
determinism contract possible:

* **Canonical order.**  ``expand`` walks the axes in declaration order
  (itertools.product), so the cell list — and therefore the reduce order
  and every digest derived from it — is identical on every machine, for
  every shard count, on every resume.

* **Stable per-cell seeds.**  A cell's simulation seed is derived from
  ``(base_seed, cell_id)`` through the same BLAKE2b construction as
  :meth:`repro.netsim.Simulator.child_rng`: same base seed and cell id,
  same cell seed — regardless of which worker runs the cell, in which
  order, or whether it is re-run after a resume.  Running a cell solo is
  bit-identical to running it as shard 7 of 16.

This module is dependency-free (no repro imports) so experiment modules
can import it without cycles: the experiments *define* their cells here
and the farm runner *schedules* them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from typing import Sequence


def derive_cell_seed(base_seed: int, cell_id: str) -> int:
    """A cell's simulation seed, stable under sharding and resume.

    Mirrors ``Simulator.child_rng``'s derivation — BLAKE2b over
    ``(seed, name)`` only — so a cell's seed depends on nothing but the
    base seed and its own identity.
    """
    material = f"{base_seed}\x00{cell_id}".encode("utf-8", "backslashreplace")
    derived = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(derived, "big")


@dataclasses.dataclass(frozen=True, slots=True)
class Cell:
    """One addressable point of a scenario matrix.

    ``params`` is an ordered tuple of ``(axis, value)`` string pairs in
    the matrix's canonical axis order; it *is* the cell's identity.
    """

    matrix: str
    params: tuple[tuple[str, str], ...]
    base_seed: int
    fast: bool

    @property
    def cell_id(self) -> str:
        """Canonical address, e.g. ``faults/scenario=uplink-flap/scheme=tcp``."""
        parts = "/".join(f"{key}={value}" for key, value in self.params)
        return f"{self.matrix}/{parts}" if parts else self.matrix

    @property
    def seed(self) -> int:
        """The derived per-cell simulation seed (see :func:`derive_cell_seed`)."""
        return derive_cell_seed(self.base_seed, self.cell_id)

    def param_dict(self) -> dict[str, str]:
        return dict(self.params)


def expand(
    matrix: str,
    axes: Sequence[tuple[str, Sequence[object]]],
    *,
    base_seed: int,
    fast: bool,
) -> list[Cell]:
    """Expand ``axes`` into cells in canonical (declaration-major) order.

    Axis values are stringified into the cell id, so they must have
    stable ``str()`` representations (strings, ints, floats).
    """
    names = [name for name, _ in axes]
    value_lists = [[str(v) for v in values] for _, values in axes]
    cells = []
    for combo in itertools.product(*value_lists):
        params = tuple(zip(names, combo))
        cells.append(Cell(matrix=matrix, params=params, base_seed=base_seed, fast=fast))
    return cells


def plan_digest(cells: Sequence[Cell]) -> str:
    """Fingerprint of a plan: matrix, cell ids and derived seeds, in order.

    Two manifests are comparable (and a resume is valid) iff their plan
    digests match — same matrix, same axes, same base seed, same fast
    flag, same cell ordering.
    """
    h = hashlib.blake2b(digest_size=16)
    for cell in cells:
        h.update(f"{cell.cell_id}\x00{cell.seed}\x00{int(cell.fast)}\x01".encode())
    return h.hexdigest()
