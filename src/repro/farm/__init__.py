"""repro.farm — sharded scenario farm with deterministic merge.

Layers:

* :mod:`repro.farm.planner` — matrix expansion into addressable cells
  with stable per-cell seeds (canonical order, BLAKE2b derivation);
* :mod:`repro.farm.manifest` / :mod:`repro.farm.worker` /
  :mod:`repro.farm.runner` — resumable multi-process execution with
  per-cell crash isolation and a run-invariant manifest digest;
* :mod:`repro.farm.hybrid` — the fluid/packet client mode (imported
  lazily by the matrices that need it; deliberately not re-exported
  here to keep ``import repro.farm`` light in spawn workers).

The contract: a cell's result and trace hash depend only on
``(matrix, params, derived seed, fast)`` — never on shard count,
completion order, or resume history.
"""

from .manifest import CellRecord, Manifest, result_digest
from .matrices import MATRICES, MatrixDef, get_matrix, matrix_names, register_matrix
from .planner import Cell, derive_cell_seed, expand, plan_digest
from .runner import DEFAULT_CELL_TIMEOUT, FarmResult, run_farm, write_bench_farm

__all__ = [
    "Cell",
    "CellRecord",
    "DEFAULT_CELL_TIMEOUT",
    "FarmResult",
    "Manifest",
    "MATRICES",
    "MatrixDef",
    "derive_cell_seed",
    "expand",
    "get_matrix",
    "matrix_names",
    "plan_digest",
    "register_matrix",
    "result_digest",
    "run_farm",
    "write_bench_farm",
]
