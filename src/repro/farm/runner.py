"""Sharded farm runner: bounded-queue workers, timeouts, resumable merge.

Execution model:

* ``shards == 1`` — every pending cell runs in-process through the same
  :func:`repro.farm.worker.execute_cell` the workers use;
* ``shards > 1`` — a pool of ``spawn`` worker processes pulls cell
  descriptors from a bounded task queue and reports terminal records on
  a result queue.  The parent enforces a wall-clock per-cell timeout
  (a stuck cell's worker is killed and respawned; the cell is recorded
  ``timeout``), and a worker that dies mid-cell fails *that cell only*.

Whatever the shard count or completion order, the manifest digest and
the reduced output are identical: results are merged strictly in the
planner's canonical cell order, and each cell's result/trace digest
depends only on ``(matrix, params, derived seed, fast)``.

Wall-clock reads in this module are orchestration-plane only (timeouts,
queue polling, the BENCH trajectory); they never feed a simulation,
which is why the inline ``allow[D001]`` markers are sound — the same
exception the observability profiler documents.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue as queue_mod
import sys
import time
from typing import Any

from .manifest import DONE, TIMEOUT, Manifest
from .matrices import get_matrix
from .planner import Cell, plan_digest
from .worker import execute_cell, failure_record, record_from_message, worker_main

#: Wall-clock ceiling per cell; a cell still running past this is killed
#: and recorded ``timeout`` (crash isolation, not run abortion).
DEFAULT_CELL_TIMEOUT = 300.0

#: Result-queue poll interval while supervising workers (seconds).
_POLL_INTERVAL = 0.1

#: Bounded task-queue capacity factor (slots per worker).
_QUEUE_SLOTS_PER_WORKER = 2


@dataclasses.dataclass(slots=True)
class FarmResult:
    """Outcome of one farm invocation."""

    matrix: str
    manifest: Manifest
    cells: list[Cell]
    ran: int
    skipped: int
    failed: list[str]
    wall_seconds: float
    shards: int
    reduced: Any = None
    rendered: str | None = None

    @property
    def complete(self) -> bool:
        """True iff every planned cell is ``done`` in the manifest."""
        done = self.manifest.done_cells()
        return all(cell.cell_id in done for cell in self.cells)

    def summary(self) -> str:
        state = "complete" if self.complete else "incomplete"
        lines = [
            f"farm: {self.matrix} — {len(self.cells)} cell(s), "
            f"{self.ran} ran, {self.skipped} resumed-skip, "
            f"{len(self.failed)} failed/timeout ({state})",
            f"shards: {self.shards}, wall: {self.wall_seconds:.2f}s",
            f"manifest digest: {self.manifest.digest()}",
        ]
        for cell_id in self.failed:
            record = self.manifest.records[cell_id]
            first_line = (record.error or "?").strip().splitlines()[-1]
            lines.append(f"  {record.status}: {cell_id} — {first_line}")
        return "\n".join(lines)


def _prepare_manifest(
    matrix: str,
    cells: list[Cell],
    *,
    base_seed: int,
    fast: bool,
    manifest_path: str | None,
    resume: bool,
) -> Manifest:
    digest = plan_digest(cells)
    if resume:
        if manifest_path is None:
            raise ValueError("--resume requires a manifest path")
        manifest = Manifest.load(manifest_path)
        if not manifest.compatible_with(
            matrix=matrix, base_seed=base_seed, fast=fast, plan_digest=digest
        ):
            raise ValueError(
                f"{manifest_path}: manifest does not match this plan "
                f"(matrix/seed/fast/axes changed) — rerun without --resume"
            )
        return manifest
    return Manifest(
        matrix=matrix,
        base_seed=base_seed,
        fast=fast,
        plan_digest=digest,
        path=manifest_path,
    )


def _run_serial(
    mdef, pending: list[Cell], manifest: Manifest, fast: bool
) -> None:
    for cell in pending:
        t0 = time.monotonic()  # repro: allow[D001] - orchestration timing only
        try:
            record = execute_cell(
                mdef.name, cell.cell_id, cell.param_dict(), cell.seed, fast
            )
        except Exception:
            import traceback

            record = failure_record(cell.cell_id, cell.seed, traceback.format_exc())
        wall = time.monotonic() - t0  # repro: allow[D001] - orchestration timing only
        manifest.record(record, wall_seconds=wall)
        manifest.save()


class _Pool:
    """Spawned worker pool with per-cell timeout and crash isolation."""

    def __init__(self, mdef, fast: bool, shards: int, task_capacity: int):
        import multiprocessing

        self.ctx = multiprocessing.get_context("spawn")
        self.mdef = mdef
        self.fast = fast
        self.shards = shards
        self.task_q = self.ctx.Queue(maxsize=task_capacity)
        self.result_q = self.ctx.Queue()
        self.workers: dict[int, Any] = {}
        self.inflight: dict[int, tuple[str, float]] = {}
        self._next_idx = 0

    def spawn(self) -> int:
        idx = self._next_idx
        self._next_idx += 1
        proc = self.ctx.Process(
            target=worker_main,
            args=(idx, self.mdef.name, self.fast, self.task_q, self.result_q),
            daemon=True,
        )
        proc.start()
        self.workers[idx] = proc
        return idx

    def kill(self, idx: int) -> None:
        proc = self.workers.pop(idx, None)
        self.inflight.pop(idx, None)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)

    def shutdown(self) -> None:
        for _ in range(len(self.workers)):
            try:
                self.task_q.put_nowait(None)
            except queue_mod.Full:
                break
        for idx in list(self.workers):
            proc = self.workers[idx]
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self.workers.clear()


def _ensure_child_import_path() -> None:
    """Make sure spawned children can ``import repro``.

    Spawn re-imports this package from scratch; when the parent found it
    via ``sys.path`` manipulation rather than ``PYTHONPATH``, propagate
    the package root through the environment so children resolve it too.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if src_root not in parts:
        os.environ["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )


def _run_sharded(
    mdef,
    pending: list[Cell],
    manifest: Manifest,
    *,
    fast: bool,
    shards: int,
    cell_timeout: float,
) -> None:
    _ensure_child_import_path()
    by_id = {cell.cell_id: cell for cell in pending}
    tasks = [(cell.cell_id, cell.param_dict(), cell.seed) for cell in pending]
    task_iter = iter(tasks)
    pool = _Pool(mdef, fast, shards, task_capacity=_QUEUE_SLOTS_PER_WORKER * shards)
    started: dict[str, float] = {}
    resolved = 0
    try:
        for _ in range(min(shards, len(tasks))):
            pool.spawn()
        next_task = next(task_iter, None)
        while resolved < len(tasks):
            # top up the bounded task queue
            while next_task is not None:
                try:
                    pool.task_q.put_nowait(next_task)
                except queue_mod.Full:
                    break
                next_task = next(task_iter, None)
            try:
                msg = pool.result_q.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                msg = None
            if msg is not None:
                kind = msg[0]
                if kind == "start":
                    _, idx, cell_id = msg
                    now = time.monotonic()  # repro: allow[D001] - cell timeout clock
                    pool.inflight[idx] = (cell_id, now)
                    started[cell_id] = now
                elif kind == "done":
                    _, idx, doc = msg
                    record = record_from_message(doc)
                    now = time.monotonic()  # repro: allow[D001] - cell timeout clock
                    wall = now - started.get(record.cell_id, now)
                    manifest.record(record, wall_seconds=wall)
                    manifest.save()
                    pool.inflight.pop(idx, None)
                    resolved += 1
                elif kind == "error":
                    _, idx, cell_id, seed, tb = msg
                    manifest.record(failure_record(cell_id, seed, tb))
                    manifest.save()
                    pool.inflight.pop(idx, None)
                    resolved += 1
            # enforce the per-cell wall-clock timeout
            now = time.monotonic()  # repro: allow[D001] - cell timeout clock
            for idx, (cell_id, t0) in list(pool.inflight.items()):
                if now - t0 > cell_timeout:
                    pool.kill(idx)
                    cell = by_id[cell_id]
                    manifest.record(
                        failure_record(
                            cell_id,
                            cell.seed,
                            f"cell exceeded --cell-timeout {cell_timeout:.0f}s",
                            status=TIMEOUT,
                        )
                    )
                    manifest.save()
                    resolved += 1
                    if resolved < len(tasks):
                        pool.spawn()
            # a worker that died without reporting fails its in-flight cell
            for idx, proc in list(pool.workers.items()):
                if proc.is_alive():
                    continue
                entry = pool.inflight.pop(idx, None)
                pool.workers.pop(idx, None)
                if entry is not None:
                    cell_id, _ = entry
                    cell = by_id[cell_id]
                    manifest.record(
                        failure_record(
                            cell_id,
                            cell.seed,
                            f"worker process died (exitcode {proc.exitcode})",
                        )
                    )
                    manifest.save()
                    resolved += 1
                if resolved < len(tasks) and (
                    next_task is not None or pool.inflight
                ):
                    pool.spawn()
    finally:
        pool.shutdown()


def run_farm(
    matrix_name: str,
    *,
    seed: int = 0,
    fast: bool = False,
    shards: int = 1,
    manifest_path: str | None = None,
    resume: bool = False,
    cell_timeout: float = DEFAULT_CELL_TIMEOUT,
    stop_after: int | None = None,
) -> FarmResult:
    """Plan, execute (serial or sharded), and deterministically reduce.

    ``stop_after`` truncates this invocation to the first N pending cells
    — a deterministic stand-in for a killed run, used by the resume gate
    in CI.  The reduce step only happens once *every* planned cell is
    ``done`` in the manifest.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    mdef = get_matrix(matrix_name)
    cells = mdef.plan(seed, fast)
    manifest = _prepare_manifest(
        matrix_name,
        cells,
        base_seed=seed,
        fast=fast,
        manifest_path=manifest_path,
        resume=resume,
    )
    done = manifest.done_cells()
    pending = [cell for cell in cells if cell.cell_id not in done]
    skipped = len(cells) - len(pending)
    if stop_after is not None:
        pending = pending[:stop_after]

    t0 = time.monotonic()  # repro: allow[D001] - BENCH wall-clock measurement
    if pending:
        if shards == 1:
            _run_serial(mdef, pending, manifest, fast)
        else:
            _run_sharded(
                mdef,
                pending,
                manifest,
                fast=fast,
                shards=min(shards, len(pending)),
                cell_timeout=cell_timeout,
            )
    wall = time.monotonic() - t0  # repro: allow[D001] - BENCH wall-clock measurement

    manifest.note_run(
        {
            "shards": shards,
            "cells_ran": len(pending),
            "cells_skipped": skipped,
            "wall_seconds": wall,
        }
    )
    manifest.save()

    result = FarmResult(
        matrix=matrix_name,
        manifest=manifest,
        cells=cells,
        ran=len(pending),
        skipped=skipped,
        failed=manifest.failed_cells(),
        wall_seconds=wall,
        shards=shards,
    )
    if result.complete:
        ordered = [manifest.records[cell.cell_id].result for cell in cells]
        result.reduced = mdef.reduce(cells, ordered)
        result.rendered = mdef.render(result.reduced)
    return result


def write_bench_farm(
    path: str,
    *,
    matrix: str,
    cells: int,
    serial_seconds: float,
    sharded_seconds: float,
    shards: int,
    digests_equal: bool,
    date: str | None = None,
) -> dict:
    """Append a serial-vs-sharded wall-clock record to ``BENCH_farm.json``.

    Follows the ``write_bench_profile`` idiom: the existing trajectory is
    preserved and the new dated entry appended, so the speedup curve stays
    visible to future PRs.
    """
    doc: dict = {"benchmark": "scenario-farm", "unit": "speedup"}
    if date is None:
        # host date on a benchmark record — measurement metadata only,
        # never feeds back into simulation
        date = time.strftime("%Y-%m-%d")
    trajectory: list[dict] = []
    try:
        with open(path, encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        previous = None
    if isinstance(previous, dict):
        recorded = previous.get("trajectory")
        if isinstance(recorded, list):
            trajectory = list(recorded)
    speedup = serial_seconds / sharded_seconds if sharded_seconds > 0 else 0.0
    trajectory.append(
        {
            "date": date,
            "matrix": matrix,
            "cells": cells,
            "shards": shards,
            "serial_seconds": round(serial_seconds, 3),
            "sharded_seconds": round(sharded_seconds, 3),
            "speedup": round(speedup, 3),
            "digests_equal": digests_equal,
        }
    )
    doc["trajectory"] = trajectory
    doc["value"] = trajectory[-1]["speedup"]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main_summary(result: FarmResult, *, out=None) -> None:
    """Print the rendered table (when complete) plus the run summary."""
    out = out if out is not None else sys.stdout
    if result.rendered is not None:
        print(result.rendered, file=out)
        print("", file=out)
    print(result.summary(), file=out)
