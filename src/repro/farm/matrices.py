"""Matrix registry: the farm's catalogue of runnable scenario matrices.

A :class:`MatrixDef` binds four pure functions:

* ``plan(seed, fast)`` — expand the matrix into canonical-order cells
  (delegating to the owning experiment module, which is the single
  source of cell definitions);
* ``run_cell(params, seed, fast)`` — execute one cell and return a
  JSON-serialisable result dict (the farm-worker entry point);
* ``reduce(cells, results)`` — deterministic merge of per-cell results
  *in canonical plan order*, regardless of completion order;
* ``render(reduced)`` — the human-readable table.

Experiment modules are imported lazily inside these functions: the
registry itself stays import-light so spawn workers and the experiments
(which import :mod:`repro.farm.planner` for cell definitions) never form
an import cycle.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from .planner import Cell

#: Hybrid-matrix sweep of spoofed attack rates (requests/sec).
HYBRID_ATTACK_RATES = (0, 100_000, 250_000)

#: Modeled bulk clients per hybrid cell (the north-star scale knob).
HYBRID_CLIENTS = 1_000_000


@dataclasses.dataclass(frozen=True, slots=True)
class MatrixDef:
    """One runnable scenario matrix."""

    name: str
    description: str
    plan: Callable[[int, bool], list[Cell]]
    run_cell: Callable[[dict[str, str], int, bool], dict[str, Any]]
    reduce: Callable[[list[Cell], list[dict[str, Any]]], Any]
    render: Callable[[Any], str]


MATRICES: dict[str, MatrixDef] = {}


def register_matrix(mdef: MatrixDef) -> MatrixDef:
    if mdef.name in MATRICES:
        raise ValueError(f"duplicate matrix {mdef.name!r}")
    MATRICES[mdef.name] = mdef
    return mdef


def get_matrix(name: str) -> MatrixDef:
    try:
        return MATRICES[name]
    except KeyError:
        known = ", ".join(sorted(MATRICES))
        raise ValueError(f"unknown matrix {name!r} (known: {known})") from None


def matrix_names() -> list[str]:
    return sorted(MATRICES)


# ---------------------------------------------------------------------------
# faults — the full fault-injection suite (scenario × scheme)
# ---------------------------------------------------------------------------


def _faults_plan(seed: int, fast: bool) -> list[Cell]:
    from ..experiments.faults import plan_cells

    return plan_cells(seed, fast=fast)


def _faults_run_cell(params: dict[str, str], seed: int, fast: bool) -> dict[str, Any]:
    from ..experiments.faults import run_matrix_cell

    return run_matrix_cell(params, seed, fast)


def _faults_reduce(cells: list[Cell], results: list[dict[str, Any]]) -> Any:
    from ..experiments.faults import reduce_matrix

    return reduce_matrix(cells, results)


def _faults_render(reduced: Any) -> str:
    from ..experiments.faults import format_faults

    return format_faults(reduced)


register_matrix(
    MatrixDef(
        name="faults",
        description="fault scenarios × schemes (the `python -m repro faults` table)",
        plan=_faults_plan,
        run_cell=_faults_run_cell,
        reduce=_faults_reduce,
        render=_faults_render,
    )
)


# ---------------------------------------------------------------------------
# smoke — a tiny faults subset for CI equivalence gates
# ---------------------------------------------------------------------------


def _smoke_plan(seed: int, fast: bool) -> list[Cell]:
    from ..experiments.faults import plan_cells

    # always the reduced windows: this matrix exists for fast CI gates
    return plan_cells(
        seed,
        fast=True,
        scenarios=("baseline", "uplink-blackout"),
        schemes=("modified", "ns_name"),
        matrix="smoke",
    )


def _smoke_run_cell(params: dict[str, str], seed: int, fast: bool) -> dict[str, Any]:
    from ..experiments.faults import run_matrix_cell

    return run_matrix_cell(params, seed, True)


register_matrix(
    MatrixDef(
        name="smoke",
        description="2 fault scenarios × 2 schemes, fast windows (CI equivalence gate)",
        plan=_smoke_plan,
        run_cell=_smoke_run_cell,
        reduce=_faults_reduce,
        render=_faults_render,
    )
)


# ---------------------------------------------------------------------------
# selftest — instant synthetic cells exercising the farm's failure paths
# ---------------------------------------------------------------------------

#: Canonical selftest behaviours: well-behaved cells plus one that always
#: crashes, proving per-cell isolation end to end (including in spawned
#: workers, where test-registered matrices don't exist).
SELFTEST_BEHAVIOURS = ("ok-a", "ok-b", "ok-c", "boom")


def _selftest_plan(seed: int, fast: bool) -> list[Cell]:
    import os

    from .planner import expand

    behaviours = SELFTEST_BEHAVIOURS
    if os.environ.get("REPRO_FARM_SELFTEST_HANG"):
        # timeout-path testing: the env knob reaches spawned workers too
        behaviours = behaviours + ("hang",)
    return expand(
        "selftest",
        [("behaviour", behaviours)],
        base_seed=seed,
        fast=fast,
    )


def _selftest_run_cell(params: dict[str, str], seed: int, fast: bool) -> dict[str, Any]:
    behaviour = params["behaviour"]
    if behaviour == "boom":
        raise RuntimeError("selftest cell crashed on purpose")
    if behaviour == "hang":  # reachable only via a custom plan (timeout tests)
        import time

        time.sleep(3600.0)
    return {"behaviour": behaviour, "value": seed % 9973}


def _selftest_reduce(cells: list[Cell], results: list[dict[str, Any]]) -> Any:
    return results


def _selftest_render(reduced: Any) -> str:
    rows = ", ".join(f"{row['behaviour']}={row['value']}" for row in reduced)
    return f"selftest: {rows}"


register_matrix(
    MatrixDef(
        name="selftest",
        description="synthetic instant cells, one of which always fails "
        "(exercises crash isolation)",
        plan=_selftest_plan,
        run_cell=_selftest_run_cell,
        reduce=_selftest_reduce,
        render=_selftest_render,
    )
)


# ---------------------------------------------------------------------------
# hybrid — fluid/packet attack sweep, 10⁶ modeled clients per cell
# ---------------------------------------------------------------------------


def _hybrid_plan(seed: int, fast: bool) -> list[Cell]:
    from .planner import expand

    return expand(
        "hybrid",
        [("attack_rate", HYBRID_ATTACK_RATES), ("protection", ("on", "off"))],
        base_seed=seed,
        fast=fast,
    )


def _hybrid_run_cell(params: dict[str, str], seed: int, fast: bool) -> dict[str, Any]:
    from .hybrid import run_hybrid_point

    kwargs = {"warmup": 0.1, "duration": 0.2} if fast else {}
    point = run_hybrid_point(
        float(params["attack_rate"]),
        params["protection"] == "on",
        seed=seed,
        clients=HYBRID_CLIENTS,
        **kwargs,
    )
    return dataclasses.asdict(point)


def _hybrid_reduce(cells: list[Cell], results: list[dict[str, Any]]) -> Any:
    return results


def _hybrid_render(reduced: Any) -> str:
    from ..experiments.fluid import FluidModel

    model = FluidModel()
    lines = [
        f"Hybrid fluid/packet sweep ({HYBRID_CLIENTS:,} modeled clients per cell)",
        f"{'attack (K/s)':>12} {'prot':>5} {'bulk srv (K/s)':>14} "
        f"{'model (K/s)':>12} {'fg avail%':>10} {'guard CPU%':>11} "
        f"{'ANS CPU%':>9} {'events':>8}",
    ]
    for row in reduced:
        protection = bool(row["protection"])
        predicted = model.hybrid_served_rate(
            row["fluid_offered_rate"], row["attack_rate"], protection=protection
        )
        lines.append(
            f"{row['attack_rate'] / 1000:>12.0f} {'on' if protection else 'off':>5} "
            f"{row['fluid_served_rate'] / 1000:>14.1f} {predicted / 1000:>12.1f} "
            f"{row['foreground_availability'] * 100:>10.1f} "
            f"{row['guard_cpu'] * 100:>11.1f} {row['ans_cpu'] * 100:>9.1f} "
            f"{row['events']:>8}"
        )
    return "\n".join(lines)


register_matrix(
    MatrixDef(
        name="hybrid",
        description=(
            f"hybrid fluid/packet attack sweep, {HYBRID_CLIENTS:,} modeled "
            "clients per cell"
        ),
        plan=_hybrid_plan,
        run_cell=_hybrid_run_cell,
        reduce=_hybrid_reduce,
        render=_hybrid_render,
    )
)
