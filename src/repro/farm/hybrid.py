"""Hybrid fluid/packet client mode: bulk populations as arrival-rate fluids.

The packet-level simulator spends ~4-6 events per request; modelling the
north star's "millions of users" that way is 10⁷ events per simulated
second.  This module promotes :class:`repro.experiments.fluid.FluidModel`
from closed-form checker to first-class *background population*: bulk
legitimate and attack load enters the guard as fluid arrival-rate
processes that consume CPU through the existing :class:`repro.netsim.cpu`
accounting — one aggregate service-queue submission per tick instead of
one per packet — while a tracked *foreground cohort* stays packet-level
and experiences the contention (queueing delay, drops, timeouts) the
fluids create.  One cell can model 10⁶+ stub clients in a few thousand
events.

Fidelity contract (cross-validated by ``tests/farm/test_hybrid.py``):
on the calibration scenario the hybrid guard/ANS CPU curves and the
foreground availability stay within a stated tolerance of (a) the pure
packet-level run and (b) the fluid closed forms.

Everything here is deterministic — the fluids are measure-zero processes
with no randomness, and the foreground cohort draws from its own seeded
testbed — so hybrid cells inherit the farm's bit-identical trace-hash
guarantee.
"""

from __future__ import annotations

import dataclasses

from ..dns import ANS_SIMULATOR_COST, LrsSimulator
from ..experiments.fluid import FluidModel
from ..experiments.testbed import ANS_ADDRESS, GuardTestbed
from ..netsim.cpu import Cpu
from ..netsim.simulator import Simulator

#: Default fluid integration step.  Small enough that per-tick aggregate
#: jobs stay comparable to the ANS's shallow service queue, large enough
#: that a simulated second costs ~2000 events per fluid.
DEFAULT_TICK = 0.0005

#: Per-client request rate used to translate "modeled clients" into an
#: aggregate arrival rate (a stub resolver issuing one query every 10 s);
#: 10⁶ clients then offer ~91% of the ANS's service capacity.
PER_CLIENT_RATE = 0.1


class FluidFlood:
    """An attack population as a fluid: rate × unit-cost burned per tick.

    ``charges`` is a list of ``(cpu, unit_cost)`` pairs; each tick burns
    ``rate * tick * unit_cost`` on every listed CPU as pure accounting —
    the §IV.C point that discarding (or blindly serving) spoofed packets
    still costs cycles.  With the guard enabled that is one charge at
    ``drop_invalid`` cost; disabled, the flood charges the guard's
    forwarding cost *and* the ANS's service cost.
    """

    __slots__ = ("sim", "charges", "rate", "tick", "offered", "_running", "_handle")

    def __init__(
        self,
        sim: Simulator,
        charges: list[tuple[Cpu, float]],
        *,
        rate: float,
        tick: float = DEFAULT_TICK,
    ):
        if rate < 0:
            raise ValueError("attack rate must be non-negative")
        self.sim = sim
        self.charges = list(charges)
        self.rate = rate
        self.tick = tick
        self.offered = 0.0
        self._running = False
        self._handle = None

    def start(self) -> None:
        if self._running or self.rate == 0:
            return
        self._running = True
        self._handle = self.sim.schedule(self.tick, self._on_tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _on_tick(self) -> None:
        if not self._running:
            return
        batch = self.rate * self.tick
        self.offered += batch
        for cpu, unit_cost in self.charges:
            cpu.charge(batch * unit_cost)
        # constant-rate by design: a continuous process at a fixed step
        self._handle = self.sim.schedule(self.tick, self._on_tick)  # repro: allow[P006]


class FluidPopulation:
    """A bulk legitimate population as a guard→ANS fluid service chain.

    Each tick a batch of ``rate × tick`` requests is offered: the guard
    CPU is asked for one aggregate job of ``batch × guard_cost`` seconds;
    on its completion the ANS CPU is asked for ``batch × ans_cost``; on
    *that* completion the batch counts as served.  A submission rejected
    by either service queue (backlog over the limit — exactly how an
    overloaded BIND drops requests) counts the batch as dropped, so
    availability degrades through the same queue-limit mechanism the
    packet path uses, not through a side formula.
    """

    __slots__ = (
        "sim",
        "guard_cpu",
        "ans_cpu",
        "rate",
        "clients",
        "guard_cost",
        "ans_cost",
        "tick",
        "offered",
        "served",
        "guard_dropped",
        "ans_dropped",
        "_window_offered",
        "_window_served",
        "_window_started_at",
        "_running",
        "_handle",
    )

    def __init__(
        self,
        sim: Simulator,
        guard_cpu: Cpu,
        ans_cpu: Cpu,
        *,
        rate: float | None = None,
        clients: int | None = None,
        guard_cost: float,
        ans_cost: float = ANS_SIMULATOR_COST,
        tick: float = DEFAULT_TICK,
    ):
        if rate is None:
            if clients is None:
                raise ValueError("pass rate= or clients=")
            rate = clients * PER_CLIENT_RATE
        self.sim = sim
        self.guard_cpu = guard_cpu
        self.ans_cpu = ans_cpu
        self.rate = rate
        self.clients = clients if clients is not None else round(rate / PER_CLIENT_RATE)
        self.guard_cost = guard_cost
        self.ans_cost = ans_cost
        self.tick = tick
        self.offered = 0.0
        self.served = 0.0
        self.guard_dropped = 0.0
        self.ans_dropped = 0.0
        self._window_offered = 0.0
        self._window_served = 0.0
        self._window_started_at = 0.0
        self._running = False
        self._handle = None

    def start(self) -> None:
        if self._running or self.rate == 0:
            return
        self._running = True
        self._handle = self.sim.schedule(self.tick, self._on_tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _on_tick(self) -> None:
        if not self._running:
            return
        batch = self.rate * self.tick
        self.offered += batch
        if not self.guard_cpu.submit(batch * self.guard_cost, self._at_ans, batch):
            self.guard_dropped += batch
        # constant-rate by design: a continuous process at a fixed step
        self._handle = self.sim.schedule(self.tick, self._on_tick)  # repro: allow[P006]

    def _at_ans(self, batch: float) -> None:
        if not self.ans_cpu.submit(batch * self.ans_cost, self._served_batch, batch):
            self.ans_dropped += batch

    def _served_batch(self, batch: float) -> None:
        self.served += batch

    # -- measurement -------------------------------------------------------

    def begin_window(self, now: float) -> None:
        self._window_offered = self.offered
        self._window_served = self.served
        self._window_started_at = now

    def window_availability(self) -> float:
        offered = self.offered - self._window_offered
        if offered <= 0:
            return 1.0
        return (self.served - self._window_served) / offered

    def window_served_rate(self, now: float) -> float:
        elapsed = now - self._window_started_at
        if elapsed <= 0:
            return 0.0
        return (self.served - self._window_served) / elapsed


@dataclasses.dataclass(slots=True)
class HybridPoint:
    """One hybrid-mode sample: fluid bulk curves + foreground cohort."""

    attack_rate: float
    protection: bool
    clients: int
    fluid_offered_rate: float
    fluid_served_rate: float
    fluid_availability: float
    foreground_sent: int
    foreground_completed: int
    foreground_timeouts: int
    foreground_availability: float
    guard_cpu: float
    ans_cpu: float
    events: int


def run_hybrid_point(
    attack_rate: float,
    protection: bool = True,
    *,
    seed: int = 0,
    clients: int = 1_000_000,
    legit_rate: float | None = None,
    foreground_rate: float = 500.0,
    foreground_concurrency: int = 8,
    warmup: float = 0.25,
    duration: float = 0.3,
    tick: float = DEFAULT_TICK,
    model: FluidModel | None = None,
) -> HybridPoint:
    """One guard-under-attack sample with fluid bulk load.

    The bulk legitimate population (``clients`` stub resolvers, or an
    explicit ``legit_rate``) and the spoofed flood are fluids; one paced
    packet-level LRS behind a local guard is the tracked foreground
    cohort whose availability and latency are measured end to end.
    """
    model = model or FluidModel()
    bed = GuardTestbed(
        seed=seed, ans="simulator", ans_mode="answer", guard_enabled=protection
    )
    legit_node = bed.add_client("fg-lrs", via_local_guard=True)
    foreground = LrsSimulator(
        legit_node,
        ANS_ADDRESS,
        workload="plain",
        concurrency=foreground_concurrency,
        target_rate=foreground_rate,
    )

    guard_cpu = bed.guard_node.cpu
    ans_cpu = bed.ans_node.cpu
    if protection:
        # verified bulk traffic: validate-and-forward + response transform
        bulk_guard_cost = model.request_cost("modified", cache_hit=True)
        flood_charges = [(guard_cpu, model.attack_drop_cost())]
    else:
        # no verification: the guard merely forwards, and the flood
        # reaches the ANS at full service cost
        bulk_guard_cost = model.costs.forward
        flood_charges = [(guard_cpu, model.costs.forward), (ans_cpu, model.ans_cost)]

    population = FluidPopulation(
        bed.sim,
        guard_cpu,
        ans_cpu,
        rate=legit_rate,
        clients=clients if legit_rate is None else None,
        guard_cost=bulk_guard_cost,
        ans_cost=model.ans_cost,
        tick=tick,
    )
    flood = FluidFlood(bed.sim, flood_charges, rate=attack_rate, tick=tick)

    foreground.start()
    population.start()
    flood.start()
    bed.run(warmup)

    stats = foreground.stats
    completed0, timeouts0 = stats.completed, stats.timeouts
    population.begin_window(bed.sim.now)
    guard_busy0 = guard_cpu.completed_busy_seconds()
    ans_busy0 = ans_cpu.completed_busy_seconds()
    t0 = bed.sim.now
    bed.run(duration)

    guard_util = guard_cpu.utilization(guard_busy0, t0)
    ans_util = ans_cpu.utilization(ans_busy0, t0)
    served_rate = population.window_served_rate(bed.sim.now)
    availability = population.window_availability()
    foreground.stop()
    population.stop()
    flood.stop()
    completed = stats.completed - completed0
    timeouts = stats.timeouts - timeouts0
    attempts = completed + timeouts
    return HybridPoint(
        attack_rate=attack_rate,
        protection=protection,
        clients=population.clients,
        fluid_offered_rate=population.rate,
        fluid_served_rate=served_rate,
        fluid_availability=availability,
        foreground_sent=attempts,
        foreground_completed=completed,
        foreground_timeouts=timeouts,
        foreground_availability=completed / attempts if attempts else 0.0,
        guard_cpu=guard_util,
        ans_cpu=ans_util,
        events=bed.sim.events_processed,
    )
