"""Resumable farm manifest: per-cell status, result digest, trace hash.

The manifest is the farm's journal and its determinism witness in one
JSON document.  Every completed cell contributes its JSON result, a
digest of that result, and the combined event-trace hash of every
simulator the cell constructed.  ``python -m repro farm --resume`` loads
the manifest, skips cells already ``done``, and re-runs the rest; the
equivalence gate in ``scripts/check.sh`` asserts that a sharded run's
:meth:`Manifest.digest` equals the serial run's.

Determinism discipline: the digest covers only run-invariant content
(plan fingerprint, per-cell status/seed/result digest/trace hash).
Wall-clock timings and shard counts are recorded too — they are what the
``BENCH_farm.json`` trajectory is built from — but live outside the
digested view, because a 2-shard run and a 16-shard run of the same
matrix must fingerprint identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any

MANIFEST_VERSION = 1

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  ``records``/``timings`` are keyed by
#: cell id — a finite domain fixed by the plan — and are replaced
#: per-plan; the run history is the one append-across-resumes log, so
#: :meth:`Manifest.note_run` keeps only the newest
#: :data:`MAX_RUN_HISTORY` entries (and :meth:`Manifest.load` truncates
#: manifests written before the cap existed).  ``runs`` is excluded from
#: the digest, so bounding it cannot perturb the sharded-equals-serial
#: equivalence gate.
__state_bounds__ = {
    "Manifest": {
        "records": {"bound": 65536, "evicted_by": "lifecycle", "keyed_by": "config"},
        "timings": {"bound": 65536, "evicted_by": "lifecycle", "keyed_by": "config"},
        "runs": {"bound": 32, "evicted_by": "cap", "keyed_by": "internal"},
    },
}

#: How many resumed-run history entries the manifest retains.
MAX_RUN_HISTORY = 32

#: Terminal cell states.  ``done`` cells are skipped on resume; ``failed``
#: and ``timeout`` cells are re-attempted.
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"


def result_digest(result: dict[str, Any]) -> str:
    """Digest of a cell's JSON result under canonical encoding."""
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


@dataclasses.dataclass(slots=True)
class CellRecord:
    """Terminal outcome of one cell attempt."""

    cell_id: str
    seed: int
    status: str
    result: dict[str, Any] | None = None
    result_digest: str | None = None
    trace_hash: str | None = None
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "cell_id": self.cell_id,
            "seed": self.seed,
            "status": self.status,
        }
        if self.result is not None:
            doc["result"] = self.result
            doc["result_digest"] = self.result_digest
        if self.trace_hash is not None:
            doc["trace_hash"] = self.trace_hash
        if self.error is not None:
            doc["error"] = self.error
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "CellRecord":
        return cls(
            cell_id=doc["cell_id"],
            seed=doc["seed"],
            status=doc["status"],
            result=doc.get("result"),
            result_digest=doc.get("result_digest"),
            trace_hash=doc.get("trace_hash"),
            error=doc.get("error"),
        )


class Manifest:
    """The farm's resumable journal for one (matrix, seed, fast) plan."""

    def __init__(
        self,
        *,
        matrix: str,
        base_seed: int,
        fast: bool,
        plan_digest: str,
        path: str | None = None,
    ):
        self.matrix = matrix
        self.base_seed = base_seed
        self.fast = fast
        self.plan_digest = plan_digest
        self.path = path
        self.records: dict[str, CellRecord] = {}
        #: Non-digested measurement metadata: cell_id -> wall seconds.
        self.timings: dict[str, float] = {}
        #: Non-digested run history (shards, cells run/skipped, wall time).
        self.runs: list[dict[str, Any]] = []

    # -- recording ---------------------------------------------------------

    def record(self, record: CellRecord, *, wall_seconds: float | None = None) -> None:
        self.records[record.cell_id] = record
        if wall_seconds is not None:
            self.timings[record.cell_id] = wall_seconds

    def note_run(self, entry: dict[str, Any]) -> None:
        """Append to the run history, keeping only the newest entries.

        The history is measurement metadata (shards, cells run/skipped,
        wall time) feeding ``BENCH_farm.json``; it accumulates across
        every ``--resume`` of the same manifest, so it is the one
        collection here that would otherwise grow without bound.
        """
        self.runs.append(entry)
        if len(self.runs) > MAX_RUN_HISTORY:
            del self.runs[: len(self.runs) - MAX_RUN_HISTORY]

    def status_of(self, cell_id: str) -> str | None:
        record = self.records.get(cell_id)
        return record.status if record is not None else None

    def done_cells(self) -> set[str]:
        return {cid for cid, rec in self.records.items() if rec.status == DONE}

    def failed_cells(self) -> list[str]:
        return sorted(
            cid for cid, rec in self.records.items() if rec.status != DONE
        )

    # -- digest ------------------------------------------------------------

    def digest(self) -> str:
        """Fingerprint of the run-invariant manifest content.

        Serial and sharded executions of the same plan must produce the
        same digest; timings and run history are deliberately excluded.
        """
        view = {
            "matrix": self.matrix,
            "base_seed": self.base_seed,
            "fast": self.fast,
            "plan_digest": self.plan_digest,
            "cells": {
                cid: {
                    "status": rec.status,
                    "seed": rec.seed,
                    "result_digest": rec.result_digest,
                    "trace_hash": rec.trace_hash,
                }
                for cid, rec in self.records.items()
            },
        }
        canonical = json.dumps(view, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "matrix": self.matrix,
            "base_seed": self.base_seed,
            "fast": self.fast,
            "plan_digest": self.plan_digest,
            "digest": self.digest(),
            "cells": {
                cid: rec.to_dict() for cid, rec in sorted(self.records.items())
            },
            "timings": {cid: self.timings[cid] for cid in sorted(self.timings)},
            "runs": self.runs,
        }

    def save(self) -> None:
        """Atomically persist (write-then-rename), if a path is attached."""
        if self.path is None:
            return
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, path: str) -> "Manifest":
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"{path}: unsupported manifest version {doc.get('version')!r}"
            )
        manifest = cls(
            matrix=doc["matrix"],
            base_seed=doc["base_seed"],
            fast=doc["fast"],
            plan_digest=doc["plan_digest"],
            path=path,
        )
        for cid, rec in doc.get("cells", {}).items():
            manifest.records[cid] = CellRecord.from_dict(rec)
        manifest.timings = dict(doc.get("timings", {}))
        manifest.runs = list(doc.get("runs", []))[-MAX_RUN_HISTORY:]
        return manifest

    def compatible_with(
        self, *, matrix: str, base_seed: int, fast: bool, plan_digest: str
    ) -> bool:
        """True iff a resume against the given plan is valid."""
        return (
            self.matrix == matrix
            and self.base_seed == base_seed
            and self.fast == fast
            and self.plan_digest == plan_digest
        )
