"""Farm worker: the per-cell executor shared by serial and sharded runs.

:func:`execute_cell` is the *only* way a cell runs — in-process for
``--shards 1`` and inside a spawned worker for ``--shards N`` — so both
paths produce the same result dict, the same canonical result digest,
and the same combined event-trace hash.  :func:`worker_main` is the
child-process loop: pull a task, announce it (so the parent can enforce
the per-cell timeout), run it, report a terminal record.  A cell that
raises is reported as ``failed`` and the worker moves on — one diverging
cell fails that cell, not the run.

Determinism discipline: workers hold no randomness of their own.  Every
stochastic choice inside a cell flows from the cell's derived seed
(``Cell.seed`` -> ``Simulator(seed=...)``); analysis rule W002 flags any
``random`` usage in this package.
"""

from __future__ import annotations

import traceback
from typing import Any

from .manifest import DONE, FAILED, CellRecord, result_digest


def execute_cell(
    matrix_name: str, cell_id: str, params: dict[str, str], seed: int, fast: bool
) -> CellRecord:
    """Run one cell under trace capture; returns a terminal record.

    The combined trace hash covers every simulator the cell constructs
    (in construction order), exactly as the determinism sanitizer would
    see them — it is the farm's per-cell ``--sanitize`` witness.
    """
    from ..analysis.sanitizer import capture_traces
    from .matrices import get_matrix

    mdef = get_matrix(matrix_name)
    with capture_traces() as collector:
        result = mdef.run_cell(params, seed, fast)
    return CellRecord(
        cell_id=cell_id,
        seed=seed,
        status=DONE,
        result=result,
        result_digest=result_digest(result),
        trace_hash=collector.combined_hexdigest(),
    )


def worker_main(worker_idx: int, matrix_name: str, fast: bool, task_q, result_q) -> None:
    """Child-process loop: tasks in, ``(kind, ...)`` messages out.

    Messages: ``("start", idx, cell_id)`` before a cell begins (the
    parent's timeout clock starts here), then ``("done", idx, record)``
    or ``("error", idx, cell_id, seed, traceback)``.  A ``None`` task is
    the shutdown sentinel.
    """
    while True:
        task = task_q.get()
        if task is None:
            return
        cell_id, params, seed = task
        result_q.put(("start", worker_idx, cell_id))
        try:
            record = execute_cell(matrix_name, cell_id, params, seed, fast)
        except Exception:
            result_q.put(("error", worker_idx, cell_id, seed, traceback.format_exc()))
        else:
            result_q.put(("done", worker_idx, record.to_dict()))


def failure_record(cell_id: str, seed: int, error: str, *, status: str = FAILED) -> CellRecord:
    """A terminal record for a cell that crashed, died, or timed out."""
    return CellRecord(cell_id=cell_id, seed=seed, status=status, error=error)


def record_from_message(doc: dict[str, Any]) -> CellRecord:
    return CellRecord.from_dict(doc)
