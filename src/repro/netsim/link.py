"""Point-to-point links with propagation delay, bandwidth and loss.

A link joins exactly two nodes.  Each direction has its own transmission
queue: packets serialise at ``bandwidth`` bytes/sec (infinite if ``None``)
and arrive ``delay`` seconds after serialisation completes.  When more than
``queue_limit`` seconds of serialisation work is queued, the tail drops —
the classic droptail bottleneck an amplification attack saturates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .packet import Packet
from .simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node


class _Direction:
    """Per-direction transmission state."""

    __slots__ = ("busy_until", "bytes_sent", "packets_sent", "packets_dropped")

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0


class Link:
    """A bidirectional point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        *,
        delay: float = 0.0002,
        bandwidth: float | None = None,
        loss: float = 0.0,
        jitter: float = 0.0,
        queue_limit: float = 0.1,
    ):
        """``delay`` is one-way propagation in seconds (default gives the
        paper's 0.4 ms testbed RTT); ``bandwidth`` is bytes/sec; ``jitter``
        adds a uniform ±jitter perturbation to each packet's delay."""
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss must be a probability")
        if jitter < 0 or jitter > delay:
            if jitter != 0.0:
                raise ValueError("jitter must be within [0, delay]")
        self.sim = sim
        self.a = a
        self.b = b
        self.delay = delay
        self.bandwidth = bandwidth
        self.loss = loss
        self.jitter = jitter
        self.queue_limit = queue_limit
        self._directions = {id(a): _Direction(), id(b): _Direction()}
        a.attach(self)
        b.attach(self)

    def other(self, node: "Node") -> "Node":
        """The peer on the far end of the link from ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node} is not attached to this link")

    def transmit(self, packet: Packet, sender: "Node") -> bool:
        """Send ``packet`` from ``sender`` toward the other end.

        Returns False if the packet was dropped (queue overflow or random
        loss); arrival at the peer is otherwise scheduled.
        """
        direction = self._directions[id(sender)]
        now = self.sim.now
        if self.bandwidth is not None:
            serialization = packet.size / self.bandwidth
            queued = max(0.0, direction.busy_until - now)
            if queued > self.queue_limit:
                direction.packets_dropped += 1
                return False
            start = max(direction.busy_until, now)
            direction.busy_until = start + serialization
            departure = direction.busy_until
        else:
            departure = now
        if self.loss and self.sim.rng.random() < self.loss:
            direction.packets_dropped += 1
            return False
        direction.bytes_sent += packet.size
        direction.packets_sent += 1
        receiver = self.other(sender)
        delay = self.delay
        if self.jitter:
            delay += self.sim.rng.uniform(-self.jitter, self.jitter)
        self.sim.schedule_at(departure + delay, receiver.receive, packet, self)
        return True

    def stats(self, sender: "Node") -> tuple[int, int, int]:
        """(packets_sent, packets_dropped, bytes_sent) for ``sender``'s direction."""
        d = self._directions[id(sender)]
        return d.packets_sent, d.packets_dropped, d.bytes_sent
