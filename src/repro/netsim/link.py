"""Point-to-point links with propagation delay, bandwidth and loss.

A link joins exactly two nodes.  Each direction has its own transmission
queue: packets serialise at ``bandwidth`` bytes/sec (infinite if ``None``)
and arrive ``delay`` seconds after serialisation completes.  When more than
``queue_limit`` seconds of serialisation work is queued, the tail drops —
the classic droptail bottleneck an amplification attack saturates.

Beyond the steady-state model, a link carries the knobs the fault-injection
subsystem (:mod:`repro.faults`) turns:

* ``up`` — an administratively-down link eats every packet (blackouts,
  flaps);
* ``loss_model`` — replaces the uniform ``loss`` probability with a
  stateful model such as :class:`GilbertElliottLoss` for bursty loss;
* ``duplicate_prob`` / ``reorder_prob`` + ``reorder_delay`` /
  ``corrupt_prob`` — per-packet duplication, reordering (an extra delayed
  copy overtaken by later packets) and corruption (the receiver's checksum
  fails, so the packet is counted and dropped).

Fault randomness is drawn from ``fault_rng`` (normally a named child stream
of ``Simulator.rng`` — see :meth:`Simulator.child_rng`), never from the
core RNG, so installing a fault model does not perturb the rest of the
event trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from .packet import Packet
from .simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from .node import Node


class LossModel(Protocol):
    """Anything with a per-packet drop decision (stateful models welcome)."""

    def should_drop(self) -> bool:  # pragma: no cover - protocol
        ...


class GilbertElliottLoss:
    """The classic two-state (good/bad) bursty-loss channel model.

    Each transmitted packet first advances the state machine — good→bad
    with probability ``p_good_to_bad``, bad→good with ``p_bad_to_good`` —
    then drops with the current state's loss probability (``loss_good`` /
    ``loss_bad``).  Mean burst length is ``1 / p_bad_to_good`` packets;
    stationary loss is ``pi_bad * loss_bad + pi_good * loss_good`` with
    ``pi_bad = p_gb / (p_gb + p_bg)``.

    ``rng`` must be a seeded stream — fault injection passes a named child
    stream of the simulator RNG so enabling the model never perturbs the
    core event sequence.
    """

    __slots__ = (
        "rng",
        "p_good_to_bad",
        "p_bad_to_good",
        "loss_good",
        "loss_bad",
        "bad",
        "transitions",
        "drops",
    )

    def __init__(
        self,
        rng: "random.Random",
        *,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.25,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        start_bad: bool = False,
    ):
        for label, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be a probability, got {p}")
        self.rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = start_bad
        self.transitions = 0
        self.drops = 0

    def should_drop(self) -> bool:
        flip = self.p_bad_to_good if self.bad else self.p_good_to_bad
        if flip and self.rng.random() < flip:
            self.bad = not self.bad
            self.transitions += 1
        loss = self.loss_bad if self.bad else self.loss_good
        if loss <= 0.0:
            return False
        dropped = loss >= 1.0 or self.rng.random() < loss
        if dropped:
            self.drops += 1
        return dropped


class _Direction:
    """Per-direction transmission state."""

    __slots__ = (
        "busy_until",
        "bytes_sent",
        "packets_sent",
        "packets_dropped",
        "packets_duplicated",
        "packets_corrupted",
        "packets_reordered",
    )

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.packets_corrupted = 0
        self.packets_reordered = 0


class Link:
    """A bidirectional point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        *,
        delay: float = 0.0002,
        bandwidth: float | None = None,
        loss: float = 0.0,
        jitter: float = 0.0,
        queue_limit: float = 0.1,
    ):
        """``delay`` is one-way propagation in seconds (default gives the
        paper's 0.4 ms testbed RTT); ``bandwidth`` is bytes/sec; ``jitter``
        adds a uniform ±jitter perturbation to each packet's delay."""
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss must be a probability")
        if jitter < 0 or jitter > delay:
            if jitter != 0.0:
                raise ValueError("jitter must be within [0, delay]")
        self.sim = sim
        self.a = a
        self.b = b
        self.delay = delay
        self.bandwidth = bandwidth
        self.loss = loss
        self.jitter = jitter
        self.queue_limit = queue_limit
        #: administratively up?  A downed link eats every packet.
        self.up = True
        #: stateful loss model; when set it replaces the uniform ``loss``.
        self.loss_model: LossModel | None = None
        #: fault-injection knobs (all default off; see module docstring)
        self.duplicate_prob = 0.0
        self.reorder_prob = 0.0
        self.reorder_delay = 0.0
        self.corrupt_prob = 0.0
        #: RNG for the fault knobs above.  Left as None, the seeded core
        #: RNG is used; fault injection installs a named child stream so
        #: fault randomness cannot perturb the core event sequence.
        self.fault_rng: "random.Random | None" = None
        self._directions = {id(a): _Direction(), id(b): _Direction()}
        a.attach(self)
        b.attach(self)
        if sim.obs is not None:
            sim.obs.register_link(self)

    def other(self, node: "Node") -> "Node":
        """The peer on the far end of the link from ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node} is not attached to this link")

    def clear_faults(self) -> None:
        """Restore the pristine no-fault configuration (link stays up)."""
        self.loss_model = None
        self.duplicate_prob = 0.0
        self.reorder_prob = 0.0
        self.reorder_delay = 0.0
        self.corrupt_prob = 0.0

    def transmit(self, packet: Packet, sender: "Node") -> bool:
        """Send ``packet`` from ``sender`` toward the other end.

        Returns False if the packet was dropped (link down, queue overflow,
        random loss or corruption); arrival at the peer is otherwise
        scheduled — twice, when the duplication fault fires.
        """
        direction = self._directions[id(sender)]
        if not self.up:
            direction.packets_dropped += 1
            return False
        now = self.sim.now
        if self.bandwidth is not None:
            serialization = packet.size / self.bandwidth
            queued = max(0.0, direction.busy_until - now)
            if queued > self.queue_limit:
                direction.packets_dropped += 1
                return False
            start = max(direction.busy_until, now)
            direction.busy_until = start + serialization
            departure = direction.busy_until
        else:
            departure = now
        if self.loss_model is not None:
            if self.loss_model.should_drop():
                direction.packets_dropped += 1
                return False
        elif self.loss and self.sim.rng.random() < self.loss:
            direction.packets_dropped += 1
            return False
        fault_rng = self.fault_rng if self.fault_rng is not None else self.sim.rng
        if self.corrupt_prob and fault_rng.random() < self.corrupt_prob:
            # bit errors in flight: the receiver's checksum rejects it, so
            # from the endpoints' viewpoint the packet was simply lost
            direction.packets_corrupted += 1
            direction.packets_dropped += 1
            return False
        direction.bytes_sent += packet.size
        direction.packets_sent += 1
        receiver = self.other(sender)
        delay = self.delay
        if self.jitter:
            delay += self.sim.rng.uniform(-self.jitter, self.jitter)
        if self.reorder_prob and fault_rng.random() < self.reorder_prob:
            # held back long enough for later packets to overtake it
            direction.packets_reordered += 1
            delay += self.reorder_delay if self.reorder_delay > 0 else self.delay
        # Same-instant arrivals at one node serialize in send order: a real
        # box drains one NIC queue, so two deliveries interfering on the
        # receiver's state (rate-limiter buckets, held-query tables) is
        # serial processing, not a race.  The FIFO tie-break *is* the
        # queue; the interference monitor is told so here rather than per
        # cell, because the contract is about this schedule site, not
        # about any particular attribute.
        self.sim.schedule_at(departure + delay, receiver.receive, packet, self)  # repro: allow[R003,R004] same-node deliveries drain one serial queue in send order
        if self.duplicate_prob and fault_rng.random() < self.duplicate_prob:
            direction.packets_duplicated += 1
            # an independent copy: routers decrement ttl in place, and the
            # two arrivals must not share that mutation
            twin = Packet(src=packet.src, dst=packet.dst, segment=packet.segment, ttl=packet.ttl)
            self.sim.schedule_at(departure + delay + self.delay, receiver.receive, twin, self)  # repro: allow[R003,R004] duplicate delivery follows the same serial-queue contract
        return True

    def stats(self, sender: "Node") -> tuple[int, int, int]:
        """(packets_sent, packets_dropped, bytes_sent) for ``sender``'s direction."""
        d = self._directions[id(sender)]
        return d.packets_sent, d.packets_dropped, d.bytes_sent

    def fault_stats(self, sender: "Node") -> dict[str, int]:
        """Fault-path counters for ``sender``'s direction."""
        d = self._directions[id(sender)]
        return {
            "duplicated": d.packets_duplicated,
            "corrupted": d.packets_corrupted,
            "reordered": d.packets_reordered,
        }
