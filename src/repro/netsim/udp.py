"""UDP sockets.

UDP here mirrors the real thing in the one way that matters to the paper:
``send`` takes an arbitrary source address and nothing checks it.  That is
the spoofing vulnerability the DNS guard exists to detect.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import TYPE_CHECKING, Callable

from ..dnswire import Message
from .errors import SocketError
from .packet import DnsPayload, Packet, RawPayload, UdpDatagram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

#: First ephemeral port handed out by :meth:`UdpStack.ephemeral_port`.
EPHEMERAL_BASE = 49152

#: Handler signature: (payload, src_ip, src_port, dst_ip).
UdpHandler = Callable[[Message | bytes, IPv4Address, int, IPv4Address], None]


class UdpSocket:
    """A bound UDP socket."""

    # ephemeral sockets are created per interaction on the load-generator
    # hot path; __slots__ keeps them __dict__-free (P001)
    __slots__ = ("stack", "ip", "port", "handler", "closed")

    def __init__(self, stack: "UdpStack", ip: IPv4Address | None, port: int, handler: UdpHandler):
        self.stack = stack
        self.ip = ip
        self.port = port
        self.handler = handler
        self.closed = False

    def send(
        self,
        payload: Message | bytes,
        dst: IPv4Address,
        dport: int,
        *,
        src: IPv4Address | None = None,
        size: int | None = None,
        span=None,
    ) -> bool:
        """Send a datagram.  ``src`` may be spoofed — nothing validates it.

        ``span`` is observability metadata carried on the packet (never
        read by the simulation) so receive-side spans can parent onto it.
        """
        if self.closed:
            raise SocketError("send on closed socket")
        return self.stack.send(
            payload, dst, dport, sport=self.port, src=src or self.ip, size=size,
            span=span,
        )

    def close(self) -> None:
        self.closed = True
        self.stack._unbind(self)

    def __repr__(self) -> str:
        return f"UdpSocket({self.ip or '*'}:{self.port})"


class UdpStack:
    """Per-node UDP socket table and demultiplexer."""

    def __init__(self, node: "Node"):
        self.node = node
        self._sockets: dict[tuple[IPv4Address | None, int], UdpSocket] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.datagrams_received = 0
        self.datagrams_unmatched = 0

    # -- binding -------------------------------------------------------------

    def bind(self, port: int, handler: UdpHandler, *, ip: IPv4Address | None = None) -> UdpSocket:
        """Bind ``port`` (optionally to one address; ``None`` = wildcard)."""
        key = (ip, port)
        if key in self._sockets:
            raise SocketError(f"{self.node.name}: UDP port {port} already bound")
        sock = UdpSocket(self, ip, port, handler)
        self._sockets[key] = sock
        return sock

    def ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = EPHEMERAL_BASE
        return port

    def bind_ephemeral(self, handler: UdpHandler, *, ip: IPv4Address | None = None) -> UdpSocket:
        return self.bind(self.ephemeral_port(), handler, ip=ip)

    def _unbind(self, sock: UdpSocket) -> None:
        self._sockets.pop((sock.ip, sock.port), None)

    # -- data path -------------------------------------------------------------

    def send(
        self,
        payload: Message | bytes,
        dst: IPv4Address,
        dport: int,
        *,
        sport: int,
        src: IPv4Address | None = None,
        size: int | None = None,
        span=None,
    ) -> bool:
        """Build and transmit a UDP packet from this node.

        ``size`` overrides the computed payload size (useful when modelling
        padded or malformed attack traffic without building real bytes).
        """
        if isinstance(payload, Message):
            body: DnsPayload | RawPayload = DnsPayload(payload, size)
        elif isinstance(payload, (bytes, bytearray)):
            body = RawPayload(bytes(payload))
        else:
            raise SocketError(f"unsupported UDP payload type {type(payload)!r}")
        packet = Packet(
            src=src or self.node.address,
            dst=dst,
            segment=UdpDatagram(sport=sport, dport=dport, payload=body),
            # NULL_SPAN (falsy) is normalised away so receivers take their
            # span-free fast path once the span log is at capacity
            span=span if span else None,
        )
        return self.node.send(packet)

    def demux(self, packet: Packet, datagram: UdpDatagram) -> None:
        """Deliver an arriving datagram to the best-matching socket."""
        self.datagrams_received += 1
        sock = self._sockets.get((packet.dst, datagram.dport)) or self._sockets.get(
            (None, datagram.dport)
        )
        if sock is None or sock.closed:
            self.datagrams_unmatched += 1
            return
        payload = datagram.payload
        data: Message | bytes
        data = payload.message if isinstance(payload, DnsPayload) else payload.data
        obs = self.node.sim.obs
        if obs is None or packet.span is None:
            sock.handler(data, packet.src, datagram.sport, packet.dst)
            return
        # Expose the sender's span as ambient context for the duration of
        # the handler so receive-side instrumentation can parent onto it
        # without changing any handler signature.
        previous = obs._inbound_span
        obs._inbound_span = packet.span
        try:
            sock.handler(data, packet.src, datagram.sport, packet.dst)
        finally:
            obs._inbound_span = previous
