"""Per-node CPU model: a single FIFO service queue with bounded backlog.

This is the substitute for the paper's hardware CPUs (see DESIGN.md).  Each
piece of work (receiving a packet, computing an MD5 cookie, serving a DNS
request) costs a configurable number of CPU-seconds.  Work queues FIFO; when
the backlog exceeds ``queue_limit`` seconds the submission is dropped — which
is exactly how an overloaded BIND drops requests indiscriminately in §IV.C.

Utilisation is metered by integrating executed busy time, so experiment
runners can reproduce the CPU-utilisation curves of Figures 5(b) and 6(b):
sample :meth:`Cpu.completed_busy_seconds` at two instants and divide by the
elapsed virtual time.
"""

from __future__ import annotations

from typing import Any, Callable

from .simulator import Simulator


class Cpu:
    """A FIFO service queue measuring work in CPU-seconds.

    With ``cores > 1`` the queue feeds the first core to free up (an
    M/M/c-style service station): throughput scales with the core count
    while a single job still takes its full service time.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        speed: float = 1.0,
        queue_limit: float = 0.050,
        cores: int = 1,
    ):
        """``speed`` scales all costs (2.0 = twice as fast); ``queue_limit``
        is the maximum backlog, expressed in seconds of queued work per
        core; ``cores`` is the number of parallel execution units."""
        if speed <= 0:
            raise ValueError("cpu speed must be positive")
        if cores < 1:
            raise ValueError("cores must be at least 1")
        self.sim = sim
        self.speed = speed
        self.queue_limit = queue_limit
        self.cores = cores
        self._core_busy_until = [0.0] * cores
        self._busy_accumulated = 0.0
        self.jobs_accepted = 0
        self.jobs_dropped = 0
        #: CPU-seconds burned on pure accounting while the queue was
        #: saturated — the cost of *discarding* packets under overload,
        #: which §IV.C insists does not vanish just because the box is busy.
        self.work_dropped_seconds = 0.0

    # -- work submission ----------------------------------------------------

    def submit(self, cost: float, fn: Callable[..., Any] | None = None, *args: Any) -> bool:
        """Queue ``cost`` CPU-seconds of work, then run ``fn(*args)``.

        Returns False (and drops the work) if the backlog is over the queue
        limit.  ``fn`` may be ``None`` for pure accounting (e.g. the cost of
        dropping an invalid packet); pure accounting is *burned even at the
        limit* — an overloaded CPU still spends cycles receiving and
        discarding the packets it cannot serve (§IV.C) — and the saturated
        share is tracked in :attr:`work_dropped_seconds`.
        """
        cost = cost / self.speed
        now = self.sim.now
        core = min(range(self.cores), key=self._core_busy_until.__getitem__)
        backlog = max(0.0, self._core_busy_until[core] - now)
        if backlog > self.queue_limit:
            self.jobs_dropped += 1
            if fn is None:
                # discarding still burns CPU: extend the busy horizon so the
                # cost delays (and keeps dropping) later submissions, exactly
                # like an overloaded kernel spending its time in rx+drop
                start = max(self._core_busy_until[core], now)
                self._core_busy_until[core] = start + cost
                self._busy_accumulated += cost
                self.work_dropped_seconds += cost
            return False
        start = max(self._core_busy_until[core], now)
        self._core_busy_until[core] = start + cost
        self._busy_accumulated += cost
        self.jobs_accepted += 1
        if fn is not None:
            self.sim.schedule_at(self._core_busy_until[core], fn, *args)
        return True

    def charge(self, cost: float) -> bool:
        """Account for work with no completion callback."""
        return self.submit(cost, None)

    # -- introspection ------------------------------------------------------

    @property
    def backlog(self) -> float:
        """Seconds of work queued on the least-loaded core."""
        now = self.sim.now
        return max(0.0, min(self._core_busy_until) - now)

    def completed_busy_seconds(self) -> float:
        """CPU-seconds of work actually executed by now (queued work whose
        service extends into the future is excluded)."""
        now = self.sim.now
        pending = sum(max(0.0, busy - now) for busy in self._core_busy_until)
        return self._busy_accumulated - pending

    def utilization(self, busy_at_start: float, window_start: float) -> float:
        """Utilisation since a snapshot, in [0, 1], normalised by cores.

        ``busy_at_start`` is a prior reading of :meth:`completed_busy_seconds`
        taken at virtual time ``window_start``.
        """
        elapsed = self.sim.now - window_start
        if elapsed <= 0:
            return 0.0
        busy = self.completed_busy_seconds() - busy_at_start
        return max(0.0, min(1.0, busy / (elapsed * self.cores)))

    def reset_counters(self) -> None:
        self.jobs_accepted = 0
        self.jobs_dropped = 0
        self.work_dropped_seconds = 0.0
