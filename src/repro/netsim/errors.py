"""Exceptions raised by the network simulator."""

from __future__ import annotations


class NetsimError(Exception):
    """Base class for simulator errors."""


class AddressError(NetsimError):
    """Bad address, port, or subnet configuration."""


class RoutingError(NetsimError):
    """A packet had no route to its destination."""


class SocketError(NetsimError):
    """Bad socket usage (port already bound, send on closed socket, ...)."""


class ConnectionError_(NetsimError):
    """TCP connection failure (reset, retransmission limit, ...)."""
