"""Nodes: hosts and routers with addresses, routing, CPU and protocol stacks.

A node delivers packets addressed to one of its own addresses (or to a
subnet it *intercepts* — how the DNS guard claims the fabricated COOKIE2
addresses in ``1.2.3.0/24``) up to its UDP/TCP stacks.  Anything else is
routed: longest-prefix match over static routes, falling back to the default
route.  A ``transit_filter`` hook lets a middlebox node such as the guard
inspect, hijack or drop packets flowing through it.
"""

from __future__ import annotations

from ipaddress import IPv4Address, IPv4Network
from typing import Callable, Literal

from .cpu import Cpu
from .errors import RoutingError
from .link import Link
from .packet import Packet, TcpSegment, UdpDatagram
from .simulator import Simulator

TransitAction = Literal["forward", "deliver", "drop"]


class Node:
    """A simulated host or router."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        cpu_speed: float = 1.0,
        cpu_queue_limit: float = 0.050,
        forward_cost: float = 0.0,
    ):
        self.sim = sim
        self.name = name
        self.cpu = Cpu(sim, speed=cpu_speed, queue_limit=cpu_queue_limit)
        self.addresses: list[IPv4Address] = []
        #: set mirror of ``addresses`` — O(1) ownership tests per packet
        self._address_set: set[IPv4Address] = set()
        self.intercept_subnets: list[IPv4Network] = []
        self.links: list[Link] = []
        self.routes: list[tuple[IPv4Network, Link]] = []
        self.default_route: Link | None = None
        #: per-destination route memo, invalidated on any table change and
        #: bounded so spoofed-destination floods cannot grow it unchecked
        self._route_cache: dict[IPv4Address, Link | None] = {}
        #: CPU-seconds charged per packet forwarded in transit (routers).
        self.forward_cost = forward_cost
        #: Middlebox hook: packet in transit -> "forward" | "deliver" | "drop".
        self.transit_filter: Callable[[Packet, Link], TransitAction] | None = None
        #: netfilter-style chain table, created on first use (see .filters)
        self._filters = None
        self.packets_delivered = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        # protocol stacks are created lazily to avoid import cycles
        from .udp import UdpStack
        from .tcp import TcpStack

        self.udp = UdpStack(self)
        self.tcp = TcpStack(self)
        if sim.obs is not None:
            sim.obs.register_node(self)

    # -- configuration -------------------------------------------------------

    def add_address(self, address: IPv4Address | str) -> IPv4Address:
        if isinstance(address, str):
            address = IPv4Address(address)
        self.addresses.append(address)
        self._address_set.add(address)
        return address

    @property
    def address(self) -> IPv4Address:
        """The node's primary address."""
        if not self.addresses:
            raise RoutingError(f"{self.name} has no address")
        return self.addresses[0]

    def intercept(self, subnet: IPv4Network | str) -> None:
        """Deliver (rather than route) everything addressed into ``subnet``."""
        if isinstance(subnet, str):
            subnet = IPv4Network(subnet)
        self.intercept_subnets.append(subnet)

    def attach(self, link: Link) -> None:
        self.links.append(link)
        self._route_cache.clear()

    def add_route(self, subnet: IPv4Network | str, link: Link) -> None:
        if isinstance(subnet, str):
            subnet = IPv4Network(subnet)
        self.routes.append((subnet, link))
        # longest prefix first; a config-time sort, not the per-packet path
        # (the per-packet lookup memoizes through _route_cache)
        self.routes.sort(key=lambda item: item[0].prefixlen, reverse=True)  # repro: allow[P005] route-table mutation is config/failover-time; per-packet lookups hit _route_cache
        self._route_cache.clear()

    def replace_route(self, subnet: IPv4Network | str, link: Link) -> None:
        """Repoint the route for exactly ``subnet`` at ``link`` (failover)."""
        if isinstance(subnet, str):
            subnet = IPv4Network(subnet)
        self.routes = [(s, l) for s, l in self.routes if s != subnet]
        self.add_route(subnet, link)

    def set_default_route(self, link: Link) -> None:
        self.default_route = link
        self._route_cache.clear()

    @property
    def filters(self):
        """The node's netfilter-style :class:`~repro.netsim.netfilter.PacketFilter`."""
        if self._filters is None:
            from .netfilter import PacketFilter

            self._filters = PacketFilter()
        return self._filters

    def _filter_verdict(self, hook, packet: Packet) -> bool:
        """True if the packet may proceed past ``hook``."""
        if self._filters is None:
            return True
        from .netfilter import Verdict

        return self._filters.evaluate(hook, packet) is Verdict.ACCEPT

    # -- data path ------------------------------------------------------------

    def owns(self, address: IPv4Address) -> bool:
        """True if packets to ``address`` should be delivered locally."""
        if address in self._address_set:
            return True
        return any(address in subnet for subnet in self.intercept_subnets)

    def receive(self, packet: Packet, link: Link) -> None:
        """Entry point for packets arriving from ``link``."""
        if self._filters is not None:
            from .netfilter import Hook

            if not self._filter_verdict(Hook.PREROUTING, packet):
                self.packets_dropped += 1
                return
        if self.owns(packet.dst):
            if self._filters is not None:
                from .netfilter import Hook

                if not self._filter_verdict(Hook.LOCAL_IN, packet):
                    self.packets_dropped += 1
                    return
            self.deliver(packet)
            return
        if self.transit_filter is not None:
            action = self.transit_filter(packet, link)
            if action == "drop":
                self.packets_dropped += 1
                return
            if action == "deliver":
                self.deliver(packet)
                return
        if self._filters is not None:
            from .netfilter import Hook

            if not self._filter_verdict(Hook.FORWARD, packet):
                self.packets_dropped += 1
                return
        self.forward(packet, link)

    def deliver(self, packet: Packet) -> None:
        """Hand a packet to the local protocol stacks."""
        self.packets_delivered += 1
        segment = packet.segment
        if isinstance(segment, UdpDatagram):
            self.udp.demux(packet, segment)
        elif isinstance(segment, TcpSegment):
            self.tcp.demux(packet, segment)

    def forward(self, packet: Packet, in_link: Link | None = None) -> None:
        """Route a transit packet toward its destination."""
        link = self.route_for(packet.dst)
        if link is None:
            self.packets_dropped += 1
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.packets_dropped += 1
            return
        if self.forward_cost:
            if not self.cpu.submit(self.forward_cost, link.transmit, packet, self):
                self.packets_dropped += 1
                return
            self.packets_forwarded += 1
            return
        self.packets_forwarded += 1
        link.transmit(packet, self)

    def route_for(self, dst: IPv4Address) -> Link | None:
        cache = self._route_cache
        if dst in cache:
            return cache[dst]
        link = self._route_for_uncached(dst)
        if len(cache) > 4096:
            cache.clear()
        cache[dst] = link
        return link

    def _route_for_uncached(self, dst: IPv4Address) -> Link | None:
        for subnet, link in self.routes:  # repro: allow[P005] cache-miss slow path — per-packet lookups are memoized in _route_cache
            if dst in subnet:
                return link
        if self.default_route is not None:
            return self.default_route
        # single-homed hosts route everything over their only link
        if len(self.links) == 1:
            return self.links[0]
        return None

    def send(self, packet: Packet) -> bool:
        """Originate a packet from this node."""
        if self._filters is not None:
            from .netfilter import Hook

            if not self._filter_verdict(Hook.LOCAL_OUT, packet):
                self.packets_dropped += 1
                return False
        link = self.route_for(packet.dst)
        if link is None:
            raise RoutingError(f"{self.name}: no route to {packet.dst}")
        return link.transmit(packet, self)

    def __repr__(self) -> str:
        return f"Node({self.name})"
